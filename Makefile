# SPATIAL reproduction — common workflows.

GO ?= go

.PHONY: all build vet lint lint-fix lint-fix-dry lint-baseline lint-sarif lint-graph test test-short race bench bench-all bench-smoke scenario-smoke fuzz experiments experiments-quick examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (determinism, telemetry cardinality, context
# propagation, resource leaks, ...); exits nonzero on any unsuppressed
# finding at warn severity or above that is not absorbed by the committed
# baseline.
lint:
	$(GO) run ./cmd/spatial-lint -baseline .lint-baseline.json ./...

# Apply every mechanical fix the analyzers propose (defer cancel(),
# clock injection, defer unlock). Use `-diff` via lint-fix-dry to
# preview without writing.
lint-fix:
	$(GO) run ./cmd/spatial-lint -fix ./...

lint-fix-dry:
	$(GO) run ./cmd/spatial-lint -diff ./...

# Re-snapshot the baseline: absorbs all current unsuppressed findings so
# CI gates only on regressions. Review the diff before committing.
lint-baseline:
	$(GO) run ./cmd/spatial-lint -write-baseline -baseline .lint-baseline.json ./...

# Export the run as SARIF 2.1.0 (lint.sarif) for code-scanning UIs; the
# exit code still gates exactly like `make lint`.
lint-sarif:
	$(GO) run ./cmd/spatial-lint -baseline .lint-baseline.json -sarif lint.sarif ./...

# Dump the whole-module interprocedural call graph as Graphviz DOT:
# render with `dot -Tsvg callgraph.dot -o callgraph.svg`.
lint-graph:
	$(GO) run ./cmd/spatial-lint -baseline .lint-baseline.json -graph callgraph.dot ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# -short skips the slow full-module lint self-checks and long soak tests;
# every package still runs under the race detector.
race:
	$(GO) test -race -short ./...

# Serving-path benchmarks, recorded: runs the serial-vs-batched serving
# benchmarks and writes the parsed results to BENCH_serving.json (commit
# it so throughput history travels with the code).
bench:
	$(GO) test -bench=Serving -benchmem -run='^$$' ./internal/serving/ | $(GO) run ./cmd/spatial-benchjson -out BENCH_serving.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# One iteration of each serving benchmark: compiles the harness, trains
# the bench models, and proves the batched path still runs — a CI-cheap
# guard against bit-rot in the throughput experiment.
bench-smoke:
	$(GO) test -bench=Serving -benchtime=1x ./internal/serving/

# Deterministic chaos/attack/drift campaigns: run every Smoke-tagged
# scenario against the virtual world (fake clock, seeded faults) and
# write one scorecard JSON per scenario into scorecards/. The bytes are
# reproducible run-to-run, so CI can diff them.
scenario-smoke:
	$(GO) run ./cmd/spatial-scenario -smoke -out scorecards

fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/dataset/
	$(GO) test -fuzz FuzzUnmarshalModel -fuzztime 30s ./internal/ml/

# Regenerate every paper table/figure (~15 min single-CPU).
experiments:
	$(GO) run ./cmd/spatial-bench -exp all -json results_full.json

experiments-quick:
	$(GO) run ./cmd/spatial-bench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/falldetection
	$(GO) run ./examples/netmonitor
	$(GO) run ./examples/trustaudit
	$(GO) run ./examples/federated
	$(GO) run ./examples/fullstack

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
