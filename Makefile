# SPATIAL reproduction — common workflows.

GO ?= go

.PHONY: all build vet lint test test-short race bench bench-smoke fuzz experiments experiments-quick examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (determinism, telemetry cardinality, context
# propagation, ...); exits nonzero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/spatial-lint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# -short skips the slow full-module lint self-checks and long soak tests;
# every package still runs under the race detector.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of each serving benchmark: compiles the harness, trains
# the bench models, and proves the batched path still runs — a CI-cheap
# guard against bit-rot in the throughput experiment.
bench-smoke:
	$(GO) test -bench=Serving -benchtime=1x ./internal/serving/

fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/dataset/
	$(GO) test -fuzz FuzzUnmarshalModel -fuzztime 30s ./internal/ml/

# Regenerate every paper table/figure (~15 min single-CPU).
experiments:
	$(GO) run ./cmd/spatial-bench -exp all -json results_full.json

experiments-quick:
	$(GO) run ./cmd/spatial-bench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/falldetection
	$(GO) run ./examples/netmonitor
	$(GO) run ./examples/trustaudit
	$(GO) run ./examples/federated
	$(GO) run ./examples/fullstack

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
