# SPATIAL reproduction — common workflows.

GO ?= go

.PHONY: all build vet check lint lint-fix lint-fix-dry lint-baseline lint-sarif lint-graph kernelcheck test test-short race race-stress bench bench-all bench-smoke scenario-smoke cluster-smoke fuzz experiments experiments-quick examples clean perfgate perfgate-static perfgate-manifest

all: build vet lint test

# The umbrella static gate: everything CI checks without running a test
# or a benchmark — vet, the full lint suite, and the perfgate's
# compiler-diagnostics half. Seconds, not minutes; run it before push.
check: vet lint perfgate-static

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (determinism, telemetry cardinality, context
# propagation, resource leaks, ...); exits nonzero on any unsuppressed
# finding at warn severity or above that is not absorbed by the committed
# baseline.
lint:
	$(GO) run ./cmd/spatial-lint -baseline .lint-baseline.json ./...

# Apply every mechanical fix the analyzers propose (defer cancel(),
# clock injection, defer unlock). Use `-diff` via lint-fix-dry to
# preview without writing.
lint-fix:
	$(GO) run ./cmd/spatial-lint -fix ./...

lint-fix-dry:
	$(GO) run ./cmd/spatial-lint -diff ./...

# Re-snapshot the baseline: absorbs all current unsuppressed findings so
# CI gates only on regressions. Review the diff before committing.
lint-baseline:
	$(GO) run ./cmd/spatial-lint -write-baseline -baseline .lint-baseline.json ./...

# Export the run as SARIF 2.1.0 (lint.sarif) for code-scanning UIs; the
# exit code still gates exactly like `make lint`.
lint-sarif:
	$(GO) run ./cmd/spatial-lint -baseline .lint-baseline.json -sarif lint.sarif ./...

# Dump the whole-module interprocedural call graph as Graphviz DOT:
# render with `dot -Tsvg callgraph.dot -o callgraph.svg`.
lint-graph:
	$(GO) run ./cmd/spatial-lint -baseline .lint-baseline.json -graph callgraph.dot ./...

# Kernel-shape subset only (bounds-provable, pointer-chase, hot-indirect,
# map-order-leak): the fast sweep over the serving hot set. Same
# directives and baseline as the full suite.
kernelcheck:
	$(GO) run ./cmd/spatial-kernelcheck -baseline .lint-baseline.json ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# -short skips the slow full-module lint self-checks and long soak tests;
# every package still runs under the race detector.
race:
	$(GO) test -race -short ./...

# Schedule-stress the concurrency-heavy tiers: rerun their -race suites
# across a GOMAXPROCS × shuffle-seed matrix with GORACE halting on the
# first report. Race logs, failing cell output, and summary.json land in
# racestress-artifacts/. Override the matrix with RACESTRESS_FLAGS
# (e.g. RACESTRESS_FLAGS='-procs 4 -seeds 7' to replay one cell).
race-stress:
	$(GO) run ./cmd/spatial-racestress -out racestress-artifacts $(RACESTRESS_FLAGS)

# Serving-path benchmarks, recorded: runs the serial-vs-batched serving
# benchmarks with enough repetitions for the perfgate comparator's
# Mann-Whitney test, writes the parsed results to BENCH_serving.json, and
# appends a commit-stamped entry to BENCH_trajectory.json (commit both so
# throughput history travels with the code).
BENCH_COUNT ?= 6
bench:
	$(GO) test -bench=Serving -benchmem -count=$(BENCH_COUNT) -run='^$$' ./internal/serving/ \
		| $(GO) run ./cmd/spatial-benchjson -out BENCH_serving.json \
			-trajectory BENCH_trajectory.json -commit $$(git rev-parse --short HEAD)

# Perf verification, both halves: the static compiler-diagnostics gate
# (hot-set functions vs .perf-manifest.json contracts) plus a fresh
# benchmark run compared against the committed BENCH_serving.json with a
# noise band (5%) and a regression gate (10%, Mann-Whitney-vetoed when
# sample counts allow). Artifacts: perfgate-report.json, BENCH_fresh.json.
perfgate:
	$(GO) test -bench=Serving -benchmem -count=$(BENCH_COUNT) -run='^$$' ./internal/serving/ \
		| $(GO) run ./cmd/spatial-benchjson -out BENCH_fresh.json
	$(GO) run ./cmd/spatial-perfgate -report perfgate-report.json \
		-bench-old BENCH_serving.json -bench-new BENCH_fresh.json

# Static half only (no benchmarks): cheap enough for every push.
perfgate-static:
	$(GO) run ./cmd/spatial-perfgate -report perfgate-report.json

# Re-snapshot the optimization contracts after reviewing a deliberate
# change to the hot path (ratchet: the new observed state becomes the
# promise). Review the diff before committing.
perfgate-manifest:
	$(GO) run ./cmd/spatial-perfgate -write-manifest

bench-all:
	$(GO) test -bench=. -benchmem ./...

# One iteration of each serving benchmark: compiles the harness, trains
# the bench models, and proves the batched path still runs — a CI-cheap
# guard against bit-rot in the throughput experiment.
bench-smoke:
	$(GO) test -bench=Serving -benchtime=1x ./internal/serving/

# Deterministic chaos/attack/drift campaigns: run every Smoke-tagged
# scenario against the virtual world (fake clock, seeded faults) and
# write one scorecard JSON per scenario into scorecards/. The bytes are
# reproducible run-to-run, so CI can diff them.
scenario-smoke:
	$(GO) run ./cmd/spatial-scenario -smoke -out scorecards

# Cluster failover on real components: three in-process replicas behind
# the real gateway, a cluster-wide 2PC promote, then kill the shard
# owner and burst predicts through the gateway — zero 5xx beyond the
# shed budget, status artifact in cluster-status.json.
cluster-smoke:
	$(GO) run ./cmd/spatial-cluster -smoke -out cluster-status.json

fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/dataset/
	$(GO) test -fuzz FuzzUnmarshalModel -fuzztime 30s ./internal/ml/

# Regenerate every paper table/figure (~15 min single-CPU).
experiments:
	$(GO) run ./cmd/spatial-bench -exp all -json results_full.json

experiments-quick:
	$(GO) run ./cmd/spatial-bench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/falldetection
	$(GO) run ./examples/netmonitor
	$(GO) run ./examples/trustaudit
	$(GO) run ./examples/federated
	$(GO) run ./examples/fullstack

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
