package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/drift"
	"repro/internal/fairness"
	"repro/internal/fedlearn"
	"repro/internal/ml"
	"repro/internal/privacy"
)

// benchBlobs builds a reusable two-class dataset for the extension
// benchmarks.
func benchBlobs(b *testing.B, n int) *dataset.Table {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tb := dataset.New("bench", []string{"f0", "f1", "f2"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		if err := tb.Append([]float64{
			float64(y)*3 + rng.NormFloat64(),
			rng.NormFloat64(),
			-float64(y)*2 + rng.NormFloat64(),
		}, y); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// BenchmarkLabelSanitization measures the kNN-consensus corrective action
// (the operator response the paper's §VII recommends after a poisoning
// alert).
func BenchmarkLabelSanitization(b *testing.B) {
	data := benchBlobs(b, 400)
	poisoned, err := attack.LabelFlip(data, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := defense.SanitizeLabels(poisoned, 7, defense.Relabel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMembershipInference measures the privacy sensor's attack run.
func BenchmarkMembershipInference(b *testing.B) {
	data := benchBlobs(b, 400)
	rng := rand.New(rand.NewSource(2))
	train, test, err := data.StratifiedSplit(rng, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	model := ml.NewTree(ml.TreeConfig{MaxDepth: 0, MinLeaf: 1, Seed: 1})
	if err := model.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privacy.MembershipInference(model, train, test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDPNoise sweeps the DP-SGD noise multiplier — the
// privacy/utility dial (more noise: smaller epsilon, slower convergence).
func BenchmarkAblationDPNoise(b *testing.B) {
	data := benchBlobs(b, 300)
	for _, noise := range []float64{0, 0.5, 2.0} {
		b.Run(fmt.Sprintf("noise=%.1f", noise), func(b *testing.B) {
			cfg := privacy.DefaultDPLogRegConfig()
			cfg.NoiseMultiplier = noise
			cfg.Epochs = 15
			for i := 0; i < b.N; i++ {
				m := privacy.NewDPLogReg(cfg)
				if err := m.Fit(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFairnessEvaluate measures the fairness sensor's metric pass.
func BenchmarkFairnessEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	pred := make([]int, n)
	truth := make([]int, n)
	group := make([]int, n)
	for i := range pred {
		pred[i] = rng.Intn(2)
		truth[i] = rng.Intn(2)
		group[i] = rng.Intn(2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairness.Evaluate(pred, truth, group, 1, [2]string{"A", "B"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedRound measures one FedAvg round over 8 clients.
func BenchmarkFederatedRound(b *testing.B) {
	data := benchBlobs(b, 800)
	clients, err := fedlearn.PartitionIID(data, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	factory := func() (ml.ParamClassifier, error) {
		return ml.NewLogReg(ml.LogRegConfig{LearningRate: 0.1, Epochs: 2, BatchSize: 32, WarmStart: true, Seed: 1}), nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		global := ml.NewLogReg(ml.DefaultLogRegConfig())
		if err := global.Init(data.NumFeatures(), data.NumClasses()); err != nil {
			b.Fatal(err)
		}
		if _, err := fedlearn.Run(global, factory, clients, data, fedlearn.Config{Rounds: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftDetect measures the monitoring-stage drift check.
func BenchmarkDriftDetect(b *testing.B) {
	ref := benchBlobs(b, 1000)
	det, err := drift.Fit(ref, 0.01, 0.2, 10)
	if err != nil {
		b.Fatal(err)
	}
	batch := benchBlobs(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditAppendVerify measures the accountability trail under a
// sensor-like write load plus a full chain verification.
func BenchmarkAuditAppendVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := audit.NewLog()
		for k := 0; k < 500; k++ {
			if _, err := l.Append(audit.KindReading, "sensor", k); err != nil {
				b.Fatal(err)
			}
		}
		if err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSteal measures the extraction attack at a fixed query
// budget.
func BenchmarkModelSteal(b *testing.B) {
	data := benchBlobs(b, 300)
	victim := ml.NewTree(ml.DefaultTreeConfig())
	if err := victim.Fit(data); err != nil {
		b.Fatal(err)
	}
	queries, err := attack.UniformQueries(data.X, 500, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.StealModel(victim, ml.NewTree(ml.DefaultTreeConfig()), queries,
			data.FeatureNames, data.ClassNames, data.X); err != nil {
			b.Fatal(err)
		}
	}
}
