// Package repro holds the benchmark harness: one testing.B benchmark per
// table/figure of the paper (backed by internal/experiments in Quick mode)
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-size experiment runs (paper-scale datasets and sweeps) are driven
// by cmd/spatial-bench instead.
package repro

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/ml"
	"repro/internal/xai"
)

// quick is the reduced-size configuration shared by the per-figure
// benchmarks.
var quick = experiments.Config{Quick: true, Seed: 1}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, quick); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkUC1Baseline regenerates the §VII use-case-1 baseline table.
func BenchmarkUC1Baseline(b *testing.B) { benchExperiment(b, "uc1-baseline") }

// BenchmarkFig6LabelFlip regenerates Fig. 6(a) i-iii.
func BenchmarkFig6LabelFlip(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig6SHAPDissim regenerates Fig. 6(a)-iv.
func BenchmarkFig6SHAPDissim(b *testing.B) { benchExperiment(b, "fig6-shap") }

// BenchmarkUC2Baseline regenerates the §VII use-case-2 baseline table.
func BenchmarkUC2Baseline(b *testing.B) { benchExperiment(b, "uc2-baseline") }

// BenchmarkFig7FGSM regenerates the §VII evasion table (impact and
// complexity per model).
func BenchmarkFig7FGSM(b *testing.B) { benchExperiment(b, "uc2-fgsm") }

// BenchmarkFig7SHAP regenerates Fig. 7(a,b).
func BenchmarkFig7SHAP(b *testing.B) { benchExperiment(b, "fig7-shap") }

// BenchmarkFig7Poisoning regenerates Fig. 7(c,d).
func BenchmarkFig7Poisoning(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8ImpactLoad regenerates Fig. 8(b).
func BenchmarkFig8ImpactLoad(b *testing.B) { benchExperiment(b, "fig8b") }

// BenchmarkFig8XAILoad regenerates Fig. 8(c).
func BenchmarkFig8XAILoad(b *testing.B) { benchExperiment(b, "fig8c") }

// BenchmarkFig8LIMEHeavy regenerates Fig. 8(d).
func BenchmarkFig8LIMEHeavy(b *testing.B) { benchExperiment(b, "fig8d") }

// --- ablation benchmarks (DESIGN.md §5) ----------------------------------

func uc2Model(b *testing.B) (ml.Classifier, *dataset.Table) {
	b.Helper()
	table, _, err := datagen.NetTraffic(datagen.NetTrafficConfig{Web: 120, Interactive: 14, Video: 18, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := table.StratifiedSplit(rng, 0.75)
	if err != nil {
		b.Fatal(err)
	}
	scaler, err := dataset.FitMinMax(train)
	if err != nil {
		b.Fatal(err)
	}
	if err := scaler.Transform(train); err != nil {
		b.Fatal(err)
	}
	if err := scaler.Transform(test); err != nil {
		b.Fatal(err)
	}
	model, err := ml.NewByName("nn", 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := model.Fit(train); err != nil {
		b.Fatal(err)
	}
	return model, test
}

// BenchmarkAblationSHAPBudget sweeps the KernelSHAP coalition budget — the
// knob behind the fig-8c/8d latency story (cost grows linearly, estimate
// variance shrinks).
func BenchmarkAblationSHAPBudget(b *testing.B) {
	model, test := uc2Model(b)
	for _, samples := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			explainer := &xai.KernelSHAP{
				Model:      model,
				Background: test.X[1:5],
				Samples:    samples,
				Seed:       1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := explainer.Explain(test.X[0], test.Y[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationForestSize sweeps the random-forest ensemble size — the
// paper's "RF is the most poisoning-resilient model" observation depends
// on enough trees voting.
func BenchmarkAblationForestSize(b *testing.B) {
	data, err := datagen.UniMiBBinary(datagen.UniMiBConfig{Samples: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	poisoned, err := attack.LabelFlip(data, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, trees := range []int{10, 40, 100} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := ml.NewForest(ml.ForestConfig{Trees: trees, MaxFeatures: -1, MinLeaf: 1, Seed: 1})
				if err := f.Fit(poisoned); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGBDTGrowth compares the two boosted-tree growth
// strategies (leaf-wise histogram vs level-wise exact) on the same data —
// the LightGBM/XGBoost split.
func BenchmarkAblationGBDTGrowth(b *testing.B) {
	table, _, err := datagen.NetTraffic(datagen.NetTrafficConfig{Web: 120, Interactive: 14, Video: 18, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	configs := map[string]ml.GBDTConfig{
		"leaf-wise-hist":   {Rounds: 40, LearningRate: 0.1, MaxLeaves: 31, MinChildWeight: 1e-3, Lambda: 1, Growth: ml.GrowLeafWise, MaxBins: 64, Seed: 1},
		"level-wise-exact": {Rounds: 40, LearningRate: 0.1, MaxDepth: 6, MinChildWeight: 1e-3, Lambda: 1, Growth: ml.GrowLevelWise, Seed: 1},
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := ml.NewGBDT(cfg)
				if err := g.Fit(table); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGatewayPolicy compares round-robin and least-connections
// balancing through the real proxy path.
func BenchmarkAblationGatewayPolicy(b *testing.B) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	policies := map[string]gateway.Balancing{
		"round-robin": gateway.RoundRobin,
		"least-conn":  gateway.LeastConnections,
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			gw := gateway.New(gateway.Config{})
			if err := gw.AddRoute("/svc", policy, backend.URL, backend.URL); err != nil {
				b.Fatal(err)
			}
			front := httptest.NewServer(gw)
			defer front.Close()
			client := front.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Get(front.URL + "/svc/x")
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
			}
		})
	}
}

// BenchmarkFGSMCraft measures the adversarial-sample crafting cost — the
// paper's "complexity" metric (≈37.86 μs/sample on their hardware).
func BenchmarkFGSMCraft(b *testing.B) {
	model, test := uc2Model(b)
	grad, ok := model.(ml.GradientClassifier)
	if !ok {
		b.Fatal("nn not differentiable")
	}
	single := test.Subset([]int{0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.FGSM(grad, single, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaxonomy exercises the registry validation (trivial, but keeps
// the taxonomy experiment covered by the bench suite).
func BenchmarkTaxonomy(b *testing.B) { benchExperiment(b, "taxonomy") }
