// Command spatial-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	spatial-bench -exp fig6            # one experiment
//	spatial-bench -exp all             # everything, in paper order
//	spatial-bench -exp fig8c -quick    # reduced-size run
//	spatial-bench -exp uc2-fgsm -json out.json
//	spatial-bench -exp ext               # extension experiments
//	spatial-bench -list                  # known ids
//
// Known experiment ids: uc1-baseline, fig6, fig6-shap, uc2-baseline,
// uc2-fgsm, fig7-shap, fig7, fig8b, fig8c, fig8d, taxonomy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// paperOrder lists experiments in the order the paper presents them.
var paperOrder = []string{
	"taxonomy",
	"uc1-baseline", "fig6", "fig6-shap",
	"uc2-baseline", "uc2-fgsm", "fig7-shap", "fig7",
	"fig8b", "fig8c", "fig8d",
}

// extOrder lists the extension experiments (-exp ext).
var extOrder = []string{"ext-defense", "ext-privacy", "ext-federated"}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	quick := fs.Bool("quick", false, "reduced-size run")
	seed := fs.Int64("seed", 1, "random seed")
	jsonOut := fs.String("json", "", "write structured results to this JSON file")
	list := fs.Bool("list", false, "list known experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	var ids []string
	switch *exp {
	case "all":
		ids = paperOrder
	case "ext":
		ids = extOrder
	default:
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected (known: %v)", experiments.IDs())
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Out: os.Stdout}
	results := make(map[string]any, len(ids))
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		results[id] = res
		fmt.Printf("\n[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal results: %w", err)
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *jsonOut, err)
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}
	return nil
}
