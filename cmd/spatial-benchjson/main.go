// Command spatial-benchjson converts `go test -bench` text output read
// from stdin into a stable JSON document, so benchmark results can be
// committed and diffed instead of living in scrollback.
//
// Usage:
//
//	go test -bench=Serving -benchmem -run='^$' ./internal/serving/ |
//	  spatial-benchjson -out BENCH_serving.json \
//	    -trajectory BENCH_trajectory.json -commit "$(git rev-parse --short HEAD)"
//
// The raw benchmark lines are echoed to stderr so the terminal still
// shows progress while the JSON goes to the file. Parsing is strict: a
// malformed Benchmark line, a FAIL, or an empty run exits nonzero and
// writes nothing, so a truncated run can never silently replace the
// committed baseline with a partial document. Lines without -benchmem
// columns parse fine.
//
// With -trajectory, the run is also appended to the named history file
// stamped with goos/goarch/cpu and the -commit/-date provenance, so the
// throughput trajectory across PRs is a committed, diffable artifact
// (re-runs at the same commit on the same machine replace their entry
// instead of duplicating it).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	trajectory := fs.String("trajectory", "", "append the run to this committed history file")
	commit := fs.String("commit", "", "commit stamp for the trajectory entry (e.g. git rev-parse --short HEAD)")
	date := fs.String("date", "", "date stamp for the trajectory entry (default today, YYYY-MM-DD)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := benchfmt.ParseStream(os.Stdin, os.Stderr)
	if err != nil {
		return err
	}

	buf, err := doc.Marshal()
	if err != nil {
		return err
	}
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}

	if *trajectory != "" {
		tr, err := benchfmt.LoadTrajectory(*trajectory)
		if err != nil {
			return err
		}
		when := *date
		if when == "" {
			when = time.Now().UTC().Format("2006-01-02")
		}
		if err := tr.Append(*trajectory, doc, *commit, when); err != nil {
			return err
		}
	}
	return nil
}
