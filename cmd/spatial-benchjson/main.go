// Command spatial-benchjson converts `go test -bench` text output read
// from stdin into a stable JSON document, so benchmark results can be
// committed and diffed instead of living in scrollback.
//
// Usage:
//
//	go test -bench=Serving -benchmem -run='^$' ./internal/serving/ |
//	  spatial-benchjson -out BENCH_serving.json
//
// The raw benchmark lines are echoed to stderr so the terminal still
// shows progress while the JSON goes to the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
	// Extra holds any custom -benchmem style metrics (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the file layout.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc := Document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (run with `go test -bench=... | spatial-benchjson`)")
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// parseBench parses one benchmark result line:
//
//	BenchmarkName-8   123  456.7 ns/op  89 B/op  2 allocs/op  1.5 rows/s
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	r := Result{Name: name, Procs: 1}
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			r.Name = name[:i]
			r.Procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// The rest come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, r.NsPerOp > 0
}
