// Command spatial-cluster runs an N-replica serving tier: in-process
// replicas behind the cluster coordinator, with shard-aware routing,
// replicated registries, and cluster-wide atomic promote/rollback on
// /cluster/promote, /cluster/rollback, /cluster/status.
//
// Usage:
//
//	spatial-cluster -replicas 3 -addr 127.0.0.1:8200
//
// Smoke mode (CI) self-drives the failover check — train, promote,
// kill the shard owner, predict through the real gateway — and writes a
// status artifact:
//
//	spatial-cluster -smoke -out cluster-status.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gateway"
	"repro/internal/ml"
	"repro/internal/serving"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-cluster", flag.ContinueOnError)
	replicas := fs.Int("replicas", 3, "in-process replica count")
	addr := fs.String("addr", "127.0.0.1:8200", "coordinator listen address")
	heartbeat := fs.Duration("heartbeat", time.Second, "heartbeat sweep interval")
	smoke := fs.Bool("smoke", false, "run the CI failover smoke and exit")
	out := fs.String("out", "", "smoke: write the status artifact JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replicas < 1 {
		return errors.New("-replicas must be >= 1")
	}
	if *smoke {
		return runSmoke(*replicas, *out)
	}
	return serve(*replicas, *addr, *heartbeat)
}

// buildCluster assembles n in-process replicas joined into one cluster
// and trains two versions of the "demo" model through the coordinator
// (version 1 promoted, version 2 awaiting /cluster/promote).
func buildCluster(n int, heartbeat time.Duration, tel *telemetry.Registry) (*cluster.Cluster, []*cluster.Replica, error) {
	c := cluster.New(cluster.Config{
		HeartbeatInterval: heartbeat,
		Telemetry:         tel,
	})
	reps := make([]*cluster.Replica, 0, n)
	for i := 0; i < n; i++ {
		rp := cluster.NewReplica(fmt.Sprintf("replica-%d", i), serving.Config{})
		reps = append(reps, rp)
		if err := c.Join(rp); err != nil {
			return nil, nil, err
		}
	}
	for seed := int64(1); seed <= 2; seed++ {
		model, err := trainDemo(seed)
		if err != nil {
			return nil, nil, err
		}
		if _, err := c.Register("demo", model); err != nil {
			return nil, nil, err
		}
	}
	return c, reps, nil
}

// trainDemo fits a small logistic model on a separable synthetic table;
// distinct seeds give distinct content ids, so version history is real.
func trainDemo(seed int64) (ml.Classifier, error) {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("demo", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < 160; i++ {
		y := i % 2
		x := []float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}
		if err := tb.Append(x, y); err != nil {
			return nil, err
		}
	}
	model, err := ml.NewByName("lr", seed)
	if err != nil {
		return nil, err
	}
	if err := model.Fit(tb); err != nil {
		return nil, err
	}
	return model, nil
}

func serve(n int, addr string, heartbeat time.Duration) error {
	tel := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(tel)
	c, reps, err := buildCluster(n, heartbeat, tel)
	if err != nil {
		return err
	}
	defer func() {
		for _, rp := range reps {
			rp.Close()
		}
	}()
	c.Start()
	defer c.Stop()

	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/metrics", tel.Handler())
	srv := &http.Server{Addr: addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("cluster coordinator on http://%s (%d replicas; /predict, /cluster/status, /cluster/promote, /cluster/rollback, /metrics)\n", addr, n)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// smokeArtifact is the status JSON the CI step uploads.
type smokeArtifact struct {
	Pass        bool               `json:"pass"`
	Replicas    int                `json:"replicas"`
	KilledOwner string             `json:"killedOwner"`
	Requests    int                `json:"requests"`
	Codes       map[string]int     `json:"codes"`
	Shed        int                `json:"shed"`
	Failures    []string           `json:"failures,omitempty"`
	Status      cluster.StatusInfo `json:"status"`
}

// runSmoke drives the failover path end to end on real components:
// cluster behind the real gateway, promote to v2, kill the shard owner,
// and a burst of predicts that must produce zero 5xx — sheds (429) are
// the only tolerated non-200s.
func runSmoke(n int, outPath string) error {
	tel := telemetry.NewRegistry()
	c, reps, err := buildCluster(n, 100*time.Millisecond, tel)
	if err != nil {
		return err
	}
	defer func() {
		for _, rp := range reps {
			rp.Close()
		}
	}()
	c.Start()
	defer c.Stop()

	// Coordinator listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	coordSrv := &http.Server{Handler: c.Handler()}
	coordErr := make(chan error, 1)
	go func() { coordErr <- coordSrv.Serve(ln) }()
	defer func() {
		_ = coordSrv.Close()
		<-coordErr // join (always http.ErrServerClosed after Close)
	}()
	coordURL := "http://" + ln.Addr().String()

	// Real gateway in front of the coordinator.
	gw := gateway.New(gateway.Config{HealthInterval: 100 * time.Millisecond})
	if err := gw.AddRoute("/ml", gateway.LeastConnections, coordURL); err != nil {
		return err
	}
	gw.Start()
	defer gw.Stop()
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	gwSrv := &http.Server{Handler: gw}
	gwErr := make(chan error, 1)
	go func() { gwErr <- gwSrv.Serve(gwLn) }()
	defer func() {
		_ = gwSrv.Close()
		<-gwErr // join (always http.ErrServerClosed after Close)
	}()
	gwURL := "http://" + gwLn.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	art := smokeArtifact{Replicas: n, Codes: make(map[string]int)}
	fail := func(format string, a ...any) { art.Failures = append(art.Failures, fmt.Sprintf(format, a...)) }

	// Cluster-wide atomic promote to version 2, through the gateway.
	promoteBody, err := json.Marshal(map[string]any{"name": "demo", "version": 2})
	if err != nil {
		return err
	}
	code, raw, err := post(client, gwURL+"/ml/cluster/promote", promoteBody)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		fail("promote: http %d: %s", code, raw)
	}

	// Kill the shard owner of the demo model mid-run.
	owner := c.Owner("demo")
	art.KilledOwner = owner
	for _, rp := range reps {
		if rp.ID() == owner {
			rp.Kill()
		}
	}

	// Predict burst through the gateway: every request must come back
	// 200 or 429 (shed); any 5xx is a failover bug.
	instances := [][]float64{{2.1, 0.0}, {-2.2, 0.3}}
	predictBody, err := json.Marshal(map[string]any{"modelId": "demo", "instances": instances})
	if err != nil {
		return err
	}
	const burst = 200
	art.Requests = burst
	for i := 0; i < burst; i++ {
		code, raw, err := post(client, gwURL+"/ml/predict", predictBody)
		if err != nil {
			fail("predict %d: %v", i, err)
			continue
		}
		art.Codes[fmt.Sprintf("%d", code)]++
		switch {
		case code == http.StatusOK:
		case code == http.StatusTooManyRequests:
			art.Shed++
		default:
			if len(art.Failures) < 5 {
				fail("predict %d: http %d: %s", i, code, raw)
			}
		}
	}

	// The survivors must all serve version 2.
	st := c.Status()
	art.Status = st
	for _, a := range st.Aliases {
		if a.Name == "demo" && a.Current != 2 {
			fail("canonical demo at version %d, want 2", a.Current)
		}
	}

	art.Pass = len(art.Failures) == 0
	raw2, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, raw2, 0o644); err != nil {
			return err
		}
	}
	fmt.Println(string(raw2))
	if !art.Pass {
		return fmt.Errorf("cluster smoke failed (%d failures)", len(art.Failures))
	}
	return nil
}

// post runs one JSON POST and returns the status code and body.
func post(client *http.Client, url string, body []byte) (int, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			return
		}
	}()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, buf.String(), nil
}
