// Command spatial-dashboard runs the AI dashboard: the ingest API that AI
// sensors publish to, plus the JSON query API and the HTML view for human
// operators.
//
// Usage:
//
//	spatial-dashboard -addr 127.0.0.1:8088 -capacity 4096
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dashboard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-dashboard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-dashboard", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8088", "listen address")
	capacity := fs.Int("capacity", 4096, "readings kept per sensor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: dashboard.NewServer(dashboard.NewStore(*capacity)),
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("dashboard on http://%s (ingest at POST /api/readings, scrape /metrics, spans at /traces)\n", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
