// Command spatial-gateway runs the SPATIAL API gateway (the Kong
// equivalent) in front of the metric micro-services.
//
// Usage:
//
//	spatial-gateway -addr 127.0.0.1:8100 \
//	  -route /ml=http://127.0.0.1:8101 \
//	  -route /shap=http://127.0.0.1:8102,http://127.0.0.1:8112 \
//	  -policy least-conn -rate 100 -apikey secret1 -apikey secret2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

// stringList collects repeatable flags.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-gateway", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8100", "listen address")
	policyName := fs.String("policy", "round-robin", "balancing policy: round-robin or least-conn")
	rate := fs.Float64("rate", 0, "per-client rate limit in requests/second (0 = off)")
	burst := fs.Int("burst", 0, "rate-limit burst (default = rate)")
	health := fs.Duration("health-interval", time.Second, "upstream health-check period")
	var routes, keys stringList
	fs.Var(&routes, "route", "route as /prefix=http://backend1[,http://backend2] (repeatable)")
	fs.Var(&keys, "apikey", "valid API key (repeatable; enables auth)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(routes) == 0 {
		return errors.New("at least one -route is required")
	}
	var policy gateway.Balancing
	switch *policyName {
	case "round-robin":
		policy = gateway.RoundRobin
	case "least-conn":
		policy = gateway.LeastConnections
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	gw := gateway.New(gateway.Config{
		APIKeys:        keys,
		RatePerSecond:  *rate,
		Burst:          *burst,
		HealthInterval: *health,
	})
	for _, r := range routes {
		prefix, backends, ok := strings.Cut(r, "=")
		if !ok {
			return fmt.Errorf("route %q must be /prefix=backend[,backend]", r)
		}
		if err := gw.AddRoute(prefix, policy, strings.Split(backends, ",")...); err != nil {
			return err
		}
		fmt.Printf("route %s -> %s\n", prefix, backends)
	}
	gw.Start()
	defer gw.Stop()

	srv := &http.Server{Addr: *addr, Handler: gw}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("gateway listening on http://%s (Prometheus exposition at /metrics, spans at /traces, route JSON at /gateway/metrics)\n", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
