// Command spatial-kernelcheck runs the kernel-shape subset of
// internal/lint — the checks that decide whether the serving hot set's
// data loops are kernel-grade:
//
//	bounds-provable  every index provably in bounds (SSA + value-range)
//	pointer-chase    no load-dependent loads (linked walks, s[i][j])
//	hot-indirect     no dynamic dispatch per iteration
//	map-order-leak   no map order reaching serialized artifacts
//
// It is a focused frontend over the same driver spatial-lint uses: the
// same suppression directives (`//lint:ignore check reason`), the same
// baseline file, the same SARIF export — so a kernel sweep in CI or an
// editor can run in seconds without loading the full suite.
//
// Usage:
//
//	spatial-kernelcheck [flags] [patterns...]
//
// Patterns default to "./...". Exit status is 0 when no gating
// findings exist, 1 when findings remain, 2 on usage or load errors.
// The warn-severity hot-indirect findings gate by default; pass
// -fail-on error to let reasoned dispatch ride while bounds and chase
// regressions still fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// kernelChecks is the fixed check subset this command exists for.
const kernelChecks = "bounds-provable,hot-indirect,map-order-leak,pointer-chase"

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings as JSON")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings (with their reasons)")
		dir        = flag.String("dir", ".", "directory patterns are resolved against")
		failOn     = flag.String("fail-on", "warn", "minimum severity that fails the run: error, warn, or info")
		baseline   = flag.String("baseline", ".lint-baseline.json", "baseline file of accepted findings (missing file = empty)")
		sarifOut   = flag.String("sarif", "", "write the run as SARIF 2.1.0 to this file (\"-\" for stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	minSev := lint.Severity(*failOn)
	switch minSev {
	case lint.SeverityError, lint.SeverityWarn, lint.SeverityInfo:
	default:
		fail(fmt.Errorf("spatial-kernelcheck: -fail-on must be error, warn, or info (got %q)", *failOn))
	}

	analyzers, err := lint.SelectAnalyzers(kernelChecks)
	if err != nil {
		fail(err)
	}
	res, err := lint.RunOpts(*dir, lint.Options{
		Patterns:  flag.Args(),
		Analyzers: analyzers,
		Tests:     true,
	})
	if err != nil {
		fail(err)
	}

	base, err := lint.LoadBaseline(*baseline)
	if err != nil {
		fail(err)
	}
	res.ApplyBaseline(base)
	// No stale-entry reporting here: a subset run cannot tell a stale
	// entry from one absorbing a finding of a check it did not run;
	// spatial-lint's full runs own that hygiene.

	if *sarifOut != "" {
		sw := os.Stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fail(err)
			}
			sw = f
		}
		if err := res.WriteSARIF(sw); err != nil {
			fail(err)
		}
		if sw != os.Stdout {
			if err := sw.Close(); err != nil {
				fail(err)
			}
		}
	}

	gating := res.Gating(minSev)
	if *jsonOut {
		out := struct {
			Findings []lint.Finding `json:"findings"`
			Packages int            `json:"packages"`
		}{res.Findings, res.Packages}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	} else {
		nSupp, nBase := 0, 0
		for _, f := range res.Findings {
			switch {
			case f.Suppressed:
				nSupp++
				if *suppressed {
					fmt.Printf("%s (suppressed: %s)\n", f, f.SuppressReason)
				}
			case f.Baselined:
				nBase++
			default:
				fmt.Println(f)
			}
		}
		fmt.Fprintf(os.Stderr, "spatial-kernelcheck: %d packages, %d gating findings (%d suppressed, %d baselined)\n",
			res.Packages, len(gating), nSupp, nBase)
	}
	if len(gating) > 0 {
		os.Exit(1)
	}
}
