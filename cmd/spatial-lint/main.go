// Command spatial-lint runs SPATIAL's project-specific static-analysis
// suite (internal/lint) over the repository: determinism of the
// fixed-seed experiment packages, telemetry label-cardinality bounds,
// trace-context propagation across the serving tiers, float-equality
// discipline in the numeric kernels, goroutine lifecycle hygiene,
// unchecked I/O errors on the server edges, the flow-sensitive
// checks (lock balance, response-body and context-cancel leaks,
// wall-clock bypasses, append aliasing) built on the CFG dataflow
// engine, the interprocedural checks (lock-order cycles, taint
// paths into filesystem sinks, hot-path allocations) built on the
// whole-module call graph and its per-function summaries, and the
// kernel-shape checks (bounds-provable, pointer-chase, hot-indirect,
// map-order-leak) built on the SSA + value-range layer — also
// runnable alone, fast, as spatial-kernelcheck.
//
// Usage:
//
//	spatial-lint [flags] [patterns...]
//
// Patterns default to "./...". Exit status is 0 when no gating findings
// exist, 1 when findings remain, 2 on usage or load errors. A finding
// gates the run when it is unsuppressed, not absorbed by the baseline
// file, and at least -fail-on severe.
//
// Suppress an individual finding inline with
//
//	//lint:ignore check-name reason
//
// on the offending line or the line above it (comma-separate several
// check names to waive more than one).
//
// -fix applies the mechanical fixes some findings carry (insert `defer
// cancel()`, swap time.Now() for the injected clock, defer an unpaired
// Unlock); -diff prints those fixes as a unified diff without writing.
// -write-baseline records the current findings into the baseline file so
// a new check can land as error without blocking CI on legacy debt;
// -baseline-prune drops entries no current finding consumes. -sarif
// exports the run as SARIF 2.1.0 for CI annotation, and -graph dumps
// the interprocedural call graph as Graphviz DOT.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings as JSON")
		checks     = flag.String("checks", "", "comma-separated subset of checks to run (default all)")
		list       = flag.Bool("list", false, "list available checks and exit")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings (with their reasons)")
		dir        = flag.String("dir", ".", "directory patterns are resolved against")
		tests      = flag.Bool("tests", true, "also analyze test files (checks opt in individually)")
		failOn     = flag.String("fail-on", "warn", "minimum severity that fails the run: error, warn, or info")
		baseline   = flag.String("baseline", ".lint-baseline.json", "baseline file of accepted findings (missing file = empty)")
		writeBase  = flag.Bool("write-baseline", false, "rewrite the baseline file from the current findings and exit")
		fix        = flag.Bool("fix", false, "apply the mechanical fixes carried by findings")
		diff       = flag.Bool("diff", false, "print the fixes as a diff without writing files")
		sarifOut   = flag.String("sarif", "", "write the run as SARIF 2.1.0 to this file (\"-\" for stdout)")
		graphOut   = flag.String("graph", "", "write the call graph as Graphviz DOT to this file (\"-\" for stdout)")
		pruneBase  = flag.Bool("baseline-prune", false, "rewrite the baseline without entries that absorb no current finding")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-22s [%s] %s\n", a.Name, a.EffectiveSeverity(), a.Doc)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	minSev := lint.Severity(*failOn)
	switch minSev {
	case lint.SeverityError, lint.SeverityWarn, lint.SeverityInfo:
	default:
		fail(fmt.Errorf("spatial-lint: -fail-on must be error, warn, or info (got %q)", *failOn))
	}

	analyzers, err := lint.SelectAnalyzers(*checks)
	if err != nil {
		fail(err)
	}

	// openOut resolves an output-path flag: "-" is stdout, anything else
	// is created (closed on exit via the returned func).
	openOut := func(path string) (*os.File, func()) {
		if path == "-" {
			return os.Stdout, func() {}
		}
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		return f, func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
	}

	opts := lint.Options{
		Patterns:  flag.Args(),
		Analyzers: analyzers,
		Tests:     *tests,
	}
	var closeGraph func()
	if *graphOut != "" {
		var gw *os.File
		gw, closeGraph = openOut(*graphOut)
		opts.Graph = gw
	}
	res, err := lint.RunOpts(*dir, opts)
	if closeGraph != nil {
		closeGraph()
	}
	if err != nil {
		fail(err)
	}

	if *writeBase {
		b := lint.BaselineFrom(res)
		if err := b.Write(*baseline); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "spatial-lint: wrote %d entries to %s\n", len(b.Entries), *baseline)
		return
	}

	base, err := lint.LoadBaseline(*baseline)
	if err != nil {
		fail(err)
	}
	res.ApplyBaseline(base)

	// Stale entries are budget a regression could silently spend: report
	// them on every run, rewrite the file when asked.
	if stale := res.StaleBaseline(base); len(stale) > 0 {
		if *pruneBase {
			pruned := base.Prune(stale)
			if err := pruned.Write(*baseline); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "spatial-lint: pruned %d stale entries from %s (%d remain)\n",
				len(stale), *baseline, len(pruned.Entries))
		} else {
			for _, e := range stale {
				fmt.Fprintf(os.Stderr, "spatial-lint: stale baseline entry (no current finding): %s %s %q\n",
					e.Check, e.File, e.Message)
			}
			fmt.Fprintf(os.Stderr, "spatial-lint: %d stale baseline entries; rerun with -baseline-prune to drop them\n", len(stale))
		}
	}

	if *sarifOut != "" {
		sw, closeSarif := openOut(*sarifOut)
		if err := res.WriteSARIF(sw); err != nil {
			fail(err)
		}
		closeSarif()
	}

	if *fix || *diff {
		patches, err := lint.BuildPatches(*dir, res.Findings)
		if err != nil {
			fail(err)
		}
		applied := 0
		for _, p := range patches {
			applied += p.Applied
			if *diff {
				fmt.Print(p.Diff())
			}
		}
		if *fix && !*diff {
			if err := lint.WritePatches(patches); err != nil {
				fail(err)
			}
		}
		verb := "would apply"
		if *fix && !*diff {
			verb = "applied"
		}
		fmt.Fprintf(os.Stderr, "spatial-lint: %s %d fixes across %d files\n", verb, applied, len(patches))
		return
	}

	gating := res.Gating(minSev)
	if *jsonOut {
		out := struct {
			Findings   []lint.Finding `json:"findings"`
			Suppressed int            `json:"suppressed"`
			Baselined  int            `json:"baselined"`
			Packages   int            `json:"packages"`
		}{res.Findings, 0, 0, res.Packages}
		for _, f := range res.Findings {
			if f.Suppressed {
				out.Suppressed++
			} else if f.Baselined {
				out.Baselined++
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	} else {
		nSupp, nBase := 0, 0
		for _, f := range res.Findings {
			switch {
			case f.Suppressed:
				nSupp++
				if *suppressed {
					fmt.Printf("%s (suppressed: %s)\n", f, f.SuppressReason)
				}
			case f.Baselined:
				nBase++
				if *suppressed {
					fmt.Printf("%s (baselined)\n", f)
				}
			default:
				fixable := ""
				if len(f.Edits) > 0 {
					fixable = " [fixable: rerun with -fix]"
				}
				fmt.Printf("%s%s\n", f, fixable)
			}
		}
		fmt.Fprintf(os.Stderr, "spatial-lint: %d packages, %d gating findings (%d suppressed, %d baselined)\n",
			res.Packages, len(gating), nSupp, nBase)
	}
	if len(gating) > 0 {
		os.Exit(1)
	}
}
