// Command spatial-lint runs SPATIAL's project-specific static-analysis
// suite (internal/lint) over the repository: determinism of the
// fixed-seed experiment packages, telemetry label-cardinality bounds,
// trace-context propagation across the serving tiers, float-equality
// discipline in the numeric kernels, goroutine lifecycle hygiene, and
// unchecked I/O errors on the server edges.
//
// Usage:
//
//	spatial-lint [-json] [-checks a,b] [-suppressed] [patterns...]
//
// Patterns default to "./...". Exit status is 0 when no unsuppressed
// findings exist, 1 when findings remain, 2 on usage or load errors.
// Suppress an individual finding inline with
//
//	//lint:ignore check-name reason
//
// on the offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings as JSON")
		checks     = flag.String("checks", "", "comma-separated subset of checks to run (default all)")
		list       = flag.Bool("list", false, "list available checks and exit")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings (with their reasons)")
		dir        = flag.String("dir", ".", "directory patterns are resolved against")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.SelectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := lint.Run(*dir, flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	active := res.Unsuppressed()
	if *jsonOut {
		out := struct {
			Findings   []lint.Finding `json:"findings"`
			Suppressed int            `json:"suppressed"`
			Packages   int            `json:"packages"`
		}{active, len(res.Findings) - len(active), res.Packages}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			if f.Suppressed {
				if *suppressed {
					fmt.Printf("%s (suppressed: %s)\n", f, f.SuppressReason)
				}
				continue
			}
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "spatial-lint: %d packages, %d findings (%d suppressed)\n",
			res.Packages, len(active), len(res.Findings)-len(active))
	}
	if len(active) > 0 {
		os.Exit(1)
	}
}
