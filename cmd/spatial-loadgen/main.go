// Command spatial-loadgen is the JMeter-equivalent load driver used by the
// capacity experiments: a thread group with a ramp-up period samples one
// HTTP endpoint and prints the summary report plus the
// response-times-over-active-threads series.
//
// Usage:
//
//	spatial-loadgen -url http://127.0.0.1:8100/shap/explain \
//	  -method POST -body request.json -threads 100 -rampup 5s -iterations 2
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "target URL (required)")
	method := fs.String("method", http.MethodGet, "HTTP method")
	bodyFile := fs.String("body", "", "file with the request body (optional)")
	contentType := fs.String("content-type", "application/json", "Content-Type for requests with a body")
	threads := fs.Int("threads", 10, "concurrent virtual users")
	rampUp := fs.Duration("rampup", time.Second, "ramp-up period")
	iterations := fs.Int("iterations", 5, "samples per thread (ignored when -duration is set)")
	duration := fs.Duration("duration", 0, "run for a fixed duration instead of counting iterations")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	var body []byte
	if *bodyFile != "" {
		raw, err := os.ReadFile(*bodyFile)
		if err != nil {
			return fmt.Errorf("read body: %w", err)
		}
		body = raw
	}
	header := http.Header{}
	if len(body) > 0 {
		header.Set("Content-Type", *contentType)
	}
	sampler := &loadgen.HTTPSampler{
		Method: *method,
		URL:    *url,
		Body:   body,
		Header: header,
		Client: &http.Client{Timeout: *timeout},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	group := loadgen.ThreadGroup{Threads: *threads, RampUp: *rampUp}
	if *duration > 0 {
		group.Duration = *duration
		fmt.Printf("%d threads, %v ramp-up, %v duration -> %s %s\n", *threads, *rampUp, *duration, *method, *url)
	} else {
		group.Iterations = *iterations
		fmt.Printf("%d threads, %v ramp-up, %d iterations each -> %s %s\n", *threads, *rampUp, *iterations, *method, *url)
	}
	res, err := loadgen.Run(ctx, group, sampler)
	if err != nil {
		return err
	}

	s := res.Summarize()
	fmt.Printf("\nSummary report\n")
	fmt.Printf("  samples     %d\n", s.Count)
	fmt.Printf("  errors      %d (%.1f%%)\n", s.Errors, s.ErrorRate*100)
	fmt.Printf("  shed (429)  %d\n", s.Shed)
	fmt.Printf("  mean        %v\n", s.Mean.Round(time.Millisecond))
	fmt.Printf("  min/max     %v / %v\n", s.Min.Round(time.Millisecond), s.Max.Round(time.Millisecond))
	fmt.Printf("  p50/p90/p95/p99  %v / %v / %v / %v\n",
		s.P50.Round(time.Millisecond), s.P90.Round(time.Millisecond),
		s.P95.Round(time.Millisecond), s.P99.Round(time.Millisecond))
	fmt.Printf("  throughput  %.2f req/s\n", s.Throughput)

	fmt.Printf("\nResponse times over active threads\n")
	fmt.Printf("%-14s %12s %8s\n", "activeThreads", "meanLatency", "samples")
	for _, p := range res.OverActiveThreads() {
		fmt.Printf("%-14d %12v %8d\n", p.ActiveThreads, p.MeanLatency.Round(time.Millisecond), p.Count)
	}

	if len(s.SlowestTraces) > 0 {
		fmt.Printf("\nSlowest traces (join against /traces?trace=<id> on the gateway and services)\n")
		for _, ts := range s.SlowestTraces {
			status := "ok"
			if ts.Err {
				status = "ERR"
			}
			fmt.Printf("  %s  %8v  %s\n", ts.TraceID, ts.Latency.Round(time.Millisecond), status)
		}
	}
	return nil
}
