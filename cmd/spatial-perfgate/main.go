// Command spatial-perfgate verifies the serving hot path's performance
// contracts. It has two halves, both CI gates:
//
// Static: harvest the compiler's optimization diagnostics
// (go build -gcflags=<pkg>=-json=0,<dir>), compute the hot set — every
// function reachable from the serving Predict* entry points and the ml
// batch kernels, via internal/lint's interprocedural call graph — and
// check each hot function against its committed .perf-manifest.json
// contract (must-inline, params must-not-escape, bounded heap
// allocations and bounds checks inside data loops). A lost optimization
// fails the build before any benchmark could measure it.
//
// Measured: compare a fresh `make bench` run against the committed
// BENCH_serving.json baseline with a Mann-Whitney U test (when -count
// samples permit) and a noise band, gating only on significant
// regressions past -fail-on, and only when both runs came from the same
// machine.
//
// Usage:
//
//	spatial-perfgate -manifest .perf-manifest.json -report perfgate-report.json
//	spatial-perfgate -write-manifest -manifest .perf-manifest.json
//	spatial-perfgate -static=false -bench-old BENCH_serving.json -bench-new BENCH_fresh.json
//
// Exit status: 0 when every contract holds and no benchmark regressed,
// 1 on gate failure, 2 on usage or harness errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/lint"
	"repro/internal/perfgate"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("spatial-perfgate", flag.ContinueOnError)
	manifestPath := fs.String("manifest", ".perf-manifest.json", "committed contract file")
	writeManifest := fs.Bool("write-manifest", false, "regenerate the manifest from the observed state and exit")
	pkgsFlag := fs.String("pkgs", "./internal/ml,./internal/serving,./internal/mat,./internal/cluster", "comma-separated packages to harvest diagnostics for")
	reportPath := fs.String("report", "", "write a machine-readable JSON report here")
	static := fs.Bool("static", true, "run the static contract gate")
	benchOld := fs.String("bench-old", "", "committed benchmark baseline (BENCH_serving.json)")
	benchNew := fs.String("bench-new", "", "fresh benchmark run to compare against -bench-old")
	noise := fs.Float64("noise", 0.05, "relative ns/op band treated as noise")
	failOn := fs.Float64("fail-on", 0.10, "relative ns/op regression that fails the gate")
	alpha := fs.Float64("alpha", 0.05, "Mann-Whitney significance level for sample-backed comparisons")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modRoot, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
		return 2
	}
	pkgs := splitList(*pkgsFlag)

	report := &perfgate.Report{Tool: "spatial-perfgate", Pass: true}

	if *static || *writeManifest {
		if code := runStatic(modRoot, pkgs, *manifestPath, *writeManifest, report); code != 0 {
			return code
		}
		if *writeManifest {
			return 0
		}
	}

	if (*benchOld == "") != (*benchNew == "") {
		fmt.Fprintln(os.Stderr, "spatial-perfgate: -bench-old and -bench-new must be given together")
		return 2
	}
	if *benchOld != "" {
		oldDoc, err := benchfmt.Load(*benchOld)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
			return 2
		}
		newDoc, err := benchfmt.Load(*benchNew)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
			return 2
		}
		opts := perfgate.BenchOptions{Noise: *noise, FailOn: *failOn, Alpha: *alpha}
		report.Bench = perfgate.CompareBench(oldDoc, newDoc, opts)
		if report.Bench.Regressions > 0 {
			report.Pass = false
		}
	}

	if *reportPath != "" {
		if err := report.Write(*reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
			return 2
		}
	}
	report.Print(os.Stdout)
	if !report.Pass {
		return 1
	}
	return 0
}

// runStatic harvests diagnostics, profiles the hot set, and either
// regenerates the manifest or checks it. It fills report in place and
// returns a nonzero exit code only on harness errors (gate failures are
// recorded in report.Pass).
func runStatic(modRoot string, pkgs []string, manifestPath string, write bool, report *perfgate.Report) int {
	diags, err := perfgate.Harvest(modRoot, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
		return 2
	}
	profiles, err := perfgate.BuildProfiles(modRoot, perfgate.ProfileOptions{Packages: pkgs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
		return 2
	}
	obs := perfgate.Observe(profiles, diags)
	report.Toolchain = diags.Toolchain
	report.Functions = len(obs)

	if write {
		var prev *perfgate.Manifest
		if m, err := perfgate.LoadManifest(manifestPath); err == nil {
			prev = m
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
			return 2
		}
		m := perfgate.Generate(obs, diags.Toolchain, prev)
		if err := m.Save(manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "spatial-perfgate:", err)
			return 2
		}
		fmt.Printf("spatial-perfgate: wrote %s (%d contracts, %s)\n", manifestPath, len(m.Functions), diags.Toolchain)
		return 0
	}

	manifest, err := perfgate.LoadManifest(manifestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatial-perfgate: %v (generate one with -write-manifest)\n", err)
		return 2
	}
	report.Contracts = len(manifest.Functions)
	report.Violations = perfgate.CheckManifest(manifest, obs, diags.Toolchain)
	if perfgate.Gating(report.Violations) > 0 {
		report.Pass = false
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
