// Command spatial-racestress drives the race detector through many
// schedules instead of one: it reruns the -race test suites of the
// concurrency-heavy tiers across a GOMAXPROCS × shuffle-seed matrix,
// with GORACE configured to halt on the first report and drop the race
// log as a CI artifact.
//
// A single -race pass observes a single schedule; races with narrow
// windows — check-then-act on atomics, the unguarded field accesses the
// lint topology checks flag statically — often need an adversarial
// schedule to materialize. Varying GOMAXPROCS changes preemption
// pressure and -shuffle varies test interleaving, so the matrix
// explores materially different schedules while staying reproducible:
// every cell names its seed, and one cell replays alone via
// -procs and -seeds.
//
// Usage:
//
//	spatial-racestress
//	spatial-racestress -pkgs ./internal/cluster/... -procs 4 -seeds 7 -count 5
//	spatial-racestress -out racestress-artifacts -run TestCluster
//
// Artifacts land under -out: GORACE logs as race_p<procs>_s<seed>.<pid>,
// failing cell output as fail_p<procs>_s<seed>.log, and a summary.json
// with one row per cell.
//
// Exit status: 0 when every cell passes, 1 when any cell fails, 2 on
// usage or harness errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// cell is one matrix entry's result row in summary.json.
type cell struct {
	Procs      int    `json:"procs"`
	Seed       int    `json:"seed"`
	Pass       bool   `json:"pass"`
	DurationMs int64  `json:"durationMs"`
	FailLog    string `json:"failLog,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("spatial-racestress", flag.ContinueOnError)
	pkgsFlag := fs.String("pkgs", "./internal/cluster/...,./internal/serving/...", "comma-separated package patterns to stress")
	procsFlag := fs.String("procs", "1,2,4", "comma-separated GOMAXPROCS values")
	seedsFlag := fs.String("seeds", "1,2,3", "comma-separated -shuffle seeds")
	count := fs.Int("count", 3, "test -count per cell (cache-busting repeats)")
	runPat := fs.String("run", "", "test -run filter (empty runs everything)")
	timeout := fs.Duration("timeout", 10*time.Minute, "go test -timeout per cell")
	short := fs.Bool("short", false, "pass -short to the test runs")
	outDir := fs.String("out", "racestress-artifacts", "artifact directory (race logs, failure output, summary.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pkgs := splitNonEmpty(*pkgsFlag)
	procs, err := parseInts(*procsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatial-racestress: -procs: %v\n", err)
		return 2
	}
	seeds, err := parseInts(*seedsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatial-racestress: -seeds: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 || len(procs) == 0 || len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "spatial-racestress: -pkgs, -procs, and -seeds must each be non-empty")
		return 2
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "spatial-racestress: %v\n", err)
		return 2
	}
	absOut, err := filepath.Abs(*outDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatial-racestress: %v\n", err)
		return 2
	}

	var cells []cell
	failed := 0
	for _, p := range procs {
		for _, seed := range seeds {
			c := runCell(pkgs, p, seed, *count, *runPat, *timeout, *short, absOut)
			if !c.Pass {
				failed++
			}
			cells = append(cells, c)
		}
	}

	if err := writeSummary(filepath.Join(absOut, "summary.json"), cells); err != nil {
		fmt.Fprintf(os.Stderr, "spatial-racestress: %v\n", err)
		return 2
	}
	fmt.Printf("spatial-racestress: %d/%d cells passed (procs %v × seeds %v over %s)\n",
		len(cells)-failed, len(cells), procs, seeds, strings.Join(pkgs, " "))
	if failed > 0 {
		fmt.Printf("spatial-racestress: failing cell output and race logs under %s\n", absOut)
		return 1
	}
	return 0
}

// runCell executes one (GOMAXPROCS, seed) matrix entry: a full -race
// test run with shuffled order and halt-on-first-report semantics.
func runCell(pkgs []string, procs, seed, count int, runPat string, timeout time.Duration, short bool, absOut string) cell {
	args := []string{"test", "-race",
		"-count", strconv.Itoa(count),
		"-shuffle", strconv.Itoa(seed),
		"-timeout", timeout.String(),
	}
	if runPat != "" {
		args = append(args, "-run", runPat)
	}
	if short {
		args = append(args, "-short")
	}
	args = append(args, pkgs...)

	cmd := exec.Command("go", args...)
	// halt_on_error turns the first race report into an immediate test
	// failure; log_path preserves the full report (the runtime appends
	// the pid) even when the halted binary's output is truncated.
	raceLog := filepath.Join(absOut, fmt.Sprintf("race_p%d_s%d", procs, seed))
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("GOMAXPROCS=%d", procs),
		fmt.Sprintf("GORACE=halt_on_error=1 log_path=%s", raceLog),
	)

	fmt.Printf("spatial-racestress: GOMAXPROCS=%d seed=%d: go %s\n", procs, seed, strings.Join(args, " "))
	start := time.Now()
	out, err := cmd.CombinedOutput()
	c := cell{Procs: procs, Seed: seed, Pass: err == nil, DurationMs: time.Since(start).Milliseconds()}
	if err != nil {
		c.FailLog = fmt.Sprintf("fail_p%d_s%d.log", procs, seed)
		if werr := os.WriteFile(filepath.Join(absOut, c.FailLog), out, 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "spatial-racestress: writing %s: %v\n", c.FailLog, werr)
		}
		fmt.Printf("spatial-racestress: FAIL GOMAXPROCS=%d seed=%d (%v)\n%s", procs, seed, err, out)
	}
	return c
}

// writeSummary persists the matrix results as JSON for the CI artifact.
func writeSummary(path string, cells []cell) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cells); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("%v (and closing %s: %v)", err, path, cerr)
		}
		return err
	}
	return f.Close()
}

// splitNonEmpty splits a comma list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseInts parses a comma list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitNonEmpty(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
