// Command spatial-scenario runs declarative chaos + attack + drift
// campaigns against the SPATIAL stack and emits telemetry-scored
// verdicts.
//
// Usage:
//
//	spatial-scenario -list
//	spatial-scenario -run flash-crowd-poison -out scorecard.json
//	spatial-scenario -smoke -out scorecards/
//	spatial-scenario -run error-burst-breaker -live
//
// Without -live a scenario runs against the deterministic virtual world
// (fake clock, closed-form service model): a 30-second campaign finishes
// in milliseconds and the scorecard bytes reproduce exactly across runs.
// With -live the command self-hosts the real stack in-process — model
// service behind the chaos proxy behind the API gateway — and drives it
// with real HTTP load on the wall clock.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/ml"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-scenario:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("spatial-scenario", flag.ContinueOnError)
	list := fs.Bool("list", false, "list registered scenarios and exit")
	name := fs.String("run", "", "scenario name to run")
	smoke := fs.Bool("smoke", false, "run the deterministic smoke subset")
	out := fs.String("out", "", "scorecard output: file for -run, directory for -smoke (default stdout / .)")
	load := fs.String("load", "", "JSON file with extra scenarios to register")
	live := fs.Bool("live", false, "drive the real in-process stack over HTTP instead of the virtual world")
	seed := fs.Int64("seed", 0, "override the scenario seed (0 = keep)")
	strict := fs.Bool("strict", false, "exit non-zero when any scorecard verdict is \"fail\"")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lib := scenario.Default()
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		names, err := lib.LoadJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded %d scenario(s) from %s\n", len(names), *load)
	}

	if *list {
		for _, sc := range lib.All() {
			tag := " "
			if sc.Smoke {
				tag = "S"
			}
			fmt.Fprintf(stdout, "%s %-24s %8s  %s\n", tag, sc.Name, sc.Duration(), sc.Description)
		}
		return nil
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var targets []scenario.Scenario
	switch {
	case *smoke:
		targets = lib.Smoke()
	case *name != "":
		sc, ok := lib.Get(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (use -list)", *name)
		}
		targets = []scenario.Scenario{sc}
	default:
		return errors.New("nothing to do: pass -run NAME, -smoke, or -list")
	}

	failed := 0
	for _, sc := range targets {
		if *seed != 0 {
			sc.Seed = *seed
		}
		rec, err := execute(ctx, sc, *live)
		if err != nil {
			return fmt.Errorf("run %s: %w", sc.Name, err)
		}
		card := scenario.Score(rec)
		if card.Verdict == "fail" {
			failed++
		}
		buf, err := card.JSON()
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		switch {
		case *smoke:
			dir := *out
			if dir == "" {
				dir = "."
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(dir, sc.Name+".scorecard.json")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-24s verdict=%-8s requests=%d shed=%d sloViolation=%.0fs -> %s\n",
				sc.Name, card.Verdict, card.Requests, card.Shed, card.SLOViolationSeconds, path)
		case *out != "":
			if err := os.WriteFile(*out, buf, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: verdict=%s -> %s\n", sc.Name, card.Verdict, *out)
		default:
			if _, err := stdout.Write(buf); err != nil {
				return err
			}
		}
	}
	if *strict && failed > 0 {
		return fmt.Errorf("%d scenario(s) failed", failed)
	}
	return nil
}

// execute runs one scenario in the chosen mode.
func execute(ctx context.Context, sc scenario.Scenario, live bool) (*scenario.Record, error) {
	if !live {
		return scenario.RunVirtual(ctx, sc)
	}
	return runLive(ctx, sc)
}

// predictRequest is the live model service's wire format.
type predictRequest struct {
	Features []float64 `json:"features"`
}

// predictResponse carries the predicted class index.
type predictResponse struct {
	Class int `json:"class"`
}

// runLive self-hosts the real stack — model service, chaos proxy, API
// gateway — on loopback listeners and drives it with HTTP load on the
// wall clock. The chaos proxy sits between the gateway and the service,
// exactly where a misbehaving upstream would: latency faults slow the
// route, error bursts surface as gateway 5xx, resets feed the gateway's
// circuit breaker.
func runLive(ctx context.Context, sc scenario.Scenario) (*scenario.Record, error) {
	stream, err := scenario.BuildWorkload(sc.Workload, sc.Seed)
	if err != nil {
		return nil, err
	}

	// Model service: score posted feature rows with the workload model.
	// The gateway strips its route prefix before proxying, so the
	// service answers on "/" (a request for gw/predict arrives here
	// as a request for /).
	model := stream.Model()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(predictResponse{Class: ml.Predict(model, req.Features)}); err != nil {
			// The client went away mid-write; nothing to answer.
			return
		}
	})

	svcURL, svcClose, err := serve(mux)
	if err != nil {
		return nil, err
	}
	defer svcClose()

	chaos, err := scenario.NewChaosProxy(svcURL, clock.Real(), sc.Seed)
	if err != nil {
		return nil, err
	}
	chaosURL, chaosClose, err := serve(chaos)
	if err != nil {
		return nil, err
	}
	defer chaosClose()

	reg := telemetry.NewRegistry()
	gw := gateway.New(gateway.Config{Telemetry: reg})
	if err := gw.AddRoute("/predict", gateway.RoundRobin, chaosURL); err != nil {
		return nil, err
	}
	gwURL, gwClose, err := serve(gw)
	if err != nil {
		return nil, err
	}
	defer gwClose()

	body, err := json.Marshal(predictRequest{Features: stream.Reference().X[0]})
	if err != nil {
		return nil, err
	}
	sampler := &loadgen.HTTPSampler{
		Method: http.MethodPost,
		URL:    gwURL + "/predict",
		Body:   body,
		Client: &http.Client{Timeout: 5 * time.Second},
	}

	mgr := sensor.NewManager(nil)
	if err := stream.RegisterSensors(mgr, scenario.Duration(sc.SensorPeriod())); err != nil {
		return nil, err
	}

	fmt.Fprintf(os.Stderr, "live stack up: service=%s chaos=%s gateway=%s (%s, %s)\n",
		svcURL, chaosURL, gwURL, sc.Name, sc.Duration())
	return scenario.Run(ctx, sc, scenario.Env{
		Clock:     clock.Real(),
		Sampler:   sampler,
		Injector:  chaos,
		Stream:    stream,
		Sensors:   mgr,
		Telemetry: reg,
	})
}

// serve mounts a handler on an ephemeral loopback listener and returns
// its base URL plus a closer.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	closer := func() {
		_ = srv.Close()
		<-errCh // join the serve goroutine (always http.ErrServerClosed after Close)
	}
	return "http://" + ln.Addr().String(), closer, nil
}
