package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uc1-fall-poison", "uc2-net-fgsm", "flash-crowd-poison"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing misses %q:\n%s", want, out.String())
		}
	}
}

func TestRunWritesScorecard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "card.json")
	var out bytes.Buffer
	if err := run([]string{"-run", "capacity-ramp", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var card struct {
		Scenario string `json:"scenario"`
		Verdict  string `json:"verdict"`
		Requests int    `json:"requests"`
	}
	if err := json.Unmarshal(buf, &card); err != nil {
		t.Fatalf("scorecard is not JSON: %v", err)
	}
	if card.Scenario != "capacity-ramp" || card.Verdict == "" || card.Requests == 0 {
		t.Fatalf("scorecard content: %+v", card)
	}
}

func TestRunArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run([]string{"-run", "no-such-campaign"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-load", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing -load file accepted")
	}
}
