// Command spatial-sensors instruments a deployed SPATIAL system with AI
// sensors from the outside: it measures a served model's performance and
// evasion resilience through the gateway on a fixed cadence and publishes
// the readings to the AI dashboard — the paper's "AI sensors instrumented
// as a concurrent process to monitor the behaviour of the overall
// application".
//
// Usage:
//
//	spatial-sensors -gateway http://127.0.0.1:8100 \
//	  -dashboard http://127.0.0.1:8088 \
//	  -model m0001 -test holdout.csv -interval 5s -min-accuracy 0.9 \
//	  -metrics-addr 127.0.0.1:8109
//
// The test CSV must be in the dataset.WriteCSV format (feature columns
// plus a final label column). The sensors' own collection metrics
// (attempts, failures, durations, alerts) are scrapeable in Prometheus
// format at http://<metrics-addr>/metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dashboard"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/sensor"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-sensors:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-sensors", flag.ContinueOnError)
	gatewayURL := fs.String("gateway", "http://127.0.0.1:8100", "SPATIAL gateway base URL")
	dashboardURL := fs.String("dashboard", "http://127.0.0.1:8088", "AI dashboard base URL")
	modelID := fs.String("model", "", "model id on the ML-pipeline service (required)")
	testCSV := fs.String("test", "", "held-out labelled CSV for the performance sensor (required)")
	interval := fs.Duration("interval", 5*time.Second, "sampling interval")
	minAccuracy := fs.Float64("min-accuracy", 0.8, "alert threshold for the performance sensor")
	eps := fs.Float64("eps", 0.1, "FGSM budget used by the resilience sensor")
	apiKey := fs.String("apikey", "", "gateway API key (optional)")
	metricsAddr := fs.String("metrics-addr", "127.0.0.1:8109", "address serving this process's /metrics (empty to disable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelID == "" || *testCSV == "" {
		return fmt.Errorf("-model and -test are required")
	}

	f, err := os.Open(*testCSV)
	if err != nil {
		return fmt.Errorf("open test set: %w", err)
	}
	test, err := dataset.ReadCSV(f, "holdout", nil)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("close test set: %w", cerr)
	}
	if err != nil {
		return fmt.Errorf("parse test set: %w", err)
	}
	if err := test.Validate(); err != nil {
		return err
	}

	mlc := &service.Client{BaseURL: *gatewayURL + "/ml", APIKey: *apiKey}
	resc := &service.Client{BaseURL: *gatewayURL + "/resilience", APIKey: *apiKey}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := mlc.WaitHealthy(ctx, 10*time.Second); err != nil {
		return err
	}

	// Fetch the served model once so the resilience sensor can submit it
	// inline to the evasion-impact endpoint.
	model, err := mlc.FetchModel(ctx, *modelID)
	if err != nil {
		return err
	}
	blob, err := ml.MarshalModel(model)
	if err != nil {
		return err
	}
	wireTest := service.FromTable(test)

	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	manager := sensor.NewManager(&dashboard.Client{BaseURL: *dashboardURL})
	manager.UseTelemetry(reg)
	if err := manager.Register(&sensor.Sensor{
		Name:     *modelID + "-accuracy",
		Property: sensor.PropPerformance,
		Interval: *interval,
		Collector: sensor.CollectorFunc(func(ctx context.Context) (float64, map[string]float64, error) {
			resp, err := mlc.Predict(ctx, service.PredictRequest{ModelID: *modelID, Instances: test.X})
			if err != nil {
				return 0, nil, err
			}
			correct := 0
			for i, c := range resp.Classes {
				if c == test.Y[i] {
					correct++
				}
			}
			return float64(correct) / float64(test.Len()), nil, nil
		}),
		Threshold: sensor.Threshold{Min: minAccuracy},
	}); err != nil {
		return err
	}
	if err := manager.Register(&sensor.Sensor{
		Name:     *modelID + "-evasion-resilience",
		Property: sensor.PropResilience,
		Interval: *interval,
		Collector: sensor.CollectorFunc(func(ctx context.Context) (float64, map[string]float64, error) {
			rep, err := resc.EvasionImpact(ctx, service.EvasionImpactRequest{
				Model: blob,
				Clean: wireTest,
				Eps:   *eps,
			})
			if err != nil {
				return 0, nil, err
			}
			return 1 - rep.Impact, map[string]float64{
				"impact":  rep.Impact,
				"craftUs": rep.Complexity,
			}, nil
		}),
	}); err != nil {
		return err
	}

	var metricsSrv *http.Server
	metricsDone := make(chan struct{})
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			defer close(metricsDone)
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "spatial-sensors: metrics server:", err)
			}
		}()
		fmt.Printf("sensor metrics on http://%s/metrics\n", *metricsAddr)
	}

	if err := manager.Start(ctx); err != nil {
		return err
	}
	fmt.Printf("sensors running every %v against %s; publishing to %s (ctrl-c to stop)\n",
		*interval, *gatewayURL, *dashboardURL)
	<-ctx.Done()
	manager.Stop()
	if metricsSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = metricsSrv.Shutdown(shutCtx)
		<-metricsDone
	}
	fmt.Println("sensors stopped")
	return nil
}
