// Command spatial-services runs the SPATIAL metric micro-services, each on
// its own address, mirroring the paper's one-machine-per-service
// deployment.
//
// Usage:
//
//	spatial-services \
//	  -ml 127.0.0.1:8101 -shap 127.0.0.1:8102 -lime 127.0.0.1:8103 \
//	  -occlusion 127.0.0.1:8104 -resilience 127.0.0.1:8105 \
//	  -fairness 127.0.0.1:8106 -privacy 127.0.0.1:8107
//
// Omit a flag to skip that service.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spatial-services:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spatial-services", flag.ContinueOnError)
	mlAddr := fs.String("ml", "127.0.0.1:8101", "ML-pipeline service address (empty to disable)")
	shapAddr := fs.String("shap", "127.0.0.1:8102", "SHAP service address (empty to disable)")
	limeAddr := fs.String("lime", "127.0.0.1:8103", "LIME service address (empty to disable)")
	occAddr := fs.String("occlusion", "127.0.0.1:8104", "occlusion service address (empty to disable)")
	resAddr := fs.String("resilience", "127.0.0.1:8105", "resilience service address (empty to disable)")
	fairAddr := fs.String("fairness", "127.0.0.1:8106", "fairness service address (empty to disable)")
	privAddr := fs.String("privacy", "127.0.0.1:8107", "privacy service address (empty to disable)")
	driftAddr := fs.String("drift", "127.0.0.1:8108", "drift service address (empty to disable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type entry struct {
		name    string
		addr    string
		handler http.Handler
	}
	entries := []entry{
		{"ml-pipeline", *mlAddr, service.NewMLService()},
		{"shap", *shapAddr, service.NewSHAPService()},
		{"lime", *limeAddr, service.NewLIMEService()},
		{"occlusion", *occAddr, service.NewOcclusionService()},
		{"resilience", *resAddr, service.NewResilienceService()},
		{"fairness", *fairAddr, service.NewFairnessService()},
		{"privacy", *privAddr, service.NewPrivacyService()},
		{"drift", *driftAddr, service.NewDriftService()},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		servers []*http.Server
		wg      sync.WaitGroup
		mu      sync.Mutex
		srvErr  error
	)
	started := 0
	for _, e := range entries {
		if e.addr == "" {
			continue
		}
		srv := &http.Server{Addr: e.addr, Handler: e.handler}
		servers = append(servers, srv)
		started++
		fmt.Printf("starting %s on http://%s (scrape /metrics, spans at /traces)\n", e.name, e.addr)
		wg.Add(1)
		go func(name string, srv *http.Server) {
			defer wg.Done()
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				mu.Lock()
				if srvErr == nil {
					srvErr = fmt.Errorf("%s: %w", name, err)
				}
				mu.Unlock()
				stop()
			}
		}(e.name, srv)
	}
	if started == 0 {
		return errors.New("no services enabled")
	}

	<-ctx.Done()
	fmt.Println("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range servers {
		_ = srv.Shutdown(shutCtx)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return srvErr
}
