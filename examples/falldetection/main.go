// Fall detection (use case 1): a medical e-calling application's fall
// detector is poisoned by label flipping; SPATIAL's SHAP-dissimilarity
// sensor detects the attack before accuracy collapses silently.
//
//	go run ./examples/falldetection
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/xai"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Accelerometer windows from the e-calling app (synthetic stand-in
	// for UniMiB SHAR; 9 ADL classes + 8 fall classes -> binary task).
	data, err := datagen.UniMiBBinary(datagen.UniMiBConfig{Samples: 1200, Seed: 7})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		return err
	}
	scaler, err := dataset.FitScaler(train)
	if err != nil {
		return err
	}
	strain, stest := train.Clone(), test.Clone()
	if err := scaler.Transform(strain); err != nil {
		return err
	}
	if err := scaler.Transform(stest); err != nil {
		return err
	}

	fmt.Println("training clean DNN fall detector...")
	clean := ml.NewDNN(ml.DefaultDNNConfig())
	if err := clean.Fit(strain); err != nil {
		return err
	}
	cleanMetrics, err := ml.Evaluate(clean, stest)
	if err != nil {
		return err
	}
	fmt.Printf("clean model: accuracy %.1f%%, fall recall %.1f%%\n",
		cleanMetrics.Accuracy*100, cleanMetrics.PerClass[1].Recall*100)

	// An attacker flips 30% of the training labels.
	fmt.Println("\nattacker flips 30% of training labels; model is retrained...")
	poisonedTrain, err := attack.LabelFlip(strain, 0.30, 13)
	if err != nil {
		return err
	}
	poisoned := ml.NewDNN(ml.DefaultDNNConfig())
	if err := poisoned.Fit(poisonedTrain); err != nil {
		return err
	}
	poisonedMetrics, err := ml.Evaluate(poisoned, stest)
	if err != nil {
		return err
	}
	fmt.Printf("poisoned model: accuracy %.1f%%, fall recall %.1f%%\n",
		poisonedMetrics.Accuracy*100, poisonedMetrics.PerClass[1].Recall*100)

	// SPATIAL's detector: similar falls should have similar SHAP
	// explanations; poisoning tears that structure apart (Fig 6a-iv).
	fmt.Println("\ncomputing SHAP-dissimilarity indicator (k=5 neighbours)...")
	dissim := func(model ml.Classifier) (float64, error) {
		var falls [][]float64
		for i, y := range stest.Y {
			if y == 1 {
				falls = append(falls, stest.X[i])
			}
			if len(falls) == 16 {
				break
			}
		}
		explainer := &xai.KernelSHAP{Model: model, Background: strain.X[:5], Samples: 256, Seed: 1}
		explanations := make([][]float64, len(falls))
		for i, x := range falls {
			e, err := explainer.Explain(x, 1)
			if err != nil {
				return 0, err
			}
			explanations[i] = e
		}
		return xai.Dissimilarity(falls, explanations, 5)
	}
	cleanD, err := dissim(clean)
	if err != nil {
		return err
	}
	poisonedD, err := dissim(poisoned)
	if err != nil {
		return err
	}
	fmt.Printf("  clean model:    %.4f\n", cleanD)
	fmt.Printf("  poisoned model: %.4f\n", poisonedD)
	if poisonedD > cleanD {
		fmt.Println("  -> dissimilarity rose: poisoning detected; operator should trigger label sanitization")
	} else {
		fmt.Println("  -> no rise detected at this rate")
	}
	return nil
}
