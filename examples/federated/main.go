// Federated learning (Fig. 2c): the distributed ML architecture the paper
// describes — clients train locally and a server aggregates — monitored by
// a SPATIAL sensor per round, attacked by a poisoned client, and defended
// with robust aggregation.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fedlearn"
	"repro/internal/ml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The fall-detection task, distributed across 8 hospitals.
	data, err := datagen.UniMiBBinary(datagen.UniMiBConfig{Samples: 900, Seed: 11})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))
	train, eval, err := data.StratifiedSplit(rng, 0.85)
	if err != nil {
		return err
	}
	scaler, err := dataset.FitScaler(train)
	if err != nil {
		return err
	}
	if err := scaler.Transform(train); err != nil {
		return err
	}
	if err := scaler.Transform(eval); err != nil {
		return err
	}
	clients, err := fedlearn.PartitionIID(train, 8, 11)
	if err != nil {
		return err
	}
	fmt.Printf("%d clients, ~%d windows each, %d eval windows\n", len(clients), clients[0].Data.Len(), eval.Len())

	lrCfg := ml.LogRegConfig{LearningRate: 0.1, Epochs: 2, BatchSize: 32, WarmStart: true, Seed: 1}
	factory := func() (ml.ParamClassifier, error) { return ml.NewLogReg(lrCfg), nil }
	runFL := func(clients []fedlearn.Client, agg fedlearn.Aggregator) ([]fedlearn.RoundStat, error) {
		global := ml.NewLogReg(ml.DefaultLogRegConfig())
		if err := global.Init(train.NumFeatures(), train.NumClasses()); err != nil {
			return nil, err
		}
		return fedlearn.Run(global, factory, clients, eval, fedlearn.Config{
			Rounds: 10, Aggregator: agg, Seed: 1,
		})
	}

	fmt.Println("\nhonest federation (FedAvg):")
	stats, err := runFL(clients, fedlearn.FedAvg)
	if err != nil {
		return err
	}
	for _, s := range stats {
		if s.Round%2 == 0 {
			// A SPATIAL performance sensor would publish exactly this
			// reading to the dashboard each round.
			fmt.Printf("  round %2d: global accuracy %.1f%%\n", s.Round, s.EvalAccuracy*100)
		}
	}

	// Two clients turn malicious: their local labels are fully flipped.
	poisonedClients := make([]fedlearn.Client, len(clients))
	copy(poisonedClients, clients)
	for _, idx := range []int{0, 1} {
		flipped, err := attack.LabelFlip(clients[idx].Data, 1.0, int64(idx+40))
		if err != nil {
			return err
		}
		poisonedClients[idx] = fedlearn.Client{Name: clients[idx].Name + "-poisoned", Data: flipped}
	}

	fmt.Println("\n2/8 clients poisoned:")
	for _, agg := range []struct {
		name string
		agg  fedlearn.Aggregator
	}{{"FedAvg", fedlearn.FedAvg}, {"trimmed mean", fedlearn.TrimmedMean}, {"median", fedlearn.Median}} {
		stats, err := runFL(poisonedClients, agg.agg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-13s final global accuracy %.1f%%\n", agg.name, stats[len(stats)-1].EvalAccuracy*100)
	}
	fmt.Println("\n-> robust aggregation is the architectural counterpart of label sanitization for Fig 2(c) deployments")
	return nil
}
