// Fullstack: deploy the complete SPATIAL system on loopback — metric
// micro-services behind the API gateway, the AI dashboard, and AI sensors
// monitoring a model trained through the gateway — then put the
// explanation service under load with the JMeter-equivalent harness.
//
//	go run ./examples/fullstack
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/loadgen"
	"repro/internal/ml"
	"repro/internal/sensor"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// 1. Deploy: five micro-services + gateway + dashboard on loopback.
	sys := core.NewSystem(core.Options{HealthInterval: 250 * time.Millisecond})
	gwURL, dashURL, err := sys.DeployLocal(ctx)
	if err != nil {
		return err
	}
	defer sys.Shutdown(context.Background())
	fmt.Printf("gateway:   %s\ndashboard: %s\n\n", gwURL, dashURL)

	// 2. Train the network-activity model through the gateway.
	table, _, err := datagen.NetTraffic(datagen.NetTrafficConfig{Web: 150, Interactive: 20, Video: 25, Seed: 2})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	train, test, err := table.StratifiedSplit(rng, 0.75)
	if err != nil {
		return err
	}
	scaler, err := dataset.FitMinMax(train)
	if err != nil {
		return err
	}
	if err := scaler.Transform(train); err != nil {
		return err
	}
	if err := scaler.Transform(test); err != nil {
		return err
	}
	mlc := sys.ServiceClient("/ml", "")
	if err := mlc.WaitHealthy(ctx, 5*time.Second); err != nil {
		return err
	}
	trained, err := mlc.Train(ctx, service.TrainRequest{
		Algorithm: "nn",
		Train:     service.FromTable(train),
		Eval:      ptr(service.FromTable(test)),
		Seed:      1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained model %s via gateway: accuracy %.1f%%\n", trained.ModelID, trained.Metrics.Accuracy*100)

	// Retraining appends a new version under the "nn" algorithm alias in
	// the serving registry; the operator promotes it, and can roll back
	// atomically if the canary regresses.
	retrained, err := mlc.Train(ctx, service.TrainRequest{
		Algorithm: "nn",
		Train:     service.FromTable(train),
		Eval:      ptr(service.FromTable(test)),
		Seed:      7,
	})
	if err != nil {
		return err
	}
	promoted, err := mlc.Promote(ctx, service.PromoteRequest{Name: "nn", Version: retrained.Ref.Version})
	if err != nil {
		return err
	}
	if _, err := mlc.Predict(ctx, service.PredictRequest{ModelID: "nn", Instances: test.X[:2]}); err != nil {
		return err
	}
	rolled, err := mlc.Rollback(ctx, "nn")
	if err != nil {
		return err
	}
	fmt.Printf("alias nn: promoted v%d (%s...), rolled back to v%d\n",
		promoted.Version, promoted.ID[:18], rolled.Version)

	// 3. AI sensors monitor the deployed model and publish to the
	//    dashboard store.
	model, err := mlc.FetchModel(ctx, trained.ModelID)
	if err != nil {
		return err
	}
	blob, err := ml.MarshalModel(model)
	if err != nil {
		return err
	}
	resc := sys.ServiceClient("/resilience", "")
	wireTest := service.FromTable(test)
	err = sys.Sensors.Register(&sensor.Sensor{
		Name:     "nn-accuracy",
		Property: sensor.PropPerformance,
		Interval: 300 * time.Millisecond,
		Collector: sensor.CollectorFunc(func(ctx context.Context) (float64, map[string]float64, error) {
			resp, err := mlc.Predict(ctx, service.PredictRequest{ModelID: trained.ModelID, Instances: test.X})
			if err != nil {
				return 0, nil, err
			}
			correct := 0
			for i, c := range resp.Classes {
				if c == test.Y[i] {
					correct++
				}
			}
			return float64(correct) / float64(len(test.Y)), nil, nil
		}),
		Threshold: sensor.Threshold{Min: sensor.Float64Ptr(0.8)},
	})
	if err != nil {
		return err
	}
	err = sys.Sensors.Register(&sensor.Sensor{
		Name:     "nn-evasion-resilience",
		Property: sensor.PropResilience,
		Interval: 500 * time.Millisecond,
		Collector: sensor.CollectorFunc(func(ctx context.Context) (float64, map[string]float64, error) {
			rep, err := resc.EvasionImpact(ctx, service.EvasionImpactRequest{Model: blob, Clean: wireTest, Eps: 0.1})
			if err != nil {
				return 0, nil, err
			}
			// Publish resilience = 1 - impact so higher is better.
			return 1 - rep.Impact, map[string]float64{"impact": rep.Impact, "craftUs": rep.Complexity}, nil
		}),
	})
	if err != nil {
		return err
	}
	if err := sys.Sensors.Start(ctx); err != nil {
		return err
	}
	time.Sleep(1200 * time.Millisecond) // let a few readings land

	rep, err := sys.TrustReport(nil)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrust report: score %.2f, %d alert(s)\n", rep.Score, rep.Alerts)
	for prop, v := range rep.PerProperty {
		fmt.Printf("  %-12s %.3f\n", prop, v)
	}

	// Certification against an application-specific requirement scale
	// (§VIII "towards standardization").
	cert, err := core.Certify(rep, core.Requirements{
		sensor.PropPerformance: 0.85,
		sensor.PropResilience:  0.5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("certification: passed=%v hash=%s...\n", cert.Passed, cert.Hash[:12])
	if _, err := sys.Dashboard.Audit().Append(audit.KindAction, "operator", cert); err != nil {
		return err
	}

	// 4. Capacity test the SHAP endpoint through the gateway.
	shapBody, err := json.Marshal(service.SHAPRequest{
		Model:      blob,
		Instance:   test.X[0],
		Class:      test.Y[0],
		Background: test.X[1:4],
		Samples:    150,
		Seed:       1,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nload testing /shap/explain (8 users, 1s ramp-up, 3 iterations)...")
	res, err := loadgen.Run(ctx, loadgen.ThreadGroup{Threads: 8, RampUp: time.Second, Iterations: 3},
		&loadgen.HTTPSampler{
			Method: http.MethodPost,
			URL:    gwURL + "/shap/explain",
			Body:   shapBody,
			Header: http.Header{"Content-Type": []string{"application/json"}},
			Client: &http.Client{Timeout: time.Minute},
		})
	if err != nil {
		return err
	}
	s := res.Summarize()
	fmt.Printf("  %d samples, mean %v, p95 %v, %.1f req/s, %.0f%% errors (%d shed)\n",
		s.Count, s.Mean.Round(time.Millisecond), s.P95.Round(time.Millisecond), s.Throughput, s.ErrorRate*100, s.Shed)

	// 5. What the operator sees: gateway route metrics + dashboard data.
	fmt.Println("\ngateway route metrics:")
	for _, m := range sys.Gateway.RouteMetrics() {
		if m.Requests == 0 {
			continue
		}
		fmt.Printf("  %-12s %4d requests, %d errors, mean %.1fms\n", m.Prefix, m.Requests, m.Errors, m.MeanLatencyMs)
	}
	store := sys.Dashboard.Store()
	fmt.Println("dashboard sensors:", store.Sensors())
	fmt.Printf("dashboard alerts:  %d\n", len(store.Alerts()))
	trail := sys.Dashboard.Audit()
	if err := trail.Verify(); err != nil {
		return err
	}
	fmt.Printf("audit trail:       %d records, chain verified\n", trail.Len())
	return nil
}

func ptr[T any](v T) *T { return &v }
