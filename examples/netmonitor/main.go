// Network activity monitoring (use case 2): a traffic classifier is
// attacked with white-box FGSM; SPATIAL quantifies each model's resilience
// with the impact and complexity metrics and shows how the SHAP feature
// ranking shifts under attack.
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/resilience"
	"repro/internal/xai"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Flow traces captured by the monitoring application (synthetic
	// stand-in; 21 features over duration/protocol/uplink/downlink/speed).
	table, flows, err := datagen.NetTraffic(datagen.DefaultNetTrafficConfig())
	if err != nil {
		return err
	}
	fmt.Printf("captured %d flows (%d packets in the first trace)\n", len(flows), len(flows[0].Packets))

	rng := rand.New(rand.NewSource(3))
	train, test, err := table.StratifiedSplit(rng, 0.73)
	if err != nil {
		return err
	}
	scaler, err := dataset.FitMinMax(train)
	if err != nil {
		return err
	}
	if err := scaler.Transform(train); err != nil {
		return err
	}
	if err := scaler.Transform(test); err != nil {
		return err
	}

	// Train the three model families of the use case.
	models := map[string]ml.Classifier{}
	for _, algo := range []string{"nn", "lgbm", "xgb"} {
		m, err := ml.NewByName(algo, 1)
		if err != nil {
			return err
		}
		if err := m.Fit(train); err != nil {
			return err
		}
		metrics, err := ml.Evaluate(m, test)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s baseline accuracy %.1f%%\n", algo, metrics.Accuracy*100)
		models[algo] = m
	}

	// White-box FGSM on the NN; transfer to the tree ensembles.
	nn := models["nn"].(ml.GradientClassifier)
	fgsm, err := attack.FGSM(nn, test, 0.10)
	if err != nil {
		return err
	}
	fmt.Printf("\nFGSM eps=0.10 crafted %d adversarial flows (%.1f us/sample)\n",
		fgsm.Adversarial.Len(), float64(fgsm.CraftCost.Nanoseconds())/1e3)

	fmt.Printf("%-5s %10s %10s %8s %12s\n", "model", "clean", "attacked", "impact", "complexity")
	for _, algo := range []string{"nn", "lgbm", "xgb"} {
		rep, err := resilience.Evasion(models[algo], test, fgsm.Adversarial, fgsm.CraftCost)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s %9.1f%% %9.1f%% %7.1f%% %9.2fus\n",
			algo, rep.BaselineAccuracy*100, rep.AttackedAccuracy*100, rep.Impact*100, rep.Complexity)
	}

	// How the SHAP story changes under attack (Fig 7a/b).
	explainer := &xai.KernelSHAP{Model: models["nn"], Background: train.X[:6], Samples: 384, Seed: 1}
	rank := func(tb *dataset.Table) ([]string, error) {
		var expl [][]float64
		for i, y := range tb.Y {
			if y != 0 { // web class, as in the paper
				continue
			}
			e, err := explainer.Explain(tb.X[i], 0)
			if err != nil {
				return nil, err
			}
			expl = append(expl, e)
			if len(expl) == 12 {
				break
			}
		}
		order, _ := xai.FeatureImportance(expl)
		names := datagen.NetFeatureNames()
		top := make([]string, 0, 5)
		for _, j := range order[:5] {
			top = append(top, names[j])
		}
		return top, nil
	}
	benignTop, err := rank(test)
	if err != nil {
		return err
	}
	attackedTop, err := rank(fgsm.Adversarial)
	if err != nil {
		return err
	}
	fmt.Println("\ntop-5 SHAP features for the web class:")
	fmt.Printf("  benign:   %v\n", benignTop)
	fmt.Printf("  attacked: %v\n", attackedTop)
	fmt.Println("  -> a shifted ranking on live traffic is the dashboard's cue that inputs are being perturbed")
	return nil
}
