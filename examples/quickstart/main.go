// Quickstart: build an AI pipeline, gauge its trustworthy properties with
// AI sensors, and aggregate a trust report — the minimal SPATIAL loop.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/sensor"
	"repro/internal/serving"
	"repro/internal/xai"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. A standard AI pipeline: collect -> clean -> split -> train ->
	//    evaluate, instrumented with a hook that reports every stage.
	load := func(context.Context) (*dataset.Table, error) {
		return datagen.UniMiBBinary(datagen.UniMiBConfig{Samples: 600, Seed: 1})
	}
	p, err := pipeline.Standard(load, "rf", 0.8, 1)
	if err != nil {
		return err
	}
	if err := p.AddHook(func(_ context.Context, stage pipeline.Stage, _ *pipeline.State) error {
		fmt.Printf("pipeline stage %-9s done\n", stage)
		return nil
	}); err != nil {
		return err
	}
	state, _, err := p.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrained %s: accuracy %.1f%%, recall %.1f%%\n",
		state.Model.Name(), state.Metrics.Accuracy*100, state.Metrics.Recall*100)

	// 2. Deploy into the model-serving runtime: the registry addresses
	//    the model as "fall@1" (or by its content id), and concurrent
	//    predictions coalesce into micro-batches behind admission control.
	rt := serving.New(serving.Config{})
	defer rt.Close()
	ref, err := rt.Registry().Register("fall", state.Model)
	if err != nil {
		return err
	}
	_, classes, err := rt.Predict(ctx, ref.String(), state.Test.X[:8])
	if err != nil {
		return err
	}
	correct := 0
	for i, c := range classes {
		if c == state.Test.Y[i] {
			correct++
		}
	}
	fmt.Printf("served %d instances through %s (%s...): %d/%d correct\n",
		len(classes), ref, ref.ID[:18], correct, len(classes))

	// 3. Explain one prediction with KernelSHAP.
	shap := &xai.KernelSHAP{
		Model:      state.Model,
		Background: state.Train.X[:5],
		Samples:    200,
		Seed:       1,
	}
	instance := state.Test.X[0]
	attr, err := shap.Explain(instance, ml.Predict(state.Model, instance))
	if err != nil {
		return err
	}
	order, imp := xai.FeatureImportance([][]float64{attr})
	fmt.Println("\ntop SHAP features for one prediction:")
	for _, j := range order[:5] {
		fmt.Printf("  %-8s %+.4f\n", state.Test.FeatureNames[j], imp[j])
	}

	// 4. AI sensors gauge trustworthy properties continuously.
	manager := sensor.NewManager(nil)
	accuracy := state.Metrics.Accuracy
	if err := manager.Register(&sensor.Sensor{
		Name:     "fall-model-accuracy",
		Property: sensor.PropPerformance,
		Interval: 200 * time.Millisecond,
		Collector: sensor.CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
			return accuracy, nil, nil
		}),
		Threshold: sensor.Threshold{Min: sensor.Float64Ptr(0.8)},
	}); err != nil {
		return err
	}
	if err := manager.Register(&sensor.Sensor{
		Name:     "fall-model-explainability",
		Property: sensor.PropExplainability,
		Interval: 200 * time.Millisecond,
		Collector: sensor.CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
			// A simple explainability score: attribution mass on the
			// top-10% features (focused explanations score higher).
			var top, total float64
			for i, j := range order {
				v := imp[j]
				total += v
				if i < len(order)/10 {
					top += v
				}
			}
			if total == 0 {
				return 0, nil, nil
			}
			return top / total, nil, nil
		}),
	}); err != nil {
		return err
	}
	for _, name := range []string{"fall-model-accuracy", "fall-model-explainability"} {
		if _, err := manager.CollectOnce(ctx, name); err != nil {
			return err
		}
	}

	// 5. Aggregate into a trust report.
	var readings []sensor.Reading
	for _, name := range manager.Names() {
		if r, ok := manager.Last(name); ok {
			readings = append(readings, r)
		}
	}
	report, err := core.Trust(readings, core.DefaultTrustWeights())
	if err != nil {
		return err
	}
	fmt.Printf("\ntrust report: score %.2f, %d alert(s)\n", report.Score, report.Alerts)
	for prop, v := range report.PerProperty {
		fmt.Printf("  %-15s %.3f\n", prop, v)
	}
	return nil
}
