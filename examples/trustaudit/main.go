// Trust audit: the remaining trustworthy properties SPATIAL gauges —
// fairness on a loan model, privacy leakage via membership inference (and
// its DP mitigation), confidentiality via model stealing, and the
// corrective actions an operator applies after a poisoning alert.
//
//	go run ./examples/trustaudit
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/fairness"
	"repro/internal/ml"
	"repro/internal/privacy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Fairness: a loan model trained on biased history -------------
	fmt.Println("== fairness: loan approval ==")
	loans, _, err := datagen.Loan(datagen.DefaultLoanConfig())
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	ltrain, ltest, err := loans.StratifiedSplit(rng, 0.8)
	if err != nil {
		return err
	}
	loanModel := ml.NewTree(ml.DefaultTreeConfig())
	if err := loanModel.Fit(ltrain); err != nil {
		return err
	}
	pred := ml.PredictBatch(loanModel, ltest)
	group := make([]int, ltest.Len())
	for i, row := range ltest.X {
		group[i] = int(row[datagen.LoanGroupFeature])
	}
	fairRep, err := fairness.Evaluate(pred, ltest.Y, group, 1, [2]string{"groupA", "groupB"})
	if err != nil {
		return err
	}
	for _, g := range fairRep.Groups {
		fmt.Printf("  %-8s n=%3d approval=%.1f%% tpr=%.1f%%\n", g.Group, g.N, g.PositiveRate*100, g.TPR*100)
	}
	fmt.Printf("  demographic parity diff %.2f, disparate impact %.2f -> fairness score %.2f\n",
		fairRep.DemographicParityDiff, fairRep.DisparateImpactRatio, fairness.Score(fairRep))

	// --- Privacy: membership inference, then DP training --------------
	fmt.Println("\n== privacy: membership inference ==")
	ptrain, ptest, err := loans.StratifiedSplit(rng, 0.5)
	if err != nil {
		return err
	}
	overfit := ml.NewTree(ml.TreeConfig{MaxDepth: 0, MinLeaf: 1, Seed: 1})
	if err := overfit.Fit(ptrain); err != nil {
		return err
	}
	leak, err := privacy.MembershipInference(overfit, ptrain, ptest)
	if err != nil {
		return err
	}
	fmt.Printf("  overfit tree:  advantage %.2f (privacy score %.2f)\n", leak.Advantage, privacy.PrivacyScore(leak.Advantage))

	dpCfg := privacy.DefaultDPLogRegConfig()
	dp := privacy.NewDPLogReg(dpCfg)
	if err := dp.Fit(ptrain); err != nil {
		return err
	}
	dpLeak, err := privacy.MembershipInference(dp, ptrain, ptest)
	if err != nil {
		return err
	}
	eps, err := dp.Epsilon(1e-5)
	if err != nil {
		return err
	}
	fmt.Printf("  dp-lr:         advantage %.2f (privacy score %.2f, approx epsilon %.1f)\n",
		dpLeak.Advantage, privacy.PrivacyScore(dpLeak.Advantage), eps)

	// --- Confidentiality: model stealing over the prediction API ------
	fmt.Println("\n== confidentiality: model extraction ==")
	queries, err := attack.UniformQueries(ltrain.X, 3000, 2)
	if err != nil {
		return err
	}
	stolen, err := attack.StealModel(loanModel, ml.NewTree(ml.DefaultTreeConfig()), queries,
		ltrain.FeatureNames, ltrain.ClassNames, ltest.X)
	if err != nil {
		return err
	}
	fmt.Printf("  surrogate fidelity %.1f%% after %d queries — rate limiting at the gateway is the mitigation\n",
		stolen.Fidelity*100, stolen.Queries)

	// --- Corrective action: label sanitization after a poisoning alert -
	// kNN sanitization needs commensurable feature scales, so the audit
	// runs it in standardized space.
	fmt.Println("\n== corrective action: label sanitization ==")
	scaler, err := dataset.FitScaler(ltrain)
	if err != nil {
		return err
	}
	strain, stest := ltrain.Clone(), ltest.Clone()
	if err := scaler.Transform(strain); err != nil {
		return err
	}
	if err := scaler.Transform(stest); err != nil {
		return err
	}
	ltest = stest
	poisoned, err := attack.LabelFlip(strain, 0.25, 5)
	if err != nil {
		return err
	}
	accOf := func(tr *ml.Tree) float64 {
		m, err := ml.Evaluate(tr, ltest)
		if err != nil {
			log.Fatal(err)
		}
		return m.Accuracy
	}
	dirtyModel := ml.NewTree(ml.DefaultTreeConfig())
	if err := dirtyModel.Fit(poisoned); err != nil {
		return err
	}
	sanitized, rep, err := defense.SanitizeLabels(poisoned, 9, defense.Relabel)
	if err != nil {
		return err
	}
	repairedModel := ml.NewTree(ml.DefaultTreeConfig())
	if err := repairedModel.Fit(sanitized); err != nil {
		return err
	}
	fmt.Printf("  poisoned model accuracy  %.1f%%\n", accOf(dirtyModel)*100)
	fmt.Printf("  sanitized model accuracy %.1f%% (%d labels repaired)\n", accOf(repairedModel)*100, rep.Relabeled)
	return nil
}
