package repro

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/dashboard"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/sensor"
	"repro/internal/service"
)

// freePort asks the kernel for an unused loopback port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startCmd launches a built binary and registers cleanup.
func startCmd(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() {
			_, _ = cmd.Process.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
		}
	})
	return cmd
}

// TestMultiProcessDeployment builds the real CLI binaries, runs the
// services, gateway and dashboard as separate processes (the paper's
// one-machine-per-component deployment, shrunk onto loopback), and drives
// a full train → explain → monitor loop through them.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	binDir := t.TempDir()
	for _, tool := range []string{"spatial-services", "spatial-gateway", "spatial-dashboard"} {
		out := filepath.Join(binDir, tool)
		build := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		build.Stdout = os.Stderr
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("build %s: %v", tool, err)
		}
	}

	mlAddr := freePort(t)
	shapAddr := freePort(t)
	gwAddr := freePort(t)
	dashAddr := freePort(t)

	startCmd(t, filepath.Join(binDir, "spatial-services"),
		"-ml", mlAddr, "-shap", shapAddr,
		"-lime", "", "-occlusion", "", "-resilience", "", "-fairness", "", "-privacy", "", "-drift", "")
	startCmd(t, filepath.Join(binDir, "spatial-gateway"),
		"-addr", gwAddr,
		"-route", "/ml=http://"+mlAddr,
		"-route", "/shap=http://"+shapAddr)
	startCmd(t, filepath.Join(binDir, "spatial-dashboard"), "-addr", dashAddr)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	mlc := &service.Client{BaseURL: "http://" + gwAddr + "/ml"}
	if err := mlc.WaitHealthy(ctx, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	shapc := &service.Client{BaseURL: "http://" + gwAddr + "/shap"}
	if err := shapc.WaitHealthy(ctx, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Train through the gateway.
	rng := rand.New(rand.NewSource(1))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < 150; i++ {
		y := i % 2
		if err := tb.Append([]float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}, y); err != nil {
			t.Fatal(err)
		}
	}
	trained, err := mlc.Train(ctx, service.TrainRequest{Algorithm: "lr", Train: service.FromTable(tb), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trained.Metrics.Accuracy < 0.9 {
		t.Fatalf("accuracy %.3f", trained.Metrics.Accuracy)
	}

	// Explain through the gateway using the fetched model.
	model, err := mlc.FetchModel(ctx, trained.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	mblob, err := ml.MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	attr, err := shapc.SHAP(ctx, service.SHAPRequest{
		Model:      mblob,
		Instance:   tb.X[0],
		Class:      tb.Y[0],
		Background: tb.X[1:4],
		Samples:    100,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 2 {
		t.Fatalf("attribution %v", attr)
	}

	// Publish a reading to the external dashboard process and read the
	// summary back.
	dashClient := &dashboard.Client{BaseURL: "http://" + dashAddr}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err = dashClient.Publish(ctx, sensor.Reading{
			Sensor:   "itest",
			Property: sensor.PropPerformance,
			Value:    trained.Metrics.Accuracy,
			Time:     time.Now(),
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dashboard never came up: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	resp, err := http.Get("http://" + dashAddr + "/api/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var summary struct {
		Latest map[string]sensor.Reading `json:"latest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if summary.Latest["itest"].Value != trained.Metrics.Accuracy {
		t.Fatalf("dashboard summary %+v", summary)
	}

	// The gateway's metrics endpoint saw the traffic.
	mresp, err := http.Get("http://" + gwAddr + "/gateway/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics []struct {
		Prefix   string `json:"prefix"`
		Requests int64  `json:"requests"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, m := range metrics {
		total += m.Requests
	}
	if total == 0 {
		t.Fatal("gateway recorded no requests")
	}
}
