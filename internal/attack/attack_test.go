package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

func toyTable(t *testing.T, n, k int) *dataset.Table {
	t.Helper()
	classes := make([]string, k)
	for c := range classes {
		classes[c] = string(rune('a' + c))
	}
	tb := dataset.New("toy", []string{"f0", "f1"}, classes)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		y := i % k
		if err := tb.Append([]float64{float64(y)*4 + rng.NormFloat64(), rng.NormFloat64()}, y); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func countDiffs(a, b []int) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestLabelFlipRate(t *testing.T) {
	tb := toyTable(t, 200, 3)
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		out, err := LabelFlip(tb, rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := int(rate * 200)
		if got := countDiffs(tb.Y, out.Y); got != want {
			t.Fatalf("rate %v flipped %d labels, want %d", rate, got, want)
		}
	}
}

func TestLabelFlipNeverKeepsLabel(t *testing.T) {
	tb := toyTable(t, 100, 2)
	out, err := LabelFlip(tb, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Y {
		if tb.Y[i] == out.Y[i] {
			t.Fatal("flip must change the label")
		}
	}
}

func TestLabelFlipDoesNotMutateInput(t *testing.T) {
	tb := toyTable(t, 50, 2)
	orig := append([]int(nil), tb.Y...)
	if _, err := LabelFlip(tb, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if tb.Y[i] != orig[i] {
			t.Fatal("LabelFlip mutated its input")
		}
	}
}

func TestLabelFlipValidation(t *testing.T) {
	tb := toyTable(t, 10, 2)
	if _, err := LabelFlip(tb, -0.1, 1); err == nil {
		t.Fatal("expected rate error")
	}
	if _, err := LabelFlip(tb, 1.5, 1); err == nil {
		t.Fatal("expected rate error")
	}
	single := dataset.New("s", []string{"f"}, []string{"only"})
	_ = single.Append([]float64{1}, 0)
	if _, err := LabelFlip(single, 0.5, 1); err == nil {
		t.Fatal("expected class-count error")
	}
}

func TestLabelFlipDeterministic(t *testing.T) {
	tb := toyTable(t, 100, 3)
	a, err := LabelFlip(tb, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LabelFlip(tb, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed, different flips")
		}
	}
}

func TestTargetedFlipOnlyToTarget(t *testing.T) {
	tb := toyTable(t, 150, 3)
	out, err := TargetedFlip(tb, 0.2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range tb.Y {
		if tb.Y[i] != out.Y[i] {
			changed++
			if out.Y[i] != 2 {
				t.Fatalf("flip target %d, want 2", out.Y[i])
			}
		}
	}
	if changed != 30 {
		t.Fatalf("changed %d labels, want 30", changed)
	}
}

func TestTargetedFlipCapsAtCandidates(t *testing.T) {
	tb := toyTable(t, 30, 2) // 15 candidates for target 0
	out, err := TargetedFlip(tb, 1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range out.Y {
		if y != 0 {
			t.Fatal("rate 1 should flip every candidate")
		}
	}
}

func TestTargetedFlipValidation(t *testing.T) {
	tb := toyTable(t, 10, 2)
	if _, err := TargetedFlip(tb, 0.5, 9, 1); err == nil {
		t.Fatal("expected target range error")
	}
}

func TestRandomSwapPreservesClassCounts(t *testing.T) {
	tb := toyTable(t, 120, 3)
	out, err := RandomSwap(tb, 0.4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tb.ClassCounts(), out.ClassCounts()
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("swap changed class counts %v -> %v", a, b)
		}
	}
}

func TestRandomSwapTouchesRequestedFraction(t *testing.T) {
	tb := toyTable(t, 100, 2)
	out, err := RandomSwap(tb, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 25 pairs = up to 50 touched labels (pairs with equal labels are
	// no-ops, so diffs <= 50 but the pair count is exact).
	diffs := countDiffs(tb.Y, out.Y)
	if diffs > 50 {
		t.Fatalf("touched %d labels, expected <= 50", diffs)
	}
	if diffs == 0 {
		t.Fatal("swap changed nothing at rate 0.5")
	}
}

func TestFGSMPerturbsByEps(t *testing.T) {
	tb := toyTable(t, 200, 2)
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	res, err := FGSM(m, tb, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversarial.Len() != tb.Len() {
		t.Fatal("adversarial set size changed")
	}
	for i := range tb.X {
		for j := range tb.X[i] {
			d := math.Abs(res.Adversarial.X[i][j] - tb.X[i][j])
			if d > 0.25+1e-12 {
				t.Fatalf("perturbation %v exceeds eps", d)
			}
		}
	}
	if res.CraftCost < 0 {
		t.Fatal("negative craft cost")
	}
}

func TestFGSMDegradesAccuracy(t *testing.T) {
	tb := toyTable(t, 400, 2)
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{16}, LearningRate: 0.05, Momentum: 0.9, Epochs: 30, BatchSize: 16, Seed: 1})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	base, err := ml.Evaluate(m, tb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FGSM(m, tb, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := ml.Evaluate(m, res.Adversarial)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Accuracy >= base.Accuracy {
		t.Fatalf("FGSM did not degrade accuracy: %.3f -> %.3f", base.Accuracy, adv.Accuracy)
	}
}

func TestFGSMValidation(t *testing.T) {
	tb := toyTable(t, 10, 2)
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := FGSM(m, tb, 0); err == nil {
		t.Fatal("expected eps error")
	}
	if _, err := FGSM(nil, tb, 0.1); err == nil {
		t.Fatal("expected nil model error")
	}
	empty := dataset.New("e", tb.FeatureNames, tb.ClassNames)
	if _, err := FGSM(m, empty, 0.1); err == nil {
		t.Fatal("expected empty dataset error")
	}
}

func TestGMMSynthesizerSamplesNearClassMeans(t *testing.T) {
	tb := toyTable(t, 300, 3)
	g := &GMMSynthesizer{Seed: 1}
	if err := g.Fit(tb); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		rows, err := g.Sample(c, 100, 9)
		if err != nil {
			t.Fatal(err)
		}
		var mean float64
		for _, r := range rows {
			mean += r[0]
		}
		mean /= 100
		want := float64(c) * 4
		if math.Abs(mean-want) > 1.0 {
			t.Fatalf("class %d synthetic mean %.2f, want ~%.1f", c, mean, want)
		}
	}
}

func TestGMMSynthesizerValidation(t *testing.T) {
	g := &GMMSynthesizer{}
	if _, err := g.Sample(0, 5, 1); err == nil {
		t.Fatal("expected not-fitted error")
	}
	tb := toyTable(t, 30, 2)
	if err := g.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Sample(5, 1, 1); err == nil {
		t.Fatal("expected class range error")
	}
}

func TestPoisonSyntheticGrowsDataset(t *testing.T) {
	tb := toyTable(t, 100, 2)
	out, err := PoisonSynthetic(tb, 50, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 150 {
		t.Fatalf("poisoned size %d, want 150", out.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original rows untouched.
	for i := 0; i < 100; i++ {
		if out.Y[i] != tb.Y[i] {
			t.Fatal("original labels modified")
		}
	}
}

func TestPoisonSyntheticValidation(t *testing.T) {
	tb := toyTable(t, 20, 2)
	if _, err := PoisonSynthetic(tb, -1, 0, 1); err == nil {
		t.Fatal("expected count error")
	}
	if _, err := PoisonSynthetic(tb, 5, 2, 1); err == nil {
		t.Fatal("expected mislabel rate error")
	}
}

func TestPoisonSyntheticDegradesModel(t *testing.T) {
	tb := toyTable(t, 300, 2)
	clean := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := clean.Fit(tb); err != nil {
		t.Fatal(err)
	}
	base, err := ml.Evaluate(clean, tb)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := PoisonSynthetic(tb, 300, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	dirty := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := dirty.Fit(poisoned); err != nil {
		t.Fatal(err)
	}
	after, err := ml.Evaluate(dirty, tb)
	if err != nil {
		t.Fatal(err)
	}
	if after.Accuracy >= base.Accuracy {
		t.Fatalf("synthetic poison did not degrade: %.3f -> %.3f", base.Accuracy, after.Accuracy)
	}
}
