package attack

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"

	"repro/internal/clock"
)

// FGSMResult carries the adversarial variants of a dataset plus the
// measured crafting cost, which feeds the resilience "complexity" metric.
type FGSMResult struct {
	// Adversarial has the same labels as the input but perturbed
	// features.
	Adversarial *dataset.Table
	// CraftCost is the mean wall-clock cost to craft one adversarial
	// sample.
	CraftCost time.Duration
}

// FGSM runs the Fast Gradient Sign Method against a differentiable model:
// x' = x + eps · sign(∇_x loss(x, y)). The perturbation uses each sample's
// true label (an untargeted attack maximizing its loss), matching the
// white-box setting of use case 2.
func FGSM(model ml.GradientClassifier, t *dataset.Table, eps float64) (FGSMResult, error) {
	if model == nil {
		return FGSMResult{}, fmt.Errorf("attack: fgsm needs a model")
	}
	if eps <= 0 {
		return FGSMResult{}, fmt.Errorf("attack: fgsm eps %v must be positive", eps)
	}
	if t.Len() == 0 {
		return FGSMResult{}, fmt.Errorf("attack: fgsm on empty dataset")
	}
	out := t.Clone()
	start := clock.Real().Now()
	for i, x := range out.X {
		grad := model.InputGradient(x, out.Y[i])
		for j, g := range grad {
			switch {
			case g > 0:
				x[j] += eps
			case g < 0:
				x[j] -= eps
			}
		}
	}
	elapsed := clock.Real().Since(start)
	return FGSMResult{
		Adversarial: out,
		CraftCost:   elapsed / time.Duration(t.Len()),
	}, nil
}

// TransferFGSM crafts adversarial samples on a differentiable surrogate
// and returns them for evaluation against any victim model — the paper
// generates FGSM samples with its NN and transfers them to LightGBM and
// XGBoost.
func TransferFGSM(surrogate ml.GradientClassifier, t *dataset.Table, eps float64) (FGSMResult, error) {
	return FGSM(surrogate, t, eps)
}
