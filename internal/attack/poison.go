// Package attack implements the adversarial perturbations the paper
// injects into the two use cases: training-set poisoning (random label
// flipping, targeted label flipping, random label swapping, and synthetic-
// sample poisoning standing in for the CTGAN attack) and FGSM evasion.
//
// All attacks are deterministic given a seed and operate on copies unless
// documented otherwise, so experiments can sweep poison rates from one
// clean dataset.
package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// validateRate checks a poisoning rate in [0, 1].
func validateRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("attack: rate %v outside [0,1]", rate)
	}
	return nil
}

// LabelFlip returns a copy of t in which a fraction rate of the samples
// have their label replaced by a different class chosen uniformly at
// random — the black-box poisoning attack of use case 1.
func LabelFlip(t *dataset.Table, rate float64, seed int64) (*dataset.Table, error) {
	if err := validateRate(rate); err != nil {
		return nil, err
	}
	if t.NumClasses() < 2 {
		return nil, fmt.Errorf("attack: label flip needs >= 2 classes")
	}
	out := t.Clone()
	rng := rand.New(rand.NewSource(seed))
	n := out.Len()
	count := int(rate * float64(n))
	for _, i := range rng.Perm(n)[:count] {
		old := out.Y[i]
		nw := rng.Intn(t.NumClasses() - 1)
		if nw >= old {
			nw++
		}
		out.Y[i] = nw
	}
	return out, nil
}

// TargetedFlip returns a copy of t in which a fraction rate of the samples
// NOT already in class target have their label flipped to target — the
// "target label flipping" attack of use case 2.
func TargetedFlip(t *dataset.Table, rate float64, target int, seed int64) (*dataset.Table, error) {
	if err := validateRate(rate); err != nil {
		return nil, err
	}
	if target < 0 || target >= t.NumClasses() {
		return nil, fmt.Errorf("attack: target class %d out of range", target)
	}
	out := t.Clone()
	rng := rand.New(rand.NewSource(seed))
	var candidates []int
	for i, y := range out.Y {
		if y != target {
			candidates = append(candidates, i)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	count := int(rate * float64(out.Len()))
	if count > len(candidates) {
		count = len(candidates)
	}
	for _, i := range candidates[:count] {
		out.Y[i] = target
	}
	return out, nil
}

// RandomSwap returns a copy of t in which pairs of samples have their
// labels exchanged until a fraction rate of the dataset has been touched —
// the "random swapping labels" attack of use case 2.
func RandomSwap(t *dataset.Table, rate float64, seed int64) (*dataset.Table, error) {
	if err := validateRate(rate); err != nil {
		return nil, err
	}
	out := t.Clone()
	rng := rand.New(rand.NewSource(seed))
	n := out.Len()
	pairs := int(rate * float64(n) / 2)
	perm := rng.Perm(n)
	for p := 0; p < pairs; p++ {
		a, b := perm[2*p], perm[2*p+1]
		out.Y[a], out.Y[b] = out.Y[b], out.Y[a]
	}
	return out, nil
}
