package attack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestLabelFlipProperties: for random rates, the flip count is exact, no
// feature value changes, and every flipped label differs from the
// original.
func TestLabelFlipProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	tb := toyTable(t, 150, 4)
	f := func() bool {
		rate := rng.Float64()
		seed := rng.Int63()
		out, err := LabelFlip(tb, rate, seed)
		if err != nil {
			return false
		}
		flips := 0
		for i := range tb.Y {
			for j := range tb.X[i] {
				if out.X[i][j] != tb.X[i][j] {
					return false // features must be untouched
				}
			}
			if out.Y[i] != tb.Y[i] {
				flips++
			}
		}
		return flips == int(rate*float64(tb.Len()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomSwapPreservesLabelMultiset: swapping never changes the label
// histogram, for any rate and seed.
func TestRandomSwapPreservesLabelMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tb := toyTable(t, 120, 5)
	want := append([]int(nil), tb.Y...)
	sort.Ints(want)
	f := func() bool {
		out, err := RandomSwap(tb, rng.Float64(), rng.Int63())
		if err != nil {
			return false
		}
		got := append([]int(nil), out.Y...)
		sort.Ints(got)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTargetedFlipOnlyAddsTarget: for random rates, targeted flipping
// never decreases the target-class count and never touches target-class
// samples.
func TestTargetedFlipOnlyAddsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	tb := toyTable(t, 90, 3)
	f := func() bool {
		target := rng.Intn(3)
		out, err := TargetedFlip(tb, rng.Float64(), target, rng.Int63())
		if err != nil {
			return false
		}
		for i := range tb.Y {
			if tb.Y[i] == target && out.Y[i] != target {
				return false
			}
			if out.Y[i] != tb.Y[i] && out.Y[i] != target {
				return false
			}
		}
		return out.ClassCounts()[target] >= tb.ClassCounts()[target]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
