package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// StealResult reports a model-extraction attack: the trained surrogate and
// its agreement with the victim.
type StealResult struct {
	// Surrogate is the attacker's clone.
	Surrogate ml.Classifier
	// Fidelity is the fraction of evaluation inputs where surrogate and
	// victim agree (the standard extraction metric).
	Fidelity float64
	// Queries is the number of prediction-API calls spent.
	Queries int
}

// StealModel runs a prediction-API extraction attack (Tramèr et al.
// style): the attacker samples query inputs, labels them with the victim's
// predictions, and trains a surrogate on the stolen labels. evalOn
// provides the inputs on which fidelity is measured (typically a held-out
// set the attacker does not control).
func StealModel(victim ml.Classifier, surrogate ml.Classifier, queries [][]float64, featureNames, classNames []string, evalOn [][]float64) (StealResult, error) {
	if victim == nil || surrogate == nil {
		return StealResult{}, fmt.Errorf("attack: steal needs victim and surrogate")
	}
	if len(queries) == 0 {
		return StealResult{}, fmt.Errorf("attack: steal needs query inputs")
	}
	if len(evalOn) == 0 {
		return StealResult{}, fmt.Errorf("attack: steal needs evaluation inputs")
	}

	stolen := dataset.New("stolen", featureNames, classNames)
	for _, q := range queries {
		if err := stolen.Append(q, ml.Predict(victim, q)); err != nil {
			return StealResult{}, fmt.Errorf("label query: %w", err)
		}
	}
	if err := surrogate.Fit(stolen); err != nil {
		return StealResult{}, fmt.Errorf("fit surrogate: %w", err)
	}

	agree := 0
	for _, x := range evalOn {
		if ml.Predict(victim, x) == ml.Predict(surrogate, x) {
			agree++
		}
	}
	return StealResult{
		Surrogate: surrogate,
		Fidelity:  float64(agree) / float64(len(evalOn)),
		Queries:   len(queries),
	}, nil
}

// UniformQueries generates n query points uniformly inside the per-feature
// [min, max] box of reference data — the attacker's query distribution
// when no real data is available.
func UniformQueries(reference [][]float64, n int, seed int64) ([][]float64, error) {
	if len(reference) == 0 {
		return nil, fmt.Errorf("attack: need reference rows to bound queries")
	}
	d := len(reference[0])
	mins := append([]float64(nil), reference[0]...)
	maxs := append([]float64(nil), reference[0]...)
	for _, row := range reference[1:] {
		for j, v := range row {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = mins[j] + rng.Float64()*(maxs[j]-mins[j])
		}
		out[i] = row
	}
	return out, nil
}
