package attack

import (
	"testing"

	"repro/internal/ml"
)

func TestStealModelHighFidelityWithManyQueries(t *testing.T) {
	data := toyTable(t, 400, 2)
	victim := ml.NewTree(ml.DefaultTreeConfig())
	if err := victim.Fit(data); err != nil {
		t.Fatal(err)
	}
	queries, err := UniformQueries(data.X, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StealModel(victim, ml.NewTree(ml.DefaultTreeConfig()), queries, data.FeatureNames, data.ClassNames, data.X)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.95 {
		t.Fatalf("extraction fidelity %.3f < 0.95", res.Fidelity)
	}
	if res.Queries != 2000 {
		t.Fatalf("queries %d", res.Queries)
	}
}

func TestStealModelFidelityGrowsWithQueryBudget(t *testing.T) {
	data := toyTable(t, 400, 3)
	victim := ml.NewForest(ml.ForestConfig{Trees: 10, MaxFeatures: -1, MinLeaf: 1, Seed: 1})
	if err := victim.Fit(data); err != nil {
		t.Fatal(err)
	}
	fidelityAt := func(n int) float64 {
		queries, err := UniformQueries(data.X, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := StealModel(victim, ml.NewTree(ml.DefaultTreeConfig()), queries, data.FeatureNames, data.ClassNames, data.X)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fidelity
	}
	small := fidelityAt(20)
	large := fidelityAt(2000)
	if large <= small {
		t.Fatalf("fidelity should grow with query budget: %.3f -> %.3f", small, large)
	}
}

func TestStealModelValidation(t *testing.T) {
	data := toyTable(t, 50, 2)
	victim := ml.NewTree(ml.DefaultTreeConfig())
	if err := victim.Fit(data); err != nil {
		t.Fatal(err)
	}
	if _, err := StealModel(nil, victim, data.X, data.FeatureNames, data.ClassNames, data.X); err == nil {
		t.Fatal("expected nil-victim error")
	}
	if _, err := StealModel(victim, ml.NewTree(ml.DefaultTreeConfig()), nil, data.FeatureNames, data.ClassNames, data.X); err == nil {
		t.Fatal("expected no-queries error")
	}
	if _, err := StealModel(victim, ml.NewTree(ml.DefaultTreeConfig()), data.X, data.FeatureNames, data.ClassNames, nil); err == nil {
		t.Fatal("expected no-eval error")
	}
}

func TestUniformQueriesStayInBox(t *testing.T) {
	ref := [][]float64{{0, 10}, {1, 20}}
	queries, err := UniformQueries(ref, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if q[0] < 0 || q[0] > 1 || q[1] < 10 || q[1] > 20 {
			t.Fatalf("query %v outside reference box", q)
		}
	}
	if _, err := UniformQueries(nil, 5, 1); err == nil {
		t.Fatal("expected empty-reference error")
	}
}
