package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// GMMSynthesizer is the stand-in for the paper's CTGAN-based poisoning
// generator: a per-class Gaussian mixture fitted to the training data
// generates samples that are near the data manifold but smooth away the
// decision-relevant detail. See DESIGN.md §3 for the substitution
// rationale.
type GMMSynthesizer struct {
	// Components is the number of mixture components per class
	// (default 3).
	Components int
	// KMeansIters bounds the clustering iterations (default 10).
	KMeansIters int
	// StdScale shrinks (<1) or inflates (>1) the fitted per-feature
	// standard deviations when sampling. Values below 1 concentrate
	// synthetic samples on the data manifold, which is what makes
	// mislabeled synthetic poison collide with real samples (default 1).
	StdScale float64
	// Seed drives fitting.
	Seed int64

	classes  int
	dim      int
	mixtures [][]gmmComponent // per class
}

type gmmComponent struct {
	weight float64
	mean   []float64
	std    []float64
}

// Fit estimates the per-class mixtures from t.
func (g *GMMSynthesizer) Fit(t *dataset.Table) error {
	if t.Len() == 0 {
		return fmt.Errorf("attack: synthesizer fit on empty dataset")
	}
	if g.Components <= 0 {
		g.Components = 3
	}
	if g.KMeansIters <= 0 {
		g.KMeansIters = 10
	}
	g.classes = t.NumClasses()
	g.dim = t.NumFeatures()
	g.mixtures = make([][]gmmComponent, g.classes)
	rng := rand.New(rand.NewSource(g.Seed))

	for c := 0; c < g.classes; c++ {
		var rows [][]float64
		for i, y := range t.Y {
			if y == c {
				rows = append(rows, t.X[i])
			}
		}
		if len(rows) == 0 {
			continue
		}
		k := g.Components
		if k > len(rows) {
			k = len(rows)
		}
		assign := kMeans(rng, rows, k, g.KMeansIters)
		comps := make([]gmmComponent, 0, k)
		for cl := 0; cl < k; cl++ {
			var members [][]float64
			for i, a := range assign {
				if a == cl {
					members = append(members, rows[i])
				}
			}
			if len(members) == 0 {
				continue
			}
			comp := gmmComponent{
				weight: float64(len(members)) / float64(len(rows)),
				mean:   make([]float64, g.dim),
				std:    make([]float64, g.dim),
			}
			for _, r := range members {
				for j, v := range r {
					comp.mean[j] += v
				}
			}
			for j := range comp.mean {
				comp.mean[j] /= float64(len(members))
			}
			for _, r := range members {
				for j, v := range r {
					d := v - comp.mean[j]
					comp.std[j] += d * d
				}
			}
			for j := range comp.std {
				comp.std[j] = math.Sqrt(comp.std[j] / float64(len(members)))
			}
			comps = append(comps, comp)
		}
		g.mixtures[c] = comps
	}
	return nil
}

// Sample draws n synthetic rows for class c.
func (g *GMMSynthesizer) Sample(c, n int, seed int64) ([][]float64, error) {
	if g.mixtures == nil {
		return nil, fmt.Errorf("attack: synthesizer not fitted")
	}
	if c < 0 || c >= g.classes {
		return nil, fmt.Errorf("attack: class %d out of range", c)
	}
	comps := g.mixtures[c]
	if len(comps) == 0 {
		return nil, fmt.Errorf("attack: class %d has no fitted components", c)
	}
	scale := g.StdScale
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		comp := pickComponent(rng, comps)
		row := make([]float64, g.dim)
		for j := range row {
			row[j] = comp.mean[j] + rng.NormFloat64()*comp.std[j]*scale
		}
		out[i] = row
	}
	return out, nil
}

func pickComponent(rng *rand.Rand, comps []gmmComponent) gmmComponent {
	r := rng.Float64()
	acc := 0.0
	for _, c := range comps {
		acc += c.weight
		if r <= acc {
			return c
		}
	}
	return comps[len(comps)-1]
}

// kMeans clusters rows into k groups with k-means++ seeding and returns
// per-row assignments.
func kMeans(rng *rand.Rand, rows [][]float64, k, iters int) []int {
	n := len(rows)
	centers := make([][]float64, 0, k)
	centers = append(centers, mat.CloneVec(rows[rng.Intn(n)]))
	for len(centers) < k {
		// k-means++: sample proportional to squared distance to the
		// nearest existing center.
		d2 := make([]float64, n)
		var total float64
		for i, r := range rows {
			best := math.Inf(1)
			for _, c := range centers {
				if d := mat.Dist2(r, c); d*d < best {
					best = d * d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			centers = append(centers, mat.CloneVec(rows[rng.Intn(n)]))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centers = append(centers, mat.CloneVec(rows[pick]))
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, r := range rows {
			best, bi := math.Inf(1), 0
			for ci, c := range centers {
				if d := mat.Dist2(r, c); d < best {
					best, bi = d, ci
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for ci := range centers {
			for j := range centers[ci] {
				centers[ci][j] = 0
			}
		}
		for i, r := range rows {
			counts[assign[i]]++
			for j, v := range r {
				centers[assign[i]][j] += v
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				centers[ci] = mat.CloneVec(rows[rng.Intn(n)])
				continue
			}
			for j := range centers[ci] {
				centers[ci][j] /= float64(counts[ci])
			}
		}
	}
	return assign
}

// PoisonSynthetic implements the GAN-style poisoning attack: it fits the
// synthesizer on t, generates count synthetic rows whose class labels are
// drawn from the class marginal, mislabels a fraction of them, and returns
// t plus the poison appended. mislabel in [0,1] is the fraction of
// synthetic samples given a deliberately wrong label.
func PoisonSynthetic(t *dataset.Table, count int, mislabel float64, seed int64) (*dataset.Table, error) {
	if count < 0 {
		return nil, fmt.Errorf("attack: negative synthetic count %d", count)
	}
	if err := validateRate(mislabel); err != nil {
		return nil, err
	}
	synth := &GMMSynthesizer{Seed: seed, StdScale: 0.5}
	if err := synth.Fit(t); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	counts := t.ClassCounts()
	out := t.Clone()
	for i := 0; i < count; i++ {
		c := sampleClass(rng, counts)
		rows, err := synth.Sample(c, 1, seed+int64(i)*31)
		if err != nil {
			return nil, err
		}
		label := c
		if rng.Float64() < mislabel && t.NumClasses() > 1 {
			label = rng.Intn(t.NumClasses() - 1)
			if label >= c {
				label++
			}
		}
		if err := out.Append(rows[0], label); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sampleClass(rng *rand.Rand, counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	r := rng.Intn(total)
	acc := 0
	for c, n := range counts {
		acc += n
		if r < acc {
			return c
		}
	}
	return len(counts) - 1
}
