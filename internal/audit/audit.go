// Package audit implements the accountability substrate the paper's AI
// dashboard exists to serve: "it facilitates the verification of AI
// systems for potential audits and ensures compliance with accountability
// regulations set by regulatory bodies" (§I). The log is an append-only,
// hash-chained record of trust-relevant events (sensor readings, alerts,
// operator actions, model deployments); any later tampering with a stored
// record breaks the chain and is detected by Verify.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an audit record.
type Kind string

// Audit record kinds.
const (
	KindReading  Kind = "reading"  // a sensor measurement
	KindAlert    Kind = "alert"    // a threshold violation
	KindAction   Kind = "action"   // an operator's corrective action
	KindDeploy   Kind = "deploy"   // a model (re)deployment
	KindDecision Kind = "decision" // an individual AI decision under audit
)

// Record is one immutable audit entry.
type Record struct {
	// Seq is the 1-based position in the chain.
	Seq int `json:"seq"`
	// Time is the append timestamp.
	Time time.Time `json:"time"`
	// Kind classifies the event; Actor identifies the producing
	// component (sensor name, operator id, service).
	Kind  Kind   `json:"kind"`
	Actor string `json:"actor"`
	// Payload is the event body (JSON).
	Payload json.RawMessage `json:"payload"`
	// PrevHash chains to the previous record; Hash covers this record.
	PrevHash string `json:"prevHash"`
	Hash     string `json:"hash"`
}

// hashBody computes the record hash over every field except Hash itself.
func hashBody(r Record) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%d|%s|%s|%s|", r.Seq, r.Time.UnixNano(), r.Kind, r.Actor, r.PrevHash)
	h.Write(r.Payload)
	return hex.EncodeToString(h.Sum(nil))
}

// Log is an append-only hash-chained audit log. The zero value is not
// usable; construct with NewLog.
type Log struct {
	mu      sync.Mutex
	records []Record
	now     func() time.Time
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{now: time.Now} }

// Append adds an event. payload may be any JSON-marshalable value.
func (l *Log) Append(kind Kind, actor string, payload any) (Record, error) {
	if kind == "" {
		return Record{}, fmt.Errorf("audit: empty kind")
	}
	if actor == "" {
		return Record{}, fmt.Errorf("audit: empty actor")
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return Record{}, fmt.Errorf("audit: marshal payload: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{
		Seq:     len(l.records) + 1,
		Time:    l.now(),
		Kind:    kind,
		Actor:   actor,
		Payload: raw,
	}
	if len(l.records) > 0 {
		rec.PrevHash = l.records[len(l.records)-1].Hash
	}
	rec.Hash = hashBody(rec)
	l.records = append(l.records, rec)
	return rec, nil
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of the chain (optionally filtered by kind; ""
// returns everything).
func (l *Log) Records(kind Kind) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.records))
	for _, r := range l.records {
		if kind == "" || r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// Verify walks the chain and returns the first inconsistency found:
// a broken hash, a broken link, or a sequence gap. A nil error means the
// log is internally consistent.
func (l *Log) Verify() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return verifyChain(l.records)
}

func verifyChain(records []Record) error {
	prevHash := ""
	for i, r := range records {
		if r.Seq != i+1 {
			return fmt.Errorf("audit: record %d has seq %d", i+1, r.Seq)
		}
		if r.PrevHash != prevHash {
			return fmt.Errorf("audit: record %d chain link broken", r.Seq)
		}
		if hashBody(r) != r.Hash {
			return fmt.Errorf("audit: record %d content hash mismatch (tampered?)", r.Seq)
		}
		prevHash = r.Hash
	}
	return nil
}

// WriteJSONL serializes the chain as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, r := range l.records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("audit: encode record %d: %w", r.Seq, err)
		}
	}
	return nil
}

// ReadJSONL loads and verifies a chain previously written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	var records []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("audit: decode record %d: %w", len(records)+1, err)
		}
		records = append(records, rec)
	}
	if err := verifyChain(records); err != nil {
		return nil, err
	}
	l := NewLog()
	l.records = records
	return l, nil
}
