package audit

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAndVerify(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(KindReading, "sensor-a", map[string]float64{"value": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("len %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	recs := l.Records("")
	if recs[0].PrevHash != "" || recs[1].PrevHash != recs[0].Hash {
		t.Fatal("chain links wrong")
	}
}

func TestAppendValidation(t *testing.T) {
	l := NewLog()
	if _, err := l.Append("", "a", nil); err == nil {
		t.Fatal("expected kind error")
	}
	if _, err := l.Append(KindAlert, "", nil); err == nil {
		t.Fatal("expected actor error")
	}
	if _, err := l.Append(KindAlert, "a", func() {}); err == nil {
		t.Fatal("expected marshal error")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	l := NewLog()
	for i := 0; i < 4; i++ {
		if _, err := l.Append(KindAction, "operator", map[string]int{"step": i}); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper with a payload in place.
	l.records[1].Payload = []byte(`{"step":99}`)
	if err := l.Verify(); err == nil {
		t.Fatal("payload tampering undetected")
	}

	// Rebuild, then tamper with a hash to re-link the chain: the
	// successor's PrevHash no longer matches.
	l2 := NewLog()
	for i := 0; i < 3; i++ {
		if _, err := l2.Append(KindAction, "operator", i); err != nil {
			t.Fatal(err)
		}
	}
	l2.records[0].Hash = hashBody(l2.records[0]) // unchanged: still fine
	if err := l2.Verify(); err != nil {
		t.Fatal(err)
	}
	l2.records[0].Payload = []byte(`7`)
	l2.records[0].Hash = hashBody(l2.records[0]) // rehash after tamper
	if err := l2.Verify(); err == nil {
		t.Fatal("re-hashed tampering should break the successor link")
	}
}

func TestRecordsFilter(t *testing.T) {
	l := NewLog()
	_, _ = l.Append(KindReading, "s", 1)
	_, _ = l.Append(KindAlert, "s", 2)
	_, _ = l.Append(KindReading, "s", 3)
	if got := len(l.Records(KindReading)); got != 2 {
		t.Fatalf("filtered %d", got)
	}
	if got := len(l.Records(KindDeploy)); got != 0 {
		t.Fatalf("filtered %d", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := NewLog()
	_, _ = l.Append(KindDeploy, "pipeline", map[string]string{"model": "m0001"})
	_, _ = l.Append(KindAlert, "sensor-acc", map[string]float64{"value": 0.4})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len %d", back.Len())
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONLRejectsTamperedFile(t *testing.T) {
	l := NewLog()
	_, _ = l.Append(KindReading, "s", map[string]float64{"value": 1})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"value":1`, `"value":2`, 1)
	if _, err := ReadJSONL(strings.NewReader(tampered)); err == nil {
		t.Fatal("tampered file accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConcurrentAppendsKeepChainConsistent(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := l.Append(KindReading, "sensor", g*100+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Fatalf("len %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicHashGivenFixedClock(t *testing.T) {
	mk := func() *Log {
		l := NewLog()
		l.now = func() time.Time { return time.Unix(1700000000, 0) }
		_, _ = l.Append(KindReading, "s", 42)
		return l
	}
	a, b := mk(), mk()
	if a.Records("")[0].Hash != b.Records("")[0].Hash {
		t.Fatal("hash not deterministic for identical content")
	}
}
