// Package benchfmt parses `go test -bench` text output into a stable
// JSON document and maintains the committed benchmark history. It is
// shared by cmd/spatial-benchjson (which records `make bench` runs) and
// internal/perfgate (which gates fresh runs against the committed
// baseline), so both sides agree byte-for-byte on what a benchmark
// result is.
//
// Parsing is strict: a line that starts with "Benchmark" but does not
// parse as a result line is an error, not a silently dropped record — a
// truncated or failed benchmark run must not overwrite the committed
// baseline with a partial document. Lines without -benchmem columns are
// fine (B/op and allocs/op are optional); so are custom
// testing.B.ReportMetric units.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Repeated -count runs of the same
// benchmark produce one Result per run; consumers treat same-name
// results as samples of one distribution.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
	// hasAllocs distinguishes "measured zero allocations" from "ran
	// without -benchmem"; it is parse-time state, not serialized.
	hasAllocs bool
	// Extra holds any custom ReportMetric units (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// HasAllocs reports whether the line carried -benchmem columns.
func (r *Result) HasAllocs() bool { return r.hasAllocs }

// Document is the file layout of BENCH_*.json snapshots.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Samples groups the document's results by benchmark name, preserving
// run order within each name (the -count sample order).
func (d *Document) Samples() map[string][]Result {
	out := make(map[string][]Result)
	for _, r := range d.Benchmarks {
		out[r.Name] = append(out[r.Name], r)
	}
	return out
}

// ParseError records one malformed benchmark line.
type ParseError struct {
	LineNum int
	Line    string
	Reason  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s: %q", e.LineNum, e.Reason, e.Line)
}

// ParseStream reads `go test -bench` output from r, echoing every line
// to echo (pass io.Discard to silence), and returns the parsed document.
// Any malformed Benchmark line makes the whole parse fail: the returned
// error wraps every ParseError encountered, and the document should not
// be written anywhere. Benchmarks are sorted by name (stably, so -count
// sample order survives).
func ParseStream(r io.Reader, echo io.Writer) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var errs []string
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, err := ParseLine(line)
			if err != nil {
				errs = append(errs, (&ParseError{LineNum: lineNum, Line: line, Reason: err.Error()}).Error())
				continue
			}
			doc.Benchmarks = append(doc.Benchmarks, r)
		case strings.Contains(line, "--- FAIL") || strings.HasPrefix(line, "FAIL"):
			errs = append(errs, (&ParseError{LineNum: lineNum, Line: line, Reason: "benchmark run failed"}).Error())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("benchfmt: %d unparseable line(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines in input")
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// ParseLine parses one benchmark result line:
//
//	BenchmarkName-8   123  456.7 ns/op  89 B/op  2 allocs/op  1.5 rows/s
//
// The -benchmem columns and custom units are optional; the iteration
// count and at least one value/unit metric pair are not. A line whose
// name parses but whose body does not (a crashed benchmark, interleaved
// output, a truncated pipe) returns an error.
func ParseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("want >= 4 fields (name, iterations, value, unit), got %d", len(fields))
	}
	name := fields[0]
	r := Result{Name: name, Procs: 1}
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			r.Name = name[:i]
			r.Procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count %q is not an integer", fields[1])
	}
	r.Iterations = iters
	// The rest come in value/unit pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("odd metric tail %q (value without unit)", strings.Join(rest, " "))
	}
	for i := 0; i+1 < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q for unit %q is not a number", rest[i], rest[i+1])
		}
		switch rest[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
			r.hasAllocs = true
		case "allocs/op":
			r.AllocsPerOp = int64(v)
			r.hasAllocs = true
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[rest[i+1]] = v
		}
	}
	return r, nil
}

// Marshal renders the document in the committed snapshot form:
// two-space indent, trailing newline, map keys sorted.
func (d *Document) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Load reads a snapshot document from path.
func Load(path string) (*Document, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &d, nil
}
