package benchfmt

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodRun = `goos: linux
goarch: amd64
pkg: repro/internal/serving
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServingSerialForest-8   	  100098	     11993 ns/op	      24 B/op	       1 allocs/op
BenchmarkServingBatchedForest-8  	  229075	      6634 ns/op	     341 B/op	       5 allocs/op
BenchmarkServingBatchedForest-8  	  231000	      6701 ns/op	     339 B/op	       5 allocs/op
PASS
ok  	repro/internal/serving	12.3s
`

func TestParseStream(t *testing.T) {
	doc, err := ParseStream(strings.NewReader(goodRun), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("bad header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	s := doc.Samples()
	if len(s["BenchmarkServingBatchedForest"]) != 2 {
		t.Fatalf("want 2 samples of the batched benchmark, got %d", len(s["BenchmarkServingBatchedForest"]))
	}
	// Stable sort keeps -count order within a name.
	if got := s["BenchmarkServingBatchedForest"][0].NsPerOp; got != 6634 {
		t.Fatalf("sample order not preserved: first sample %v ns/op", got)
	}
	if !doc.Benchmarks[0].HasAllocs() {
		t.Fatal("benchmem columns not detected")
	}
}

func TestParseLineWithoutBenchmem(t *testing.T) {
	r, err := ParseLine("BenchmarkNoMem-4   \t 500000 \t 2501 ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "BenchmarkNoMem" || r.Procs != 4 || r.NsPerOp != 2501 {
		t.Fatalf("bad parse: %+v", r)
	}
	if r.HasAllocs() {
		t.Fatal("line without -benchmem columns reported HasAllocs")
	}
}

func TestParseLineCustomUnits(t *testing.T) {
	r, err := ParseLine("BenchmarkRows-8  100  12.5 ns/op  3200 rows/s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Extra["rows/s"] != 3200 {
		t.Fatalf("custom unit lost: %+v", r)
	}
}

func TestParseStreamRejectsMalformed(t *testing.T) {
	cases := []string{
		"BenchmarkTruncated-8   123",                   // no metric pair
		"BenchmarkOddTail-8   123   456.7 ns/op   89",  // value without unit
		"BenchmarkBadIters-8   abc   456.7 ns/op",      // iterations not a number
		"BenchmarkBadValue-8   123   fast ns/op",       // value not a number
		"goos: linux\nBenchmarkOK-8 10 5 ns/op\nFAIL",  // failed run
		"goos: linux\npkg: p\ncpu: c\nPASS\nok p 1.0s", // no benchmarks at all
	}
	for _, in := range cases {
		if _, err := ParseStream(strings.NewReader(in), io.Discard); err == nil {
			t.Errorf("input %q: want parse error, got nil", in)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	doc, err := ParseStream(strings.NewReader(goodRun), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(doc.Benchmarks) || got.CPU != doc.CPU {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, doc)
	}
	buf2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("marshal is not deterministic across a round trip")
	}
}

func TestTrajectoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	doc, err := ParseStream(strings.NewReader(goodRun), io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := LoadTrajectory(path) // missing file -> empty history
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(path, doc, "abc1234", "2026-08-09"); err != nil {
		t.Fatal(err)
	}
	// Same commit + machine re-run replaces rather than duplicates.
	tr, err = LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(path, doc, "abc1234", "2026-08-09"); err != nil {
		t.Fatal(err)
	}
	// A new commit appends.
	tr, err = LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(path, doc, "def5678", "2026-08-10"); err != nil {
		t.Fatal(err)
	}

	final, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (dedup same-commit, append new)", len(final.Entries))
	}
	if final.Entries[0].Commit != "abc1234" || final.Entries[1].Commit != "def5678" {
		t.Fatalf("bad commit stamps: %+v", final.Entries)
	}
	if final.Entries[0].Goos != "linux" || final.Entries[0].CPU == "" {
		t.Fatalf("machine stamp lost: %+v", final.Entries[0])
	}
}
