package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Trajectory is the committed benchmark history: one entry per recorded
// `make bench` run, appended in run order so the throughput trajectory
// is diffable across PRs instead of each run overwriting the last.
type Trajectory struct {
	// Entries are the recorded runs, oldest first.
	Entries []TrajectoryEntry `json:"entries"`
}

// TrajectoryEntry is one recorded run, stamped with enough provenance
// (commit, machine, toolchain) to judge whether two entries are
// comparable.
type TrajectoryEntry struct {
	// Commit is the git commit the run was recorded at (short hash; the
	// recorder passes it in — this package does not shell out).
	Commit string `json:"commit,omitempty"`
	// Date is the recorder-supplied run date (YYYY-MM-DD); kept coarse so
	// back-to-back re-runs of an unchanged tree stay diff-quiet.
	Date string `json:"date,omitempty"`
	// Goos, Goarch, and CPU identify the machine, copied from the run's
	// document header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks are the run's results (same layout as the snapshot).
	Benchmarks []Result `json:"benchmarks"`
}

// LoadTrajectory reads the history at path; a missing file is an empty
// history, any other read or decode error is returned.
func LoadTrajectory(path string) (*Trajectory, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(buf, &t); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &t, nil
}

// Append records doc as a new entry stamped with commit and date, and
// rewrites path. When the latest entry has the same commit, machine, and
// results it is replaced instead of duplicated, so re-running
// `make bench` on an unchanged tree does not grow the history.
func (t *Trajectory) Append(path string, doc *Document, commit, date string) error {
	e := TrajectoryEntry{
		Commit:     commit,
		Date:       date,
		Goos:       doc.Goos,
		Goarch:     doc.Goarch,
		CPU:        doc.CPU,
		Benchmarks: doc.Benchmarks,
	}
	if n := len(t.Entries); n > 0 && t.Entries[n-1].Commit == commit && t.Entries[n-1].CPU == doc.CPU {
		t.Entries[n-1] = e
	} else {
		t.Entries = append(t.Entries, e)
	}
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
