// Package clock abstracts the time source so components that schedule
// work (sensor sampling loops, load-generator ramp-ups) can be driven
// deterministically in tests. The spatial-lint nondeterminism analyzer
// flags raw time.Now() in seed-critical packages; this package is the
// sanctioned injection point: production code takes a Clock and defaults
// to Real(), tests install a Fake and advance it explicitly, so timing
// assertions stop depending on scheduler load.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time surface the repo's scheduling code consumes.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker abstracts time.Ticker so fakes can drive sampling loops.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop releases the ticker's resources.
	Stop()
}

// realClock delegates to the time package.
type realClock struct{}

// Real returns the wall-clock Clock.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) NewTicker(d time.Duration) Ticker       { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// Fake is a manually advanced Clock. Time only moves when Advance is
// called; timers and tickers whose deadlines are reached fire in
// deadline order with the fake timestamp. All methods are safe for
// concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
	// cond broadcasts waiter-set changes for BlockUntil.
	cond *sync.Cond
}

// waiter is one pending timer (period 0) or ticker.
type waiter struct {
	deadline time.Time
	period   time.Duration
	ch       chan time.Time
	stopped  bool
}

// NewFake builds a fake clock starting at start (a fixed epoch keeps
// test output reproducible).
func NewFake(start time.Time) *Fake {
	f := &Fake{now: start}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since is Now().Sub(t) on the fake timeline.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// After registers a one-shot timer. A non-positive d fires immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, &waiter{deadline: f.now.Add(d), ch: ch})
	f.cond.Broadcast()
	return ch
}

// NewTicker registers a repeating timer.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{deadline: f.now.Add(d), period: d, ch: make(chan time.Time, 1)}
	f.waiters = append(f.waiters, w)
	f.cond.Broadcast()
	return &fakeTicker{f: f, w: w}
}

type fakeTicker struct {
	f *Fake
	w *waiter
}

func (t *fakeTicker) C() <-chan time.Time { return t.w.ch }

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	t.w.stopped = true
}

// Advance moves the fake time forward by d, firing every timer and
// ticker whose deadline is reached, in deadline order. Ticker deliveries
// coalesce like time.Ticker's (capacity-1 channel, slow receivers skip
// ticks).
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.now.Add(d)
	for {
		// Find the earliest due waiter still at or before target.
		idx := -1
		for i, w := range f.waiters {
			if w.stopped || w.deadline.After(target) {
				continue
			}
			if idx == -1 || w.deadline.Before(f.waiters[idx].deadline) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		w := f.waiters[idx]
		f.now = w.deadline
		select {
		case w.ch <- w.deadline:
		default: // receiver is behind; drop the tick like time.Ticker
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
		} else {
			f.waiters = append(f.waiters[:idx], f.waiters[idx+1:]...)
		}
	}
	f.now = target
	f.cond.Broadcast()
}

// BlockUntil returns once at least n timers/tickers are pending, letting
// tests synchronize with goroutines that are about to wait on the clock.
func (f *Fake) BlockUntil(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.pendingLocked() < n {
		f.cond.Wait()
	}
}

// pendingLocked counts live waiters.
func (f *Fake) pendingLocked() int {
	c := 0
	for _, w := range f.waiters {
		if !w.stopped {
			c++
		}
	}
	return c
}

// Pending reports the number of live timers/tickers (for test
// assertions).
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pendingLocked()
}

// Deadlines lists pending deadlines in ascending order (for test
// assertions and debugging).
func (f *Fake) Deadlines() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Time, 0, len(f.waiters))
	for _, w := range f.waiters {
		if !w.stopped {
			out = append(out, w.deadline)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

var _ Clock = (*Fake)(nil)
