package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestFakeAdvanceFiresTimersInDeadlineOrder(t *testing.T) {
	f := NewFake(epoch)
	a := f.After(30 * time.Millisecond)
	b := f.After(10 * time.Millisecond)
	c := f.After(20 * time.Millisecond)

	f.Advance(time.Second)

	got := []time.Time{<-b, <-c, <-a}
	want := []time.Duration{10, 20, 30}
	for i, ts := range got {
		if ts.Sub(epoch) != want[i]*time.Millisecond {
			t.Fatalf("fire %d at %v, want +%vms", i, ts.Sub(epoch), want[i])
		}
	}
	if f.Now() != epoch.Add(time.Second) {
		t.Fatalf("Now = %v, want epoch+1s", f.Now())
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(epoch)
	select {
	case ts := <-f.After(0):
		if !ts.Equal(epoch) {
			t.Fatalf("fired at %v, want epoch", ts)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeTickerCoalescesLikeTimeTicker(t *testing.T) {
	f := NewFake(epoch)
	tk := f.NewTicker(10 * time.Millisecond)
	// Five periods elapse with nobody receiving: only one tick is
	// buffered, matching time.Ticker semantics.
	f.Advance(50 * time.Millisecond)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1 (coalesced)", n)
	}
	tk.Stop()
	f.Advance(100 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestFakeTickerFiresEachPeriodWhenDrained(t *testing.T) {
	f := NewFake(epoch)
	tk := f.NewTicker(25 * time.Millisecond)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		f.Advance(25 * time.Millisecond)
		ts := <-tk.C()
		if want := epoch.Add(time.Duration(i) * 25 * time.Millisecond); !ts.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
}

func TestFakeBlockUntilSynchronizesWithWaiters(t *testing.T) {
	f := NewFake(epoch)
	var wg sync.WaitGroup
	starts := make([]time.Time, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			starts[i] = <-f.After(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	f.BlockUntil(3)
	f.Advance(5 * time.Millisecond)
	wg.Wait()
	for i, ts := range starts {
		if want := epoch.Add(time.Duration(i+1) * time.Millisecond); !ts.Equal(want) {
			t.Fatalf("waiter %d woke at %v, want %v", i, ts, want)
		}
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := c.Now()
	if c.Since(before) < 0 {
		t.Fatal("Since went backwards")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real ticker never fired")
	}
}
