package cluster

import (
	"context"
	"errors"
	"time"

	"repro/internal/serving"
)

// ErrReplicaDown is returned by backends whose replica is unreachable
// (killed process, refused connection, transport failure). The router
// treats it as a failover signal: the member is marked down immediately
// and the request reroutes to the next ring candidate, without waiting
// for the heartbeat sweep to notice.
var ErrReplicaDown = errors.New("cluster: replica down")

// ErrNoReplicas is returned when no up, non-draining replica can take a
// request. Servers surface it as 503.
var ErrNoReplicas = errors.New("cluster: no replica available")

// HeartbeatInfo is one replica's self-report, polled by the cluster on
// the heartbeat interval and folded into membership state.
type HeartbeatInfo struct {
	ID string `json:"id"`
	// InFlight is the serving runtime's in-flight instance count — the
	// queue-depth signal the least-loaded spillover reads.
	InFlight int `json:"inFlight"`
	// Models and WarmBytes describe the replica's registry (capacity
	// planning and the dashboard's cluster panel).
	Models    int   `json:"models"`
	WarmBytes int64 `json:"warmBytes"`
	// Draining reports a replica that finishes in-flight work but must
	// receive no new routes (cluster-coordinated restart).
	Draining bool `json:"draining"`
}

// Backend is the coordinator's and router's view of one replica,
// implemented in-process by *Replica itself and over the wire by
// HTTPBackend. Every method takes a context the caller bounds with the
// cluster's RPC timeout.
type Backend interface {
	// ID returns the replica's stable identifier.
	ID() string
	// Predict scores instances on the replica's serving runtime.
	Predict(ctx context.Context, ref string, instances [][]float64) ([][]float64, []int, error)
	// Heartbeat reports liveness and load.
	Heartbeat(ctx context.Context) (HeartbeatInfo, error)
	// Push replicates one serialized model envelope as the next version
	// of name. Content addressing makes re-pushing idempotent: a blob the
	// replica already holds dedupes to the existing entry.
	Push(ctx context.Context, name, algo string, blob []byte) (serving.Ref, error)
	// Aliases lists the replica's registry alias state (anti-entropy
	// reconciliation reads it to find divergence).
	Aliases(ctx context.Context) ([]serving.AliasInfo, error)
	// Prepare stages the alias flip name -> version (whose content id
	// must equal id) under txn, valid for ttl on the replica's clock.
	// After a successful prepare the replica guarantees Commit(txn) will
	// succeed until the ttl expires.
	Prepare(ctx context.Context, txn, name string, version int, id string, ttl time.Duration) error
	// Commit applies a staged flip.
	Commit(ctx context.Context, txn string) error
	// Abort discards a staged flip. Aborting an unknown txn is a no-op.
	Abort(ctx context.Context, txn string) error
}
