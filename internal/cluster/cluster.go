// Package cluster turns the single-process serving runtime into a
// replicated N-replica tier: shard-aware routing over a bounded-load
// consistent-hash ring (each replica's warm LRU cache stays hot for its
// shard), registry replication by push-on-promote of the sha256
// content-addressed blobs with anti-entropy reconciliation on
// join/restart, heartbeat-driven membership, and a coordinator that
// executes cluster-wide alias flips as a two-phase commit so an alias
// never points at different versions on different replicas.
//
// All timing — heartbeat sweeps, expiry, RPC timeouts, prepare TTLs —
// runs on internal/clock, so failover and interrupted promotes are
// deterministically testable on the fake clock.
package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/serving"
	"repro/internal/telemetry"
)

// Config parameterizes a Cluster. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// VirtualNodes is the per-replica vnode count on the ring (default
	// 64).
	VirtualNodes int
	// LoadFactor is the bounded-load factor c (default 1.25): a shard
	// owner carrying more than c times the mean per-replica load stops
	// receiving new shard traffic and the ring walks to its successor.
	LoadFactor float64
	// HeartbeatInterval is how often Start sweeps every member's
	// heartbeat (default 1s).
	HeartbeatInterval time.Duration
	// HeartbeatExpiry is how stale a member's last successful heartbeat
	// may grow before it is marked down (default 3x the interval).
	HeartbeatExpiry time.Duration
	// PrepareTTL bounds how long a prepared-but-uncommitted alias flip
	// stays valid on a replica (default 5s).
	PrepareTTL time.Duration
	// RPCTimeout bounds each backend call the coordinator makes
	// (default 2s).
	RPCTimeout time.Duration
	// WarmBytes is the canonical registry's warm-cache budget (default
	// 128 MiB). The coordinator's copy mostly holds serialized blobs;
	// replicas do the serving.
	WarmBytes int64
	// Clock is the time source; clock.Real() when nil.
	Clock clock.Clock
	// Telemetry is the metric registry cluster metrics record into; a
	// private registry is created when nil.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = defaultVirtualNodes
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatExpiry <= 0 {
		c.HeartbeatExpiry = 3 * c.HeartbeatInterval
	}
	if c.PrepareTTL <= 0 {
		c.PrepareTTL = 5 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.WarmBytes <= 0 {
		c.WarmBytes = 128 << 20
	}
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	return c
}

// member is the cluster's view of one replica. Hot-path routing state
// (up, draining, load) is atomic so the pick path never takes the
// cluster lock; bookkeeping read only by heartbeats and Status sits
// behind Cluster.mu.
type member struct {
	id      string
	backend Backend
	met     replicaMetrics

	up       atomic.Bool
	draining atomic.Bool
	// load is the router-tracked in-flight instance count through this
	// cluster (the bounded-load and least-loaded spillover signal).
	load atomic.Int64

	// Guarded by Cluster.mu:
	lastBeat  time.Time
	inFlight  int
	models    int
	warmBytes int64
}

// routeTable is the immutable routing snapshot the predict path reads:
// a ring over the routable (up, non-draining) members plus the member
// structs aligned with the ring's ID order. Rebuilt on membership
// change, swapped atomically.
type routeTable struct {
	ring    *Ring
	members []*member
}

// Cluster is the coordinator and router of a replica tier. Create with
// New, add replicas with Join, and either call TickHeartbeat from a test
// on a fake clock or Start/Stop the background sweeper.
type Cluster struct {
	cfg Config
	clk clock.Clock
	met *metrics

	// canonical is the coordinator's source-of-truth registry: every
	// Register flows through it, so version numbering is identical on
	// every replica that replays it in order.
	canonical *serving.Registry

	// coordMu serializes control-plane operations (register,
	// replication, anti-entropy, two-phase promote/rollback) so
	// replicated version numbering and alias flips are totally ordered.
	// Lock order: coordMu before mu, never the reverse. The data plane
	// (Predict, heartbeat reads) does not take it.
	coordMu sync.Mutex

	mu      sync.Mutex
	members map[string]*member
	ids     []string // sorted member IDs (deterministic sweep/2PC order)
	txnSeq  uint64

	table atomic.Pointer[routeTable]

	startMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// New builds an empty cluster from cfg.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:       cfg,
		clk:       cfg.Clock,
		met:       newMetrics(cfg.Telemetry),
		canonical: serving.NewRegistry(cfg.WarmBytes),
		members:   make(map[string]*member),
	}
	c.table.Store(&routeTable{ring: NewRing(nil, cfg.VirtualNodes)})
	return c
}

// Canonical returns the coordinator's source-of-truth registry.
func (c *Cluster) Canonical() *serving.Registry { return c.canonical }

// Telemetry returns the metric registry cluster metrics record into.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.cfg.Telemetry }

// Join adds a replica to the cluster: probe it with a heartbeat, run
// anti-entropy reconciliation so its registry catches up with the
// canonical one, and rebuild the ring. A replica that fails the probe
// still becomes a member — marked down, to be healed by later heartbeat
// sweeps once it answers.
func (c *Cluster) Join(b Backend) error {
	id := b.ID()
	if id == "" {
		return fmt.Errorf("cluster: replica with empty ID")
	}
	c.mu.Lock()
	if _, dup := c.members[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: duplicate replica ID %q", id)
	}
	m := &member{id: id, backend: b, met: c.met.forReplica(id), lastBeat: c.clk.Now()}
	c.members[id] = m
	c.ids = append(c.ids, id)
	sort.Strings(c.ids)
	c.mu.Unlock()

	if err := c.probe(m); err != nil {
		m.up.Store(false)
		m.met.up.Set(0)
		c.rebuild()
		return fmt.Errorf("cluster: join %s: %w (joined as down)", id, err)
	}
	c.rebuild()
	return nil
}

// probe heartbeats one member and, on success, anti-entropy-syncs its
// registry and marks it up. Called on join and when a down member's
// heartbeat answers again (restart recovery).
func (c *Cluster) probe(m *member) error {
	info, err := c.heartbeatOne(m)
	if err != nil {
		return err
	}
	if err := c.syncBackend(m); err != nil {
		return err
	}
	c.mu.Lock()
	m.lastBeat = c.clk.Now()
	m.inFlight = info.InFlight
	m.models = info.Models
	m.warmBytes = info.WarmBytes
	c.mu.Unlock()
	m.up.Store(true)
	m.draining.Store(info.Draining)
	m.met.up.Set(1)
	m.met.hbAge.Set(0)
	return nil
}

// heartbeatOne calls one member's Heartbeat under the RPC timeout.
func (c *Cluster) heartbeatOne(m *member) (HeartbeatInfo, error) {
	var info HeartbeatInfo
	err := c.callWithTimeout(func(ctx context.Context) error {
		var err error
		info, err = m.backend.Heartbeat(ctx)
		return err
	})
	return info, err
}

// TickHeartbeat runs one synchronous heartbeat sweep over every member
// in sorted-ID order: refresh load reports, expire members whose last
// successful heartbeat is older than HeartbeatExpiry, and re-probe
// (anti-entropy included) members that were down but answer again.
// Start calls it on a ticker; deterministic tests call it directly
// after advancing the fake clock.
func (c *Cluster) TickHeartbeat() {
	c.mu.Lock()
	sweep := make([]*member, 0, len(c.ids))
	for _, id := range c.ids {
		sweep = append(sweep, c.members[id])
	}
	c.mu.Unlock()

	changed := false
	for _, m := range sweep {
		wasUp := m.up.Load()
		if !wasUp {
			// Down member: re-probe. Success means it restarted (or the
			// partition healed) — sync it and bring it back.
			if err := c.probe(m); err == nil {
				changed = true
			} else {
				c.mu.Lock()
				age := c.clk.Since(m.lastBeat)
				c.mu.Unlock()
				m.met.hbAge.Set(age.Seconds())
			}
			continue
		}
		info, err := c.heartbeatOne(m)
		now := c.clk.Now()
		if err == nil {
			c.mu.Lock()
			m.lastBeat = now
			m.inFlight = info.InFlight
			m.models = info.Models
			m.warmBytes = info.WarmBytes
			c.mu.Unlock()
			// Swap, not load-compare-store: a concurrent SetDraining landing
			// between a stale read and the store would have its rebuild
			// decision erased, leaving the ring out of sync with the flag.
			if prev := m.draining.Swap(info.Draining); prev != info.Draining {
				changed = true
			}
			// A concurrent markDown may have demoted the member after this
			// heartbeat answered; don't overwrite its gauge.
			if m.up.Load() {
				m.met.up.Set(1)
			}
			m.met.hbAge.Set(0)
			continue
		}
		c.mu.Lock()
		age := now.Sub(m.lastBeat)
		c.mu.Unlock()
		m.met.hbAge.Set(age.Seconds())
		if age >= c.cfg.HeartbeatExpiry {
			// CAS so an expiry racing markDown demotes (and rebuilds) once.
			if m.up.CompareAndSwap(true, false) {
				m.met.up.Set(0)
				changed = true
			}
		}
	}
	if changed {
		c.rebuild()
	}
}

// markDown demotes a member immediately (error-driven failover: a
// predict or replication call saw ErrReplicaDown) without waiting for
// heartbeat expiry.
func (c *Cluster) markDown(m *member) {
	if m.up.CompareAndSwap(true, false) {
		m.met.up.Set(0)
		c.rebuild()
	}
}

// SetDraining marks a member as draining (or not) from the coordinator
// side: it immediately leaves (or re-enters) the ring and receives no
// new routes, while in-flight work completes. Replica-initiated drains
// arrive via heartbeat instead.
func (c *Cluster) SetDraining(id string, v bool) error {
	c.mu.Lock()
	m := c.members[id]
	c.mu.Unlock()
	if m == nil {
		return fmt.Errorf("cluster: unknown replica %q", id)
	}
	if m.draining.Swap(v) != v {
		c.rebuild()
	}
	return nil
}

// rebuild recomputes the route table from the routable member set and
// swaps it in, counting vnode ownership moves into ring-moves telemetry.
func (c *Cluster) rebuild() {
	c.mu.Lock()
	ids := make([]string, 0, len(c.ids))
	for _, id := range c.ids {
		m := c.members[id]
		if m.up.Load() && !m.draining.Load() {
			ids = append(ids, id)
		}
	}
	ring := NewRing(ids, c.cfg.VirtualNodes)
	ringIDs := ring.IDs()
	members := make([]*member, len(ringIDs))
	for i, id := range ringIDs {
		members[i] = c.members[id]
	}
	// The swap stays under c.mu: two racing rebuilds could otherwise
	// publish in the wrong order and pin a stale table (a demoted member
	// kept in the ring) until the next membership change.
	old := c.table.Load()
	c.table.Store(&routeTable{ring: ring, members: members})
	c.mu.Unlock()

	if moves := Moves(old.ring, ring); moves > 0 {
		c.met.ringMoves.Add(float64(moves))
	}
}

// loadBound computes the bounded-load ceiling for the current table:
// ceil(c * (totalLoad + 1) / routableReplicas). A member at or past the
// bound stops taking new shard traffic.
func loadBound(t *routeTable, factor float64) int64 {
	n := len(t.members)
	if n == 0 {
		return math.MaxInt64
	}
	var total int64
	for _, m := range t.members {
		total += m.load.Load()
	}
	return int64(math.Ceil(factor * float64(total+1) / float64(n)))
}

// Start launches the background heartbeat sweeper on the configured
// interval. Stop ends it. Tests on a fake clock usually skip Start and
// drive TickHeartbeat directly.
func (c *Cluster) Start() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	// Captured locally: the sweeper must not read c.stop, which a later
	// Start for the next run cycle reassigns without startMu held here.
	stop := c.stop
	ticker := c.clk.NewTicker(c.cfg.HeartbeatInterval)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C():
				c.TickHeartbeat()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the heartbeat sweeper started by Start. Idempotent.
func (c *Cluster) Stop() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if !c.started {
		return
	}
	c.started = false
	close(c.stop)
	c.wg.Wait()
}

// ReplicaStatus is one member's row in Status.
type ReplicaStatus struct {
	ID             string `json:"id"`
	Up             bool   `json:"up"`
	Draining       bool   `json:"draining"`
	Load           int64  `json:"load"`
	InFlight       int    `json:"inFlight"`
	Models         int    `json:"models"`
	WarmBytes      int64  `json:"warmBytes"`
	HeartbeatAgeMs int64  `json:"heartbeatAgeMs"`
}

// StatusInfo is the cluster-wide state exposed at /cluster/status and
// consumed by the dashboard and the CI smoke check. Field order and
// sorted replicas keep its JSON encoding byte-deterministic on a fake
// clock.
type StatusInfo struct {
	Replicas     []ReplicaStatus     `json:"replicas"`
	RingMembers  []string            `json:"ringMembers"`
	VirtualNodes int                 `json:"virtualNodes"`
	Aliases      []serving.AliasInfo `json:"aliases"`
}

// Status snapshots the cluster.
func (c *Cluster) Status() StatusInfo {
	t := c.table.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	st := StatusInfo{
		RingMembers:  append([]string(nil), t.ring.IDs()...),
		VirtualNodes: c.cfg.VirtualNodes,
		Aliases:      c.canonical.Aliases(),
	}
	for _, id := range c.ids {
		m := c.members[id]
		st.Replicas = append(st.Replicas, ReplicaStatus{
			ID:             id,
			Up:             m.up.Load(),
			Draining:       m.draining.Load(),
			Load:           m.load.Load(),
			InFlight:       m.inFlight,
			Models:         m.models,
			WarmBytes:      m.warmBytes,
			HeartbeatAgeMs: now.Sub(m.lastBeat).Milliseconds(),
		})
	}
	return st
}
