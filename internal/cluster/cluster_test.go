package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestFailoverReroutesNextRequest is the acceptance check: with 3
// replicas on the fake clock, killing the shard owner reroutes the very
// next request — error-driven demotion, no heartbeat wait.
func TestFailoverReroutesNextRequest(t *testing.T) {
	tier := newTestTier(t, 3, Config{
		HeartbeatInterval: time.Second,
		RPCTimeout:        10 * time.Second,
	})
	c := tier.cluster
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}

	probs, classes, err := c.Predict(context.Background(), "demo", testInstances)
	if err != nil {
		t.Fatalf("warm predict: %v", err)
	}
	if len(probs) != 2 || len(classes) != 2 {
		t.Fatalf("got %d probs / %d classes, want 2/2", len(probs), len(classes))
	}

	owner := c.Owner("demo")
	if owner == "" {
		t.Fatal("no shard owner")
	}
	tier.replica(t, owner).Kill()

	// Next request, same virtual instant: must reroute, not error.
	probs2, _, err := c.Predict(context.Background(), "demo", testInstances)
	if err != nil {
		t.Fatalf("predict after killing owner %s: %v", owner, err)
	}
	for i := range probs {
		for j := range probs[i] {
			if probs[i][j] != probs2[i][j] {
				t.Fatalf("rerouted replica disagrees: %v vs %v (replicated registries diverged)", probs[i], probs2[i])
			}
		}
	}
	if newOwner := c.Owner("demo"); newOwner == owner || newOwner == "" {
		t.Fatalf("ring still names %q after demotion (new owner %q)", owner, newOwner)
	}

	st := c.Status()
	upCount := 0
	for _, r := range st.Replicas {
		if r.Up {
			upCount++
		}
	}
	if upCount != 2 || len(st.RingMembers) != 2 {
		t.Fatalf("after kill: %d up, ring %v", upCount, st.RingMembers)
	}
}

// TestHeartbeatExpiryAndRestartRecovery drives the sweep path: a killed
// replica expires after HeartbeatExpiry of silence, and a restarted one
// (empty registry) is re-synced by anti-entropy before rejoining the
// ring.
func TestHeartbeatExpiryAndRestartRecovery(t *testing.T) {
	tier := newTestTier(t, 3, Config{
		HeartbeatInterval: time.Second,
		HeartbeatExpiry:   3 * time.Second,
		RPCTimeout:        30 * time.Second,
	})
	c := tier.cluster
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.PromoteAll("demo", 2); err != nil {
		t.Fatal(err)
	}

	victim := tier.replica(t, c.Owner("demo"))
	victim.Kill()

	// Two sweeps inside the expiry window: the member is silent but not
	// yet expired (no flapping on one missed beat).
	for i := 0; i < 2; i++ {
		tier.clk.Advance(time.Second)
		c.TickHeartbeat()
	}
	if got := len(c.Status().RingMembers); got != 3 {
		t.Fatalf("ring shrank to %d members before expiry", got)
	}
	// Third silent second reaches HeartbeatExpiry.
	tier.clk.Advance(time.Second)
	c.TickHeartbeat()
	st := c.Status()
	if len(st.RingMembers) != 2 {
		t.Fatalf("ring %v after expiry, want 2 members", st.RingMembers)
	}
	for _, r := range st.Replicas {
		if r.ID == victim.ID() && r.Up {
			t.Fatalf("expired member still up: %+v", r)
		}
	}

	// Restart: empty registry. The next sweep must re-probe, replay both
	// versions in canonical order, realign the promoted pointer, and
	// readmit it to the ring.
	victim.Restart()
	if got, _ := victim.Aliases(context.Background()); len(got) != 0 {
		t.Fatalf("restarted replica kept %d aliases, want empty", len(got))
	}
	tier.clk.Advance(time.Second)
	c.TickHeartbeat()
	if got := len(c.Status().RingMembers); got != 3 {
		t.Fatalf("ring has %d members after restart recovery, want 3", got)
	}
	aliases, err := victim.Aliases(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(aliases) != 1 || aliases[0].Name != "demo" {
		t.Fatalf("anti-entropy left aliases %+v", aliases)
	}
	want := c.Canonical().Aliases()[0]
	got := aliases[0]
	if got.Current != want.Current || len(got.Versions) != len(want.Versions) {
		t.Fatalf("replica alias %+v, canonical %+v", got, want)
	}
	for i := range want.Versions {
		if got.Versions[i] != want.Versions[i] {
			t.Fatalf("version %d: replica %s, canonical %s", i+1, got.Versions[i], want.Versions[i])
		}
	}
}

// TestDrainingStopsNewRoutes covers the coordinated-restart flow: a
// draining member leaves the ring (no new routes) but stays a 2PC
// participant, and undraining readmits it.
func TestDrainingStopsNewRoutes(t *testing.T) {
	tier := newTestTier(t, 3, Config{RPCTimeout: 10 * time.Second})
	c := tier.cluster
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	owner := c.Owner("demo")
	if err := c.SetDraining(owner, true); err != nil {
		t.Fatal(err)
	}
	if got := c.Owner("demo"); got == owner {
		t.Fatalf("draining member %s still owns the shard", owner)
	}
	if _, _, err := c.Predict(context.Background(), "demo", testInstances); err != nil {
		t.Fatalf("predict while draining: %v", err)
	}
	// Promotes still reach the draining member.
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.PromoteAll("demo", 2); err != nil {
		t.Fatal(err)
	}
	aliases, err := tier.replica(t, owner).Aliases(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if aliases[0].Current != 2 {
		t.Fatalf("draining member missed the promote: %+v", aliases[0])
	}
	if err := c.SetDraining(owner, false); err != nil {
		t.Fatal(err)
	}
	if got := c.Owner("demo"); got != owner {
		t.Fatalf("undrained member did not regain its shard: owner %s, want %s", got, owner)
	}
	if err := c.SetDraining("nope", true); err == nil {
		t.Fatal("SetDraining on unknown replica succeeded")
	}
}

// TestAllReplicasDown exhausts the tier.
func TestAllReplicasDown(t *testing.T) {
	tier := newTestTier(t, 2, Config{RPCTimeout: 10 * time.Second})
	c := tier.cluster
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	for _, rp := range tier.replicas {
		rp.Kill()
	}
	_, _, err := c.Predict(context.Background(), "demo", testInstances)
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("predict on dead tier: %v, want ErrNoReplicas", err)
	}
}

// TestClusterMetricsFamilies asserts the satellite metric families exist
// with replica-bounded labels and sane values.
func TestClusterMetricsFamilies(t *testing.T) {
	tel := telemetry.NewRegistry()
	tier := newTestTier(t, 3, Config{Telemetry: tel, RPCTimeout: 10 * time.Second})
	c := tier.cluster
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	tier.replica(t, c.Owner("demo")).Kill()
	if _, _, err := c.Predict(context.Background(), "demo", testInstances); err != nil {
		t.Fatal(err)
	}

	found := make(map[string]int)
	upByReplica := make(map[string]float64)
	var replBytes, ringMoves float64
	for _, fam := range tel.Gather() {
		found[fam.Name] = len(fam.Series)
		switch fam.Name {
		case telemetry.FamClusterReplicaUp:
			for _, s := range fam.Series {
				upByReplica[s.Labels[0].Value] = s.Value
			}
		case telemetry.FamClusterReplicationBytes:
			for _, s := range fam.Series {
				replBytes += s.Value
			}
		case telemetry.FamClusterRingMoves:
			ringMoves = fam.Series[0].Value
		}
	}
	for _, name := range []string{
		telemetry.FamClusterReplicaUp,
		telemetry.FamClusterRingMoves,
		telemetry.FamClusterReplicationBytes,
		telemetry.FamClusterHeartbeatAge,
	} {
		if found[name] == 0 {
			t.Fatalf("family %s missing from Gather (have %v)", name, found)
		}
	}
	if got := found[telemetry.FamClusterReplicaUp]; got != 3 {
		t.Fatalf("replica_up has %d series, want 3 (bounded by replica set)", got)
	}
	var ups float64
	for _, v := range upByReplica {
		ups += v
	}
	if ups != 2 {
		t.Fatalf("replica_up sums to %v after one kill, want 2 (%v)", ups, upByReplica)
	}
	if replBytes <= 0 {
		t.Fatalf("replication bytes %v, want > 0 after register fan-out", replBytes)
	}
	if ringMoves <= 0 {
		t.Fatalf("ring moves %v, want > 0 after demotion rebuild", ringMoves)
	}
}

// TestStatusJSONDeterministic guards the dashboard/CI artifact shape:
// same seed, same virtual timeline, byte-identical status JSON.
func TestStatusJSONDeterministic(t *testing.T) {
	build := func() []byte {
		tier := newTestTier(t, 3, Config{
			HeartbeatInterval: time.Second,
			RPCTimeout:        10 * time.Second,
		})
		c := tier.cluster
		if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
			t.Fatal(err)
		}
		tier.clk.Advance(time.Second)
		c.TickHeartbeat()
		tier.replica(t, c.Owner("demo")).Kill()
		if _, _, err := c.Predict(context.Background(), "demo", testInstances); err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(c.Status())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatalf("status JSON differs across identical seeded runs:\n%s\n%s", a, b)
	}
}
