package cluster

import (
	"context"
	"fmt"

	"repro/internal/ml"
	"repro/internal/serving"
)

// This file is the cluster's control plane: registration with eager
// replication, anti-entropy reconciliation, and the two-phase
// promote/rollback that keeps alias flips atomic across replicas.
//
// Replication strategy: every Register flows through the coordinator's
// canonical registry, which owns version numbering. Replicas hold a
// per-alias version log that must be a prefix of the canonical log;
// replication and anti-entropy only ever append the missing suffix, so
// re-running either is idempotent (content addressing dedupes blob
// storage, prefix checking dedupes version numbers). A replica whose log
// is not a canonical prefix has diverged and is kept out of the ring.

// callWithTimeout runs fn under the cluster's RPC timeout, measured on
// the injected clock so timeouts are exact under test. On timeout the
// call's context is canceled and the error wraps ErrReplicaDown (an
// unresponsive transport and a dead one route the same way).
func (c *Cluster) callWithTimeout(fn func(ctx context.Context) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fn(ctx) }()
	select {
	case err := <-done:
		return err
	case <-c.clk.After(c.cfg.RPCTimeout):
		cancel()
		return fmt.Errorf("cluster: rpc timed out after %v: %w", c.cfg.RPCTimeout, ErrReplicaDown)
	}
}

// Register serializes model into the canonical registry as the next
// version of name and eagerly replicates it to every up replica.
// Replication failures demote the replica (anti-entropy heals it on
// rejoin) but never fail the registration: the canonical registry is
// the source of truth.
func (c *Cluster) Register(name string, model ml.Classifier) (serving.Ref, error) {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	ref, err := c.canonical.Register(name, model)
	if err != nil {
		return ref, err
	}
	c.replicateAliasLocked(name)
	return ref, nil
}

// RegisterBytes is Register for an already-serialized envelope.
func (c *Cluster) RegisterBytes(name, algo string, blob []byte) (serving.Ref, error) {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	ref, err := c.canonical.RegisterBytes(name, algo, blob)
	if err != nil {
		return ref, err
	}
	c.replicateAliasLocked(name)
	return ref, nil
}

// replicateAliasLocked pushes name's missing version suffix to every up
// member. Requires coordMu.
func (c *Cluster) replicateAliasLocked(name string) {
	want, ok := c.canonicalAlias(name)
	if !ok {
		return
	}
	for _, m := range c.upMembers() {
		if err := c.syncMemberAlias(m, want); err != nil {
			c.markDown(m)
		}
	}
}

// canonicalAlias finds one alias in the canonical registry.
func (c *Cluster) canonicalAlias(name string) (serving.AliasInfo, bool) {
	for _, a := range c.canonical.Aliases() {
		if a.Name == name {
			return a, true
		}
	}
	return serving.AliasInfo{}, false
}

// upMembers snapshots the up members in sorted-ID order (the
// deterministic iteration order every control-plane fan-out uses).
// Draining members are included: they still serve in-flight work and
// may undrain, so their registries must not fall behind.
func (c *Cluster) upMembers() []*member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*member, 0, len(c.ids))
	for _, id := range c.ids {
		if m := c.members[id]; m.up.Load() {
			out = append(out, m)
		}
	}
	return out
}

// syncMemberAlias appends want's missing version suffix to one replica,
// after verifying the replica's existing log is a canonical prefix.
func (c *Cluster) syncMemberAlias(m *member, want serving.AliasInfo) error {
	var have []serving.AliasInfo
	err := c.callWithTimeout(func(ctx context.Context) error {
		var err error
		have, err = m.backend.Aliases(ctx)
		return err
	})
	if err != nil {
		return err
	}
	var haveVersions []string
	for _, a := range have {
		if a.Name == want.Name {
			haveVersions = a.Versions
			break
		}
	}
	if len(haveVersions) > len(want.Versions) {
		return fmt.Errorf("cluster: replica %s has %d versions of %q, canonical has %d — diverged",
			m.id, len(haveVersions), want.Name, len(want.Versions))
	}
	for i, id := range haveVersions {
		if id != want.Versions[i] {
			return fmt.Errorf("cluster: replica %s version %s@%d is %s, canonical %s — diverged",
				m.id, want.Name, i+1, id, want.Versions[i])
		}
	}
	for v := len(haveVersions) + 1; v <= len(want.Versions); v++ {
		blob, algo, err := c.canonical.Blob(want.Versions[v-1])
		if err != nil {
			return err
		}
		err = c.callWithTimeout(func(ctx context.Context) error {
			got, err := m.backend.Push(ctx, want.Name, algo, blob)
			if err != nil {
				return err
			}
			if got.Version != v || got.ID != want.Versions[v-1] {
				return fmt.Errorf("cluster: replica %s pushed %s as %s@%d (%s), canonical expects @%d (%s)",
					m.id, want.Name, got.Name, got.Version, got.ID, v, want.Versions[v-1])
			}
			return nil
		})
		if err != nil {
			return err
		}
		m.met.replBytes.Add(float64(len(blob)))
	}
	return nil
}

// syncBackend is the full anti-entropy pass run on replica join and
// restart recovery: every canonical alias is prefix-checked and its
// missing suffix replayed, then the replica's promoted pointer is
// aligned with the canonical one via a single-replica prepare/commit.
func (c *Cluster) syncBackend(m *member) error {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	for _, want := range c.canonical.Aliases() {
		if err := c.syncMemberAlias(m, want); err != nil {
			return err
		}
		if want.Current == 0 {
			continue
		}
		// Align the promoted pointer. Prepare validates the content id,
		// so a replica that somehow holds different bytes at this version
		// is caught here rather than served.
		txn := c.nextTxn(want.Name)
		id := want.Versions[want.Current-1]
		err := c.callWithTimeout(func(ctx context.Context) error {
			return m.backend.Prepare(ctx, txn, want.Name, want.Current, id, c.cfg.PrepareTTL)
		})
		if err != nil {
			return err
		}
		err = c.callWithTimeout(func(ctx context.Context) error {
			return m.backend.Commit(ctx, txn)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// nextTxn mints a deterministic transaction ID (no wall clock, no
// randomness: same seeded run, same IDs).
func (c *Cluster) nextTxn(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txnSeq++
	return fmt.Sprintf("txn-%d-%s", c.txnSeq, name)
}

// PromoteAll atomically flips alias name to version on every up replica
// and then the canonical registry, via two-phase commit: prepare on all
// (validating version and content id), then commit on all. Any prepare
// failure or timeout aborts everywhere and leaves the alias at the old
// version on every replica. A commit failure after a successful prepare
// round demotes that replica (presumed commit; anti-entropy realigns it
// on rejoin) rather than blocking the flip.
func (c *Cluster) PromoteAll(name string, version int) error {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	id, err := c.canonical.Resolve(fmt.Sprintf("%s@%d", name, version))
	if err != nil {
		return err
	}
	if err := c.twoPhaseLocked(name, version, id); err != nil {
		return err
	}
	return c.canonical.Promote(name, version)
}

// RollbackAll atomically restores alias name's previously promoted
// version cluster-wide, using the same two-phase flip, and returns the
// restored ref.
func (c *Cluster) RollbackAll(name string) (serving.Ref, error) {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	ref, err := c.canonical.PeekRollback(name)
	if err != nil {
		return serving.Ref{}, err
	}
	if err := c.twoPhaseLocked(name, ref.Version, ref.ID); err != nil {
		return serving.Ref{}, err
	}
	return c.canonical.Rollback(name)
}

// twoPhaseLocked runs prepare-on-all then commit-or-abort over the up
// member set. Requires coordMu.
func (c *Cluster) twoPhaseLocked(name string, version int, id string) error {
	members := c.upMembers()
	txn := c.nextTxn(name)

	prepared := make([]*member, 0, len(members))
	for _, m := range members {
		err := c.callWithTimeout(func(ctx context.Context) error {
			return m.backend.Prepare(ctx, txn, name, version, id, c.cfg.PrepareTTL)
		})
		if err != nil {
			c.abortAll(prepared, txn)
			return fmt.Errorf("cluster: promote %s@%d aborted: replica %s prepare: %w",
				name, version, m.id, err)
		}
		prepared = append(prepared, m)
	}
	for _, m := range prepared {
		err := c.callWithTimeout(func(ctx context.Context) error {
			return m.backend.Commit(ctx, txn)
		})
		if err != nil {
			// Presumed commit: the flip proceeds; the straggler leaves the
			// ring and anti-entropy realigns its alias pointer on rejoin.
			c.markDown(m)
		}
	}
	return nil
}

// abortAll broadcasts a best-effort abort. Unknown txns are a no-op on
// the replica side, so over-aborting is safe.
func (c *Cluster) abortAll(prepared []*member, txn string) {
	for _, m := range prepared {
		err := c.callWithTimeout(func(ctx context.Context) error {
			return m.backend.Abort(ctx, txn)
		})
		if err != nil {
			// The replica will drop the stale flip when its TTL expires;
			// nothing can commit it (the txn is never reused).
			continue
		}
	}
}
