package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/serving"
)

// testEpoch anchors every fake clock so virtual timelines (and the
// byte-identical scorecard assertions) are reproducible.
var testEpoch = time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC)

// sepTable builds a small linearly separable two-class table.
func sepTable(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		x := []float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}
		if err := tb.Append(x, y); err != nil {
			panic(err)
		}
	}
	return tb
}

// trainedModel fits a logistic model; distinct seeds give distinct
// content ids.
func trainedModel(t *testing.T, seed int64) ml.Classifier {
	t.Helper()
	cfg := ml.DefaultLogRegConfig()
	cfg.Seed = seed
	m := ml.NewLogReg(cfg)
	if err := m.Fit(sepTable(seed, 120)); err != nil {
		t.Fatal(err)
	}
	return m
}

// testTier is a deterministic 3-replica in-process cluster on one fake
// clock: MaxBatch 1 so predicts flush without advancing time.
type testTier struct {
	clk      *clock.Fake
	cluster  *Cluster
	replicas []*Replica
}

func newTestTier(t *testing.T, n int, cfg Config) *testTier {
	t.Helper()
	fake := clock.NewFake(testEpoch)
	cfg.Clock = fake
	c := New(cfg)
	tier := &testTier{clk: fake, cluster: c}
	for i := 0; i < n; i++ {
		rp := NewReplica(fmt.Sprintf("replica-%d", i), serving.Config{MaxBatch: 1, Clock: fake})
		tier.replicas = append(tier.replicas, rp)
		if err := c.Join(rp); err != nil {
			t.Fatalf("join %s: %v", rp.ID(), err)
		}
	}
	t.Cleanup(func() {
		for _, rp := range tier.replicas {
			rp.Close()
		}
	})
	return tier
}

// replica finds a member replica by ID.
func (tier *testTier) replica(t *testing.T, id string) *Replica {
	t.Helper()
	for _, rp := range tier.replicas {
		if rp.ID() == id {
			return rp
		}
	}
	t.Fatalf("no replica %q", id)
	return nil
}

// positive instance for the sepTable model (class 1 side).
var testInstances = [][]float64{{2.0, 0.0}, {-2.0, 0.0}}
