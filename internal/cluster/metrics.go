package cluster

import (
	"repro/internal/telemetry"
)

// metrics bundles the cluster's telemetry handles. All per-replica
// series are bound once per member at Join time — the replica set is
// operator-configured and fixed, so cardinality is bounded by topology,
// not traffic.
type metrics struct {
	ringMoves *telemetry.Counter
	reroutes  *telemetry.Counter

	up        *telemetry.GaugeVec
	hbAge     *telemetry.GaugeVec
	replBytes *telemetry.CounterVec
}

// replicaMetrics is one member's pre-bound handles.
type replicaMetrics struct {
	up        *telemetry.Gauge
	hbAge     *telemetry.Gauge
	replBytes *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		ringMoves: reg.Counter(telemetry.FamClusterRingMoves,
			"Vnode ownership moves across consistent-hash ring rebuilds.").With(),
		reroutes: reg.Counter("spatial_cluster_reroutes_total",
			"Requests routed away from their shard owner (saturated, draining, or down).").With(),
		up: reg.Gauge(telemetry.FamClusterReplicaUp,
			"1 while the replica's heartbeat is fresh, 0 when expired or killed.", "replica"),
		hbAge: reg.Gauge(telemetry.FamClusterHeartbeatAge,
			"Seconds since the replica's last successful heartbeat.", "replica"),
		replBytes: reg.Counter(telemetry.FamClusterReplicationBytes,
			"Model-envelope bytes pushed to the replica (promote replication + anti-entropy).", "replica"),
	}
}

// forReplica binds the per-replica series for one member. Called once
// per Join: replica IDs come from the operator's topology, never from
// request input, so the label set stays bounded.
func (m *metrics) forReplica(id string) replicaMetrics {
	return replicaMetrics{
		//lint:ignore telemetry-cardinality replica IDs are fixed at topology construction (one Join per configured member), not request-derived
		up: m.up.With(id),
		//lint:ignore telemetry-cardinality replica IDs are fixed at topology construction (one Join per configured member), not request-derived
		hbAge: m.hbAge.With(id),
		//lint:ignore telemetry-cardinality replica IDs are fixed at topology construction (one Join per configured member), not request-derived
		replBytes: m.replBytes.With(id),
	}
}
