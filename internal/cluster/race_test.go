package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/serving"
)

// TestConcurrentPromoteAndPredict hammers the cluster with predict
// traffic while the control plane promotes and rolls back in a loop and
// the heartbeat sweeper runs — the -race target for the whole tier.
// Every predict must land on version 1 or version 2 semantics (never an
// error other than overload shed), and the tier must end consistent.
func TestConcurrentPromoteAndPredict(t *testing.T) {
	c := New(Config{
		HeartbeatInterval: time.Millisecond,
		RPCTimeout:        10 * time.Second,
	})
	replicas := make([]*Replica, 3)
	for i := range replicas {
		replicas[i] = NewReplica(fmt.Sprintf("replica-%d", i), serving.Config{MaxBatch: 4})
		if err := c.Join(replicas[i]); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, rp := range replicas {
			rp.Close()
		}
	}()
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	const (
		predictors = 8
		perWorker  = 40
		flips      = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, predictors*perWorker+flips)
	for w := 0; w < predictors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, _, err := c.Predict(context.Background(), "demo", testInstances)
				var over *serving.OverloadedError
				if err != nil && !errors.As(err, &over) {
					errCh <- fmt.Errorf("predict: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		version := 2
		for i := 0; i < flips; i++ {
			if err := c.PromoteAll("demo", version); err != nil {
				errCh <- fmt.Errorf("promote v%d: %w", version, err)
				return
			}
			version = 3 - version // 2 <-> 1
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Convergence: canonical and every replica agree on the final
	// promoted version.
	want := c.Canonical().Aliases()[0].Current
	for _, rp := range replicas {
		aliases, err := rp.Aliases(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if aliases[0].Current != want {
			t.Fatalf("replica %s settled at version %d, canonical %d", rp.ID(), aliases[0].Current, want)
		}
	}
}
