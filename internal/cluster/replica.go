package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/serving"
)

// Replica hosts one serving runtime (registry, micro-batcher, worker
// pools, admission control) as a cluster member. It implements Backend
// directly for in-process topologies; Handler (replica_http.go) exposes
// the same surface over HTTP for multi-process ones.
//
// Kill and Restart model a process crash for fault injection and the
// scenario engine's replica-kill action: a killed replica fails every
// backend call with ErrReplicaDown and drops its in-memory registry, so
// a restart comes back empty and exercises the coordinator's
// anti-entropy resync for real.
type Replica struct {
	id  string
	clk clock.Clock
	cfg serving.Config

	mu       sync.Mutex
	rt       *serving.Runtime
	down     bool
	draining bool
	staged   map[string]stagedFlip
}

// stagedFlip is one prepared-but-uncommitted alias flip.
type stagedFlip struct {
	name     string
	version  int
	id       string
	deadline time.Time
}

// NewReplica builds a replica with the given stable ID over a fresh
// serving runtime. cfg.Clock doubles as the replica's clock (prepare
// TTLs, heartbeat self-reports); clock.Real() when nil.
func NewReplica(id string, cfg serving.Config) *Replica {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
		cfg.Clock = clk
	}
	return &Replica{
		id:     id,
		clk:    clk,
		cfg:    cfg,
		rt:     serving.New(cfg),
		staged: make(map[string]stagedFlip),
	}
}

// ID returns the replica's stable identifier.
func (rp *Replica) ID() string { return rp.id }

// runtime returns the live runtime, or ErrReplicaDown when killed.
func (rp *Replica) runtime() (*serving.Runtime, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.down {
		return nil, fmt.Errorf("replica %s: %w", rp.id, ErrReplicaDown)
	}
	return rp.rt, nil
}

// Kill simulates a process crash: every subsequent backend call fails
// with ErrReplicaDown, in-flight predictions fail with the runtime's
// closed error, and the in-memory registry (with any staged flips) is
// gone. Idempotent.
func (rp *Replica) Kill() {
	rp.mu.Lock()
	if rp.down {
		rp.mu.Unlock()
		return
	}
	rp.down = true
	rt := rp.rt
	rp.rt = nil
	rp.staged = make(map[string]stagedFlip)
	rp.mu.Unlock()
	rt.Close()
}

// Restart brings a killed replica back with a fresh, empty runtime — the
// crash-recovery shape anti-entropy reconciliation is built for. A no-op
// on a live replica.
func (rp *Replica) Restart() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if !rp.down {
		return
	}
	rp.down = false
	rp.draining = false
	rp.rt = serving.New(rp.cfg)
}

// SetDraining marks the replica as draining: it keeps serving what it
// has, but its heartbeat tells the router to stop new routes so a
// coordinated restart never errors in-flight requests.
func (rp *Replica) SetDraining(v bool) {
	rp.mu.Lock()
	rp.draining = v
	rp.mu.Unlock()
}

// Runtime exposes the live serving runtime (nil when killed) so launch
// code can register models or read metrics directly.
func (rp *Replica) Runtime() *serving.Runtime {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.rt
}

// Close shuts the underlying runtime down. Unlike Kill it leaves the
// replica marked up; use it only at teardown.
func (rp *Replica) Close() {
	rp.mu.Lock()
	rt := rp.rt
	rp.mu.Unlock()
	if rt != nil {
		rt.Close()
	}
}

// Predict implements Backend over the local runtime.
func (rp *Replica) Predict(ctx context.Context, ref string, instances [][]float64) ([][]float64, []int, error) {
	rt, err := rp.runtime()
	if err != nil {
		return nil, nil, err
	}
	return rt.Predict(ctx, ref, instances)
}

// Heartbeat implements Backend: the replica's liveness and load
// self-report.
func (rp *Replica) Heartbeat(ctx context.Context) (HeartbeatInfo, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.down {
		return HeartbeatInfo{}, fmt.Errorf("replica %s: %w", rp.id, ErrReplicaDown)
	}
	reg := rp.rt.Registry()
	return HeartbeatInfo{
		ID:        rp.id,
		InFlight:  rp.rt.InFlight(),
		Models:    reg.Len(),
		WarmBytes: reg.WarmBytes(),
		Draining:  rp.draining,
	}, nil
}

// Push implements Backend: store a replicated envelope as the next
// version of name. Content addressing dedupes re-pushes, so replaying a
// replication stream is idempotent.
func (rp *Replica) Push(ctx context.Context, name, algo string, blob []byte) (serving.Ref, error) {
	rt, err := rp.runtime()
	if err != nil {
		return serving.Ref{}, err
	}
	return rt.Registry().RegisterBytes(name, algo, blob)
}

// Aliases implements Backend.
func (rp *Replica) Aliases(ctx context.Context) ([]serving.AliasInfo, error) {
	rt, err := rp.runtime()
	if err != nil {
		return nil, err
	}
	return rt.Registry().Aliases(), nil
}

// Prepare implements Backend: validate and stage the alias flip
// name -> version under txn. After success, Commit(txn) is guaranteed to
// apply until ttl expires on the replica's clock; the content-id check
// guards against a replica whose version numbering diverged from the
// coordinator's canonical registry.
func (rp *Replica) Prepare(ctx context.Context, txn, name string, version int, id string, ttl time.Duration) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.down {
		return fmt.Errorf("replica %s: %w", rp.id, ErrReplicaDown)
	}
	if txn == "" {
		return fmt.Errorf("replica %s: empty txn", rp.id)
	}
	got, err := rp.rt.Registry().Resolve(fmt.Sprintf("%s@%d", name, version))
	if err != nil {
		return fmt.Errorf("replica %s: prepare %s@%d: %w", rp.id, name, version, err)
	}
	if got != id {
		return fmt.Errorf("replica %s: prepare %s@%d: content id %s, coordinator expects %s",
			rp.id, name, version, got, id)
	}
	rp.staged[txn] = stagedFlip{name: name, version: version, id: id, deadline: rp.clk.Now().Add(ttl)}
	return nil
}

// Commit implements Backend: apply a staged flip. Committing an unknown
// or expired txn fails — the coordinator treats that as divergence and
// heals it via anti-entropy.
func (rp *Replica) Commit(ctx context.Context, txn string) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.down {
		return fmt.Errorf("replica %s: %w", rp.id, ErrReplicaDown)
	}
	st, ok := rp.staged[txn]
	if !ok {
		return fmt.Errorf("replica %s: commit unknown txn %s", rp.id, txn)
	}
	delete(rp.staged, txn)
	if rp.clk.Now().After(st.deadline) {
		return fmt.Errorf("replica %s: txn %s expired before commit", rp.id, txn)
	}
	return rp.rt.Registry().Promote(st.name, st.version)
}

// Abort implements Backend: discard a staged flip. Unknown txns are a
// no-op so aborts are safe to broadcast.
func (rp *Replica) Abort(ctx context.Context, txn string) error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.down {
		return fmt.Errorf("replica %s: %w", rp.id, ErrReplicaDown)
	}
	delete(rp.staged, txn)
	return nil
}
