package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serving"
)

// The replica's wire boundary. Replica.Handler serves the Backend
// surface over HTTP; HTTPBackend is the matching client, so a topology
// can mix in-process replicas (tests, cmd/spatial-cluster) and remote
// ones (one process per replica) behind the same Backend interface.
//
// Typed serving errors survive the boundary through the `kind` field of
// the error envelope: an overload shed on the replica reconstructs as a
// *serving.OverloadedError at the coordinator, an unknown reference as
// serving.ErrNotFound, so the router and HTTP error mapping behave
// identically in both modes.

// replicaError is the wire error envelope.
type replicaError struct {
	Error        string `json:"error"`
	Kind         string `json:"kind,omitempty"` // "overloaded" | "notfound" | "down" | ""
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

// wire shapes for the backend methods.
type wirePredictReq struct {
	Ref       string      `json:"ref"`
	Instances [][]float64 `json:"instances"`
}

type wirePredictResp struct {
	Probs   [][]float64 `json:"probs"`
	Classes []int       `json:"classes"`
}

type wirePushReq struct {
	Name string `json:"name"`
	Algo string `json:"algo"`
	Blob []byte `json:"blob"` // base64 via encoding/json
}

type wirePrepareReq struct {
	Txn     string `json:"txn"`
	Name    string `json:"name"`
	Version int    `json:"version"`
	ID      string `json:"id"`
	TTLMs   int64  `json:"ttlMs"`
}

type wireTxnReq struct {
	Txn string `json:"txn"`
}

// Handler exposes the replica's Backend surface over HTTP under
// /replica/*, plus /healthz and the serving runtime's /metrics when its
// telemetry registry is wanted elsewhere.
func (rp *Replica) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replica/heartbeat", rp.handleHeartbeat)
	mux.HandleFunc("POST /replica/predict", rp.handlePredict)
	mux.HandleFunc("POST /replica/push", rp.handlePush)
	mux.HandleFunc("GET /replica/aliases", rp.handleAliases)
	mux.HandleFunc("POST /replica/prepare", rp.handlePrepare)
	mux.HandleFunc("POST /replica/commit", rp.handleCommit)
	mux.HandleFunc("POST /replica/abort", rp.handleAbort)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "replica": rp.id})
	})
	return mux
}

// writeReplicaError maps backend errors onto the wire envelope. A killed
// replica behind a still-running HTTP server answers 503/kind=down so
// the client backend converts it back to ErrReplicaDown.
func writeReplicaError(w http.ResponseWriter, err error) {
	var over *serving.OverloadedError
	switch {
	case errors.As(err, &over):
		w.Header().Set("Retry-After", retryAfterSeconds(over.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, replicaError{
			Error: err.Error(), Kind: "overloaded", RetryAfterMs: over.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, serving.ErrNotFound):
		writeJSON(w, http.StatusNotFound, replicaError{Error: err.Error(), Kind: "notfound"})
	case errors.Is(err, ErrReplicaDown), errors.Is(err, serving.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, replicaError{Error: err.Error(), Kind: "down"})
	default:
		writeJSON(w, http.StatusConflict, replicaError{Error: err.Error()})
	}
}

func (rp *Replica) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	info, err := rp.Heartbeat(r.Context())
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (rp *Replica) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req wirePredictReq
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	probs, classes, err := rp.Predict(r.Context(), req.Ref, req.Instances)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wirePredictResp{Probs: probs, Classes: classes})
}

func (rp *Replica) handlePush(w http.ResponseWriter, r *http.Request) {
	var req wirePushReq
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ref, err := rp.Push(r.Context(), req.Name, req.Algo, req.Blob)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ref)
}

func (rp *Replica) handleAliases(w http.ResponseWriter, r *http.Request) {
	aliases, err := rp.Aliases(r.Context())
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, aliases)
}

func (rp *Replica) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req wirePrepareReq
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	err := rp.Prepare(r.Context(), req.Txn, req.Name, req.Version, req.ID,
		time.Duration(req.TTLMs)*time.Millisecond)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"txn": req.Txn, "state": "prepared"})
}

func (rp *Replica) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req wireTxnReq
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := rp.Commit(r.Context(), req.Txn); err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"txn": req.Txn, "state": "committed"})
}

func (rp *Replica) handleAbort(w http.ResponseWriter, r *http.Request) {
	var req wireTxnReq
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := rp.Abort(r.Context(), req.Txn); err != nil {
		writeReplicaError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"txn": req.Txn, "state": "aborted"})
}

// HTTPBackend implements Backend against a remote replica's Handler.
// Transport failures — refused connections, resets, a dead process —
// map to ErrReplicaDown so the router's failover treats a vanished
// replica exactly like a killed in-process one.
type HTTPBackend struct {
	id     string
	base   string
	client *http.Client
}

// NewHTTPBackend builds a backend for the replica with the given stable
// ID served at baseURL. client may be nil; a dedicated client with a
// sane timeout is used (never http.DefaultClient, which has none).
func NewHTTPBackend(id, baseURL string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPBackend{id: id, base: baseURL, client: client}
}

// ID implements Backend.
func (b *HTTPBackend) ID() string { return b.id }

// do runs one round trip and decodes the response into out (when
// non-nil), converting error envelopes back into typed errors.
func (b *HTTPBackend) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: marshal %s: %w", path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, body)
	if err != nil {
		return fmt.Errorf("cluster: build %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		// Transport-level failure: the process is gone or unreachable.
		return fmt.Errorf("replica %s: %s: %v: %w", b.id, path, err, ErrReplicaDown)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			return
		}
	}()
	if resp.StatusCode == http.StatusOK {
		if out == nil {
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	var envelope replicaError
	if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr != nil || envelope.Error == "" {
		return fmt.Errorf("replica %s: %s: http %d", b.id, path, resp.StatusCode)
	}
	switch envelope.Kind {
	case "overloaded":
		return &serving.OverloadedError{
			Ref:        path,
			RetryAfter: time.Duration(envelope.RetryAfterMs) * time.Millisecond,
		}
	case "notfound":
		return fmt.Errorf("replica %s: %s: %w", b.id, envelope.Error, serving.ErrNotFound)
	case "down":
		return fmt.Errorf("replica %s: %s: %w", b.id, envelope.Error, ErrReplicaDown)
	default:
		return fmt.Errorf("replica %s: %s", b.id, envelope.Error)
	}
}

// Predict implements Backend.
func (b *HTTPBackend) Predict(ctx context.Context, ref string, instances [][]float64) ([][]float64, []int, error) {
	var resp wirePredictResp
	err := b.do(ctx, http.MethodPost, "/replica/predict", wirePredictReq{Ref: ref, Instances: instances}, &resp)
	if err != nil {
		// Give the reconstructed overload error its real model ref.
		var over *serving.OverloadedError
		if errors.As(err, &over) {
			over.Ref = ref
		}
		return nil, nil, err
	}
	return resp.Probs, resp.Classes, nil
}

// Heartbeat implements Backend.
func (b *HTTPBackend) Heartbeat(ctx context.Context) (HeartbeatInfo, error) {
	var info HeartbeatInfo
	err := b.do(ctx, http.MethodGet, "/replica/heartbeat", nil, &info)
	return info, err
}

// Push implements Backend.
func (b *HTTPBackend) Push(ctx context.Context, name, algo string, blob []byte) (serving.Ref, error) {
	var ref serving.Ref
	err := b.do(ctx, http.MethodPost, "/replica/push", wirePushReq{Name: name, Algo: algo, Blob: blob}, &ref)
	return ref, err
}

// Aliases implements Backend.
func (b *HTTPBackend) Aliases(ctx context.Context) ([]serving.AliasInfo, error) {
	var out []serving.AliasInfo
	err := b.do(ctx, http.MethodGet, "/replica/aliases", nil, &out)
	return out, err
}

// Prepare implements Backend.
func (b *HTTPBackend) Prepare(ctx context.Context, txn, name string, version int, id string, ttl time.Duration) error {
	return b.do(ctx, http.MethodPost, "/replica/prepare", wirePrepareReq{
		Txn: txn, Name: name, Version: version, ID: id, TTLMs: ttl.Milliseconds(),
	}, nil)
}

// Commit implements Backend.
func (b *HTTPBackend) Commit(ctx context.Context, txn string) error {
	return b.do(ctx, http.MethodPost, "/replica/commit", wireTxnReq{Txn: txn}, nil)
}

// Abort implements Backend.
func (b *HTTPBackend) Abort(ctx context.Context, txn string) error {
	return b.do(ctx, http.MethodPost, "/replica/abort", wireTxnReq{Txn: txn}, nil)
}
