package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serving"
)

// TestHTTPBackendRoundTrip drives the full wire boundary: an HTTP
// replica joins next to an in-process one, replication and 2PC flow
// over the wire, and killing the HTTP server triggers transport-level
// failover.
func TestHTTPBackendRoundTrip(t *testing.T) {
	c := New(Config{
		RPCTimeout: 10 * time.Second,
		// Tiny expiry so one sweep after the server dies is enough to
		// demote it (this test runs on the real clock).
		HeartbeatInterval: time.Millisecond,
		HeartbeatExpiry:   time.Millisecond,
	})

	local := NewReplica("replica-local", serving.Config{MaxBatch: 1})
	defer local.Close()
	if err := c.Join(local); err != nil {
		t.Fatal(err)
	}

	remote := NewReplica("replica-remote", serving.Config{MaxBatch: 1})
	defer remote.Close()
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()
	if err := c.Join(NewHTTPBackend("replica-remote", srv.URL, srv.Client())); err != nil {
		t.Fatal(err)
	}

	// Register fans out over the wire; both replicas hold both versions.
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.PromoteAll("demo", 2); err != nil {
		t.Fatal(err)
	}
	aliases, err := remote.Aliases(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(aliases) != 1 || aliases[0].Current != 2 || len(aliases[0].Versions) != 2 {
		t.Fatalf("remote replica after wire replication + promote: %+v", aliases)
	}

	// Predicts route to whichever member owns the shard; both must be
	// reachable, so force the remote by draining the local one.
	if err := c.SetDraining("replica-local", true); err != nil {
		t.Fatal(err)
	}
	probs, classes, err := c.Predict(context.Background(), "demo", testInstances)
	if err != nil {
		t.Fatalf("predict via HTTP backend: %v", err)
	}
	if len(probs) != 2 || len(classes) != 2 {
		t.Fatalf("wire predict shape: %d probs / %d classes", len(probs), len(classes))
	}

	// Typed errors survive the boundary.
	hb := NewHTTPBackend("replica-remote", srv.URL, srv.Client())
	if _, _, err := hb.Predict(context.Background(), "no-such-model", testInstances); !errors.Is(err, serving.ErrNotFound) {
		t.Fatalf("wire not-found mapped to %v, want serving.ErrNotFound", err)
	}
	remote.Kill()
	if _, err := hb.Heartbeat(context.Background()); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("killed replica behind live server mapped to %v, want ErrReplicaDown", err)
	}
	remote.Restart()

	// Transport failure (server gone) also maps to ErrReplicaDown, and
	// the router fails over to the surviving member.
	if err := c.SetDraining("replica-local", false); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := hb.Heartbeat(context.Background()); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("dead transport mapped to %v, want ErrReplicaDown", err)
	}
	if _, _, err := c.Predict(context.Background(), "demo", testInstances); err != nil {
		t.Fatalf("predict after HTTP replica vanished: %v", err)
	}
	c.TickHeartbeat() // sweep notices the dead transport and demotes it
	st := c.Status()
	for _, r := range st.Replicas {
		if r.ID == "replica-remote" && r.Up {
			t.Fatalf("vanished HTTP replica still up in status: %+v", r)
		}
	}
}

// TestHTTPBackendOverloadedRoundTrip reconstructs the shed error with
// its Retry-After hint across the wire.
func TestHTTPBackendOverloadedRoundTrip(t *testing.T) {
	rp := NewReplica("replica-shed", serving.Config{
		MaxBatch:      1,
		QueueDepth:    4,
		ShedWatermark: 1,
		RetryAfter:    750 * time.Millisecond,
	})
	defer rp.Close()
	reg := rp.Runtime().Registry()
	if _, err := reg.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rp.Handler())
	defer srv.Close()
	hb := NewHTTPBackend("replica-shed", srv.URL, srv.Client())

	// Two instances against a watermark of one: shed.
	_, _, err := hb.Predict(context.Background(), "demo", testInstances)
	var over *serving.OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("wire shed mapped to %v, want *serving.OverloadedError", err)
	}
	if over.RetryAfter != 750*time.Millisecond {
		t.Fatalf("Retry-After hint %v survived as %v", 750*time.Millisecond, over.RetryAfter)
	}
	if over.Ref != "demo" {
		t.Fatalf("reconstructed overload ref %q, want demo", over.Ref)
	}
}
