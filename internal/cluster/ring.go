package cluster

import (
	"sort"
)

// Shard routing uses a consistent-hash ring with virtual nodes. The key
// property the serving tier buys from it: all traffic for one model name
// lands on one replica (its shard owner), so that replica's registry warm
// cache stays hot for its shard instead of every replica churning every
// model through its LRU. The bounded-load refinement (Mirrokni et al.'s
// "consistent hashing with bounded loads") keeps a hot shard from
// melting its owner: when the owner is past c times the mean load, the
// request walks the ring to the next replica under the bound.

// defaultVirtualNodes is the per-replica vnode count. 64 points per
// replica keeps the expected ownership imbalance under ~12% for small
// clusters while ring rebuilds stay microseconds.
const defaultVirtualNodes = 64

// vnode is one hash point on the ring.
type vnode struct {
	hash    uint64
	replica int32 // index into Ring.ids
}

// Ring is an immutable consistent-hash ring over replica IDs. Membership
// changes build a new Ring (see NewRing); lookups are lock-free and
// allocation-free, which is what lets the router sit on the predict hot
// path.
type Ring struct {
	ids    []string
	vnodes []vnode // sorted by hash
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashKey is FNV-1a over the key bytes. Inlined by hand (no hash.Hash64
// allocation) so Owner stays allocation-free on the predict path.
func hashKey(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// hashVnode perturbs a replica id hash per virtual-node index without
// string concatenation.
func hashVnode(idHash uint64, i int) uint64 {
	h := idHash ^ uint64(i)*0x9e3779b97f4a7c15 // golden-ratio spread
	// splitmix64 finalizer: decorrelates sequential vnode indices.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the given replica IDs with vper virtual
// nodes per replica (defaultVirtualNodes when <= 0). IDs are deduplicated
// and sorted so the ring is a pure function of the membership set.
func NewRing(ids []string, vper int) *Ring {
	if vper <= 0 {
		vper = defaultVirtualNodes
	}
	uniq := make([]string, 0, len(ids))
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		uniq = append(uniq, id)
	}
	sort.Strings(uniq)
	r := &Ring{ids: uniq, vnodes: make([]vnode, 0, len(uniq)*vper)}
	for ri, id := range uniq {
		idHash := hashKey(id)
		for v := 0; v < vper; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashVnode(idHash, v), replica: int32(ri)})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.replica < b.replica
	})
	return r
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.ids) }

// IDs returns the member IDs in ring (sorted) order. Callers must not
// mutate the returned slice.
func (r *Ring) IDs() []string { return r.ids }

// succ locates the first vnode at or clockwise after h. Manual binary
// search: no closure, no allocation, branch-predictable.
func (r *Ring) succ(h uint64) int {
	lo, hi := 0, len(r.vnodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		//lint:ignore bounds-provable the binary-search invariant lo <= mid < hi <= len is relational, beyond interval reasoning; sort.Search carries the same check
		if r.vnodes[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.vnodes) {
		lo = 0 // wrap
	}
	return lo
}

// Owner returns the index (into IDs) of the replica owning key, or -1 on
// an empty ring. This is the shard-routing hot path: zero allocations.
func (r *Ring) Owner(key string) int {
	if len(r.vnodes) == 0 {
		return -1
	}
	return int(r.vnodes[r.succ(hashKey(key))].replica)
}

// OwnerID returns the owning replica's ID, or "" on an empty ring.
func (r *Ring) OwnerID(key string) string {
	i := r.Owner(key)
	if i < 0 {
		return ""
	}
	return r.ids[i]
}

// Walk visits the distinct replicas in ring order starting at key's
// owner, until visit returns false or every member was seen. The
// bounded-load pick and the failover path both ride on it: the owner is
// visited first, then each successor exactly once.
func (r *Ring) Walk(key string, visit func(replica int) bool) {
	n := len(r.vnodes)
	if n == 0 {
		return
	}
	start := r.succ(hashKey(key))
	visited := 0
	// Stack-allocated seen set: replica counts are operator-configured
	// and small, so 256 covers every realistic topology without a heap
	// allocation on the pick path.
	var seenArr [256]bool
	seen := seenArr[:]
	if len(r.ids) > len(seen) {
		seen = make([]bool, len(r.ids))
	}
	for i := 0; i < n && visited < len(r.ids); i++ {
		v := r.vnodes[(start+i)%n]
		if seen[v.replica] {
			continue
		}
		seen[v.replica] = true
		visited++
		//lint:ignore hot-indirect the caller-supplied predicate is Walk's API; the loop exists to drive it
		if !visit(int(v.replica)) {
			return
		}
	}
}

// Moves counts the vnode hash points whose owner differs between two
// rings — the deterministic rebalance cost of a membership change, fed
// into spatial_cluster_ring_moves_total. Points are compared over the
// union of both rings' vnode sets by replica ID (indices differ between
// rings).
func Moves(old, new_ *Ring) int {
	if old == nil || new_ == nil {
		if old == new_ {
			return 0
		}
		r := old
		if r == nil {
			r = new_
		}
		return len(r.vnodes)
	}
	moves := 0
	count := func(points *Ring) {
		for _, v := range points.vnodes {
			oldOwner, newOwner := "", ""
			if len(old.vnodes) > 0 {
				oldOwner = old.ids[old.vnodes[old.succ(v.hash)].replica]
			}
			if len(new_.vnodes) > 0 {
				newOwner = new_.ids[new_.vnodes[new_.succ(v.hash)].replica]
			}
			if oldOwner != newOwner {
				moves++
			}
		}
	}
	count(old)
	count(new_)
	return moves
}
