package cluster

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("replica-%d", i)
	}
	return ids
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"r2", "r0", "r1"}, 0)
	b := NewRing([]string{"r1", "r1", "r2", "r0", ""}, 0)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("lens %d %d, want 3 (dedup + drop empty)", a.Len(), b.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("model-%d", i)
		if a.OwnerID(key) != b.OwnerID(key) {
			t.Fatalf("key %q: owner %s vs %s — ring depends on input order", key, a.OwnerID(key), b.OwnerID(key))
		}
	}
	if Moves(a, b) != 0 {
		t.Fatalf("identical membership reports %d moves", Moves(a, b))
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("x"); got != -1 {
		t.Fatalf("empty ring owner %d, want -1", got)
	}
	if got := empty.OwnerID("x"); got != "" {
		t.Fatalf("empty ring owner id %q", got)
	}
	single := NewRing([]string{"only"}, 0)
	for i := 0; i < 50; i++ {
		if got := single.OwnerID(fmt.Sprintf("k%d", i)); got != "only" {
			t.Fatalf("single-member ring routed %q to %q", fmt.Sprintf("k%d", i), got)
		}
	}
}

// TestRingRebalanceOnJoin asserts the consistent-hashing contract: adding
// a member only moves keys onto the new member — every key whose owner is
// not the newcomer keeps its old owner.
func TestRingRebalanceOnJoin(t *testing.T) {
	old := NewRing(ringIDs(4), 0)
	grown := NewRing(append(ringIDs(4), "replica-9"), 0)
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("model-%d", i)
		was, now := old.OwnerID(key), grown.OwnerID(key)
		if was == now {
			kept++
			continue
		}
		moved++
		if now != "replica-9" {
			t.Fatalf("key %q moved %s -> %s, not onto the joining member", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member")
	}
	// Expected share is 1/5; allow generous slack for hash variance.
	if moved > 2000/2 {
		t.Fatalf("join moved %d/2000 keys — far past the 1/n share", moved)
	}
	if Moves(old, grown) == 0 {
		t.Fatal("Moves reports 0 for a membership change")
	}
}

// TestRingRebalanceOnLeave is the inverse contract: removing a member
// only moves that member's keys.
func TestRingRebalanceOnLeave(t *testing.T) {
	old := NewRing(ringIDs(4), 0)
	shrunk := NewRing(ringIDs(3), 0) // replica-3 left
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("model-%d", i)
		was, now := old.OwnerID(key), shrunk.OwnerID(key)
		if was != "replica-3" && was != now {
			t.Fatalf("key %q owned by %s moved to %s although its owner stayed", key, was, now)
		}
		if now == "replica-3" {
			t.Fatalf("key %q routed to departed member", key)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(ringIDs(5), 0)
	counts := make(map[string]int)
	for i := 0; i < 10000; i++ {
		counts[r.OwnerID(fmt.Sprintf("model-%d", i))]++
	}
	for _, id := range ringIDs(5) {
		n := counts[id]
		// Perfect balance is 2000; 64 vnodes keeps every member within a
		// loose band of it.
		if n < 500 || n > 4000 {
			t.Fatalf("member %s owns %d/10000 keys — imbalance beyond vnode expectations: %v", id, n, counts)
		}
	}
}

func TestRingWalkVisitsAllOnceOwnerFirst(t *testing.T) {
	r := NewRing(ringIDs(6), 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("model-%d", i)
		var order []int
		r.Walk(key, func(replica int) bool {
			order = append(order, replica)
			return true
		})
		if len(order) != 6 {
			t.Fatalf("key %q walk visited %d members, want 6", key, len(order))
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("key %q walk started at %d, owner is %d", key, order[0], r.Owner(key))
		}
		seen := make(map[int]bool)
		for _, ri := range order {
			if seen[ri] {
				t.Fatalf("key %q walk visited replica %d twice", key, ri)
			}
			seen[ri] = true
		}
	}
	// Early-exit contract.
	visits := 0
	r.Walk("model-1", func(int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("walk continued after visit returned false: %d visits", visits)
	}
}

func TestRingMovesNilAndSelf(t *testing.T) {
	r := NewRing(ringIDs(3), 8)
	if Moves(nil, nil) != 0 {
		t.Fatal("Moves(nil, nil) != 0")
	}
	if got := Moves(nil, r); got != 3*8 {
		t.Fatalf("Moves(nil, r) = %d, want %d", got, 3*8)
	}
	if got := Moves(r, nil); got != 3*8 {
		t.Fatalf("Moves(r, nil) = %d, want %d", got, 3*8)
	}
	if Moves(r, r) != 0 {
		t.Fatal("Moves(r, r) != 0")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(ringIDs(8), 0)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(keys[i&63]) < 0 {
			b.Fatal("empty ring")
		}
	}
}
