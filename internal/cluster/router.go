package cluster

import (
	"context"
	"errors"
	"strings"
)

// This file is the cluster's data plane: shard-aware replica selection
// and the predict path with error-driven failover.

// ShardKey maps a model reference onto its routing key: the alias name
// with any @version suffix stripped, so every version of one model —
// "lgbm", "lgbm@2", "lgbm@latest" — lands on the same shard owner and
// that replica's warm cache survives promotes. Raw content ids shard as
// themselves.
func ShardKey(ref string) string {
	if strings.HasPrefix(ref, "sha256:") {
		return ref
	}
	if i := strings.IndexByte(ref, '@'); i >= 0 {
		return ref[:i]
	}
	return ref
}

// pick selects the member to route ref's request to: the shard owner
// when it is under the bounded-load ceiling, else the first ring
// successor under it, else (every routable member saturated) the
// least-loaded member — the existing least-loaded balancer as the
// spillover of last resort. rerouted reports whether the choice is not
// the shard owner. Returns nil when no member is routable.
func (c *Cluster) pick(t *routeTable, key string) (m *member, rerouted bool) {
	if t.ring.Len() == 0 {
		return nil, false
	}
	bound := loadBound(t, c.cfg.LoadFactor)
	var chosen *member
	first := true
	ownerIsChoice := false
	t.ring.Walk(key, func(i int) bool {
		cand := t.members[i]
		// Membership can change between table swap and walk; re-check the
		// live flags so a just-killed or just-draining member is skipped.
		if !cand.up.Load() || cand.draining.Load() {
			first = false
			return true
		}
		if cand.load.Load() < bound {
			chosen = cand
			ownerIsChoice = first
			return false
		}
		first = false
		return true
	})
	if chosen != nil {
		return chosen, !ownerIsChoice
	}
	// Every ring member is at the bound: spill to least-loaded.
	var best *member
	var bestLoad int64
	for _, cand := range t.members {
		if !cand.up.Load() || cand.draining.Load() {
			continue
		}
		if l := cand.load.Load(); best == nil || l < bestLoad {
			best, bestLoad = cand, l
		}
	}
	return best, best != nil
}

// Owner reports the current shard owner's replica ID for a model
// reference ("" when the ring is empty). Tests and the failover smoke
// use it to find which replica to kill.
func (c *Cluster) Owner(ref string) string {
	return c.table.Load().ring.OwnerID(ShardKey(ref))
}

// Predict routes instances to ref's shard owner (with bounded-load
// spillover) and scores them there. A replica that turns out to be dead
// is demoted immediately and the request reroutes to the next candidate
// — callers see ErrNoReplicas only when the whole tier is gone.
// Overload sheds (serving.OverloadedError) propagate to the caller as
// admission-control signals, not failover triggers.
func (c *Cluster) Predict(ctx context.Context, ref string, instances [][]float64) ([][]float64, []int, error) {
	if len(instances) == 0 {
		return nil, nil, nil
	}
	key := ShardKey(ref)
	n := int64(len(instances))
	// Each failed attempt marks a member down and shrinks the table, so
	// the membership size bounds the retry loop.
	c.mu.Lock()
	attempts := len(c.ids) + 1
	c.mu.Unlock()
	for a := 0; a < attempts; a++ {
		t := c.table.Load()
		m, rerouted := c.pick(t, key)
		if m == nil {
			return nil, nil, ErrNoReplicas
		}
		if rerouted {
			c.met.reroutes.Inc()
		}
		m.load.Add(n)
		//lint:ignore hot-indirect the backend interface is the replica boundary (in-process vs remote); one dispatch per routed batch, not per instance
		probs, classes, err := m.backend.Predict(ctx, ref, instances)
		m.load.Add(-n)
		if err != nil && errors.Is(err, ErrReplicaDown) {
			c.markDown(m)
			// The retry lands on the rebuilt ring's owner — still a
			// reroute from the dead member's perspective.
			c.met.reroutes.Inc()
			continue
		}
		return probs, classes, err
	}
	return nil, nil, ErrNoReplicas
}
