package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/serving"
)

// instrumented wraps a replica to count predicts and optionally gate
// them (a saturated owner for the spillover test).
type instrumented struct {
	*Replica
	calls atomic.Int64
	gate  chan struct{} // non-nil: Predict waits for a receive
}

func (b *instrumented) Predict(ctx context.Context, ref string, instances [][]float64) ([][]float64, []int, error) {
	b.calls.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return b.Replica.Predict(ctx, ref, instances)
}

// newInstrumentedTier joins n instrumented replicas on one fake clock.
func newInstrumentedTier(t *testing.T, n int, cfg Config) (*Cluster, []*instrumented) {
	t.Helper()
	fake := clock.NewFake(testEpoch)
	cfg.Clock = fake
	c := New(cfg)
	backs := make([]*instrumented, n)
	for i := 0; i < n; i++ {
		backs[i] = &instrumented{
			Replica: NewReplica("replica-"+string(rune('a'+i)), serving.Config{MaxBatch: 1, Clock: fake}),
		}
		if err := c.Join(backs[i]); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, b := range backs {
			b.Replica.Close()
		}
	})
	return c, backs
}

// TestShardStickiness: every reference form of one model — bare alias,
// pinned version, latest — routes to the same shard owner, so its warm
// cache survives promotes.
func TestShardStickiness(t *testing.T) {
	c, backs := newInstrumentedTier(t, 3, Config{RPCTimeout: 10 * time.Second})
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	owner := c.Owner("demo")
	if got := c.Owner("demo@2"); got != owner {
		t.Fatalf("demo@2 shards to %s, demo to %s", got, owner)
	}
	if got := c.Owner("demo@latest"); got != owner {
		t.Fatalf("demo@latest shards to %s, demo to %s", got, owner)
	}
	for _, b := range backs {
		b.calls.Store(0)
	}
	ctx := context.Background()
	for _, ref := range []string{"demo", "demo@1", "demo@latest", "demo", "demo@2"} {
		if _, _, err := c.Predict(ctx, ref, testInstances); err != nil {
			t.Fatalf("predict %s: %v", ref, err)
		}
	}
	for _, b := range backs {
		got := b.calls.Load()
		if b.ID() == owner && got != 5 {
			t.Fatalf("owner %s served %d/5 predicts", b.ID(), got)
		}
		if b.ID() != owner && got != 0 {
			t.Fatalf("non-owner %s served %d predicts; shard routing leaked", b.ID(), got)
		}
	}
}

// TestShardKey pins the routing-key derivation.
func TestShardKey(t *testing.T) {
	cases := map[string]string{
		"demo":         "demo",
		"demo@2":       "demo",
		"demo@latest":  "demo",
		"sha256:ab@cd": "sha256:ab@cd", // content ids shard verbatim
		"sha256:ab":    "sha256:ab",
	}
	for ref, want := range cases {
		if got := ShardKey(ref); got != want {
			t.Fatalf("ShardKey(%q) = %q, want %q", ref, got, want)
		}
	}
}

// TestBoundedLoadSpillover: with the shard owner saturated past the
// bounded-load ceiling, the next request walks to a ring successor
// instead of queueing behind the hot shard.
func TestBoundedLoadSpillover(t *testing.T) {
	c, backs := newInstrumentedTier(t, 3, Config{LoadFactor: 1.25, RPCTimeout: 10 * time.Second})
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	owner := c.Owner("demo")
	var ownerBack *instrumented
	for _, b := range backs {
		if b.ID() == owner {
			ownerBack = b
		}
		b.calls.Store(0)
	}
	gate := make(chan struct{})
	ownerBack.gate = gate

	// Park one request on the owner: its tracked load reaches 1, which
	// meets the bound ceil(1.25 * 2 / 3) = 1.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.Predict(context.Background(), "demo", testInstances[:1]); err != nil {
			t.Errorf("parked predict: %v", err)
		}
	}()
	waitForLoad(t, c, owner, 1)

	// Saturated owner: this request must land elsewhere.
	before := ownerBack.calls.Load()
	if _, _, err := c.Predict(context.Background(), "demo", testInstances[:1]); err != nil {
		t.Fatalf("spillover predict: %v", err)
	}
	if got := ownerBack.calls.Load(); got != before {
		t.Fatalf("saturated owner served the spillover request (calls %d -> %d)", before, got)
	}
	spilled := int64(0)
	for _, b := range backs {
		if b.ID() != owner {
			spilled += b.calls.Load()
		}
	}
	if spilled != 1 {
		t.Fatalf("spillover served by %d non-owners, want exactly 1", spilled)
	}

	// Release the parked request; the owner takes traffic again (a
	// closed gate never blocks, so it can stay in place).
	close(gate)
	wg.Wait()
	waitForLoad(t, c, owner, 0)
	before = ownerBack.calls.Load()
	if _, _, err := c.Predict(context.Background(), "demo", testInstances[:1]); err != nil {
		t.Fatal(err)
	}
	if got := ownerBack.calls.Load(); got != before+1 {
		t.Fatalf("drained owner did not regain its shard (calls %d -> %d)", before, got)
	}
}

// waitForLoad polls the status until the member's tracked load reaches
// want (predict goroutines are real concurrency even on a fake clock).
func waitForLoad(t *testing.T, c *Cluster, id string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range c.Status().Replicas {
			if r.ID == id && r.Load == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("member %s never reached load %d: %+v", id, want, c.Status().Replicas)
}
