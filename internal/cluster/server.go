package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serving"
)

// Handler exposes the cluster over HTTP with the MLService's JSON
// contracts, so the existing gateway and service.Client talk to a
// cluster exactly as they talk to a single replica:
//
//	POST /predict          {modelId, instances} -> {classes, probs}
//	POST /cluster/promote  {name, version}      -> {name, version, id}
//	POST /cluster/rollback {name}               -> {name, version, id}
//	GET  /cluster/status                        -> StatusInfo
//	GET  /healthz
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", c.handlePredict)
	mux.HandleFunc("POST /cluster/promote", c.handlePromote)
	mux.HandleFunc("POST /cluster/rollback", c.handleRollback)
	mux.HandleFunc("GET /cluster/status", c.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// predictRequest mirrors service.PredictRequest.
type predictRequest struct {
	ModelID   string      `json:"modelId"`
	Instances [][]float64 `json:"instances"`
}

// predictResponse mirrors service.PredictResponse.
type predictResponse struct {
	Classes []int       `json:"classes"`
	Probs   [][]float64 `json:"probs"`
}

// promoteRequest mirrors service.PromoteRequest.
type promoteRequest struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// rollbackRequest mirrors service.RollbackRequest.
type rollbackRequest struct {
	Name string `json:"name"`
}

// aliasResponse mirrors service.AliasResponse.
type aliasResponse struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	ID      string `json:"id"`
}

func (c *Cluster) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	probs, classes, err := c.Predict(r.Context(), req.ModelID, req.Instances)
	if err != nil {
		writeClusterPredictError(w, req.ModelID, err)
		return
	}
	if probs == nil {
		probs, classes = [][]float64{}, []int{}
	}
	writeJSON(w, http.StatusOK, predictResponse{Classes: classes, Probs: probs})
}

// writeClusterPredictError maps routing and serving errors onto HTTP:
// sheds 429 with Retry-After, unknown references 404, an empty tier 503,
// scoring failures 422.
func writeClusterPredictError(w http.ResponseWriter, ref string, err error) {
	var over *serving.OverloadedError
	switch {
	case errors.As(err, &over):
		w.Header().Set("Retry-After", retryAfterSeconds(over.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, serving.ErrNotFound):
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not found", ref))
	case errors.Is(err, ErrNoReplicas) || errors.Is(err, ErrReplicaDown):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func (c *Cluster) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req promoteRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.PromoteAll(req.Name, req.Version); err != nil {
		status := http.StatusConflict
		if errors.Is(err, serving.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	id, err := c.canonical.Resolve(req.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, aliasResponse{Name: req.Name, Version: req.Version, ID: id})
}

func (c *Cluster) handleRollback(w http.ResponseWriter, r *http.Request) {
	var req rollbackRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ref, err := c.RollbackAll(req.Name)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, serving.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, aliasResponse{Name: ref.Name, Version: ref.Version, ID: ref.ID})
}

func (c *Cluster) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// retryAfterSeconds renders a back-off hint as the integer-seconds form
// of the Retry-After header, rounding sub-second hints up to 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs < 1 {
		secs++
	}
	return fmt.Sprintf("%d", secs)
}

// errorBody mirrors the service tier's error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}
