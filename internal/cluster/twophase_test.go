package cluster

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/serving"
)

// hangingPrepare wraps a replica so Prepare blocks until the
// coordinator's RPC timeout cancels it — the interrupted-2PC shape of
// the acceptance criteria.
type hangingPrepare struct {
	*Replica
	hang bool
}

func (h *hangingPrepare) Prepare(ctx context.Context, txn, name string, version int, id string, ttl time.Duration) error {
	if h.hang {
		<-ctx.Done()
		return ctx.Err()
	}
	return h.Replica.Prepare(ctx, txn, name, version, id, ttl)
}

// run2PCAbortScenario builds a 3-replica tier whose third replica hangs
// every prepare, attempts a cluster promote on a goroutine, advances the
// fake clock past the RPC timeout to force the abort, and returns the
// resulting cluster state as deterministic JSON.
func run2PCAbortScenario(t *testing.T) (errMsg string, stateJSON []byte) {
	t.Helper()
	tier := newTestTier(t, 2, Config{
		HeartbeatInterval: time.Second,
		RPCTimeout:        2 * time.Second,
		PrepareTTL:        5 * time.Second,
	})
	c := tier.cluster
	// Third member: same replica machinery, but prepares hang.
	hp := &hangingPrepare{Replica: NewReplica("replica-9", serving.Config{MaxBatch: 1, Clock: tier.clk})}
	t.Cleanup(hp.Replica.Close)
	if err := c.Join(hp); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	hp.hang = true

	errCh := make(chan error, 1)
	base := tier.clk.Pending()
	go func() { errCh <- c.PromoteAll("demo", 2) }()
	// The promote prepares the two healthy replicas (one timeout waiter
	// each, resolved immediately) and then blocks on the hanging third —
	// three new waiters from the base count.
	tier.clk.BlockUntil(base + 3)
	tier.clk.Advance(2*time.Second + time.Millisecond)
	err := <-errCh
	if err == nil {
		t.Fatal("promote with a hanging prepare succeeded; want abort")
	}

	// Canonical and every replica must still serve version 1.
	type replicaState struct {
		ID      string              `json:"id"`
		Aliases []serving.AliasInfo `json:"aliases"`
	}
	var state struct {
		Canonical []serving.AliasInfo `json:"canonical"`
		Replicas  []replicaState      `json:"replicas"`
	}
	state.Canonical = c.Canonical().Aliases()
	for _, rp := range append(tier.replicas, hp.Replica) {
		aliases, aerr := rp.Aliases(context.Background())
		if aerr != nil {
			t.Fatal(aerr)
		}
		state.Replicas = append(state.Replicas, replicaState{ID: rp.ID(), Aliases: aliases})
	}
	raw, merr := json.Marshal(state)
	if merr != nil {
		t.Fatal(merr)
	}
	return err.Error(), raw
}

// TestTwoPhasePromoteAbortOnPrepareTimeout is the second acceptance
// check: a promote interrupted before commit leaves every replica (and
// the canonical registry) on the old version, byte-identically across
// two runs with the same seed.
func TestTwoPhasePromoteAbortOnPrepareTimeout(t *testing.T) {
	err1, state1 := run2PCAbortScenario(t)
	err2, state2 := run2PCAbortScenario(t)

	if !strings.Contains(err1, "aborted") || !strings.Contains(err1, "replica-9") {
		t.Fatalf("abort error does not name the failing prepare: %s", err1)
	}
	if err1 != err2 {
		t.Fatalf("abort errors differ across seeded runs:\n%s\n%s", err1, err2)
	}
	if string(state1) != string(state2) {
		t.Fatalf("post-abort state differs across seeded runs:\n%s\n%s", state1, state2)
	}
	var state struct {
		Canonical []serving.AliasInfo `json:"canonical"`
		Replicas  []struct {
			ID      string              `json:"id"`
			Aliases []serving.AliasInfo `json:"aliases"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(state1, &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Canonical) != 1 || state.Canonical[0].Current != 1 {
		t.Fatalf("canonical alias after abort: %+v, want current=1", state.Canonical)
	}
	if len(state.Replicas) != 3 {
		t.Fatalf("captured %d replicas, want 3", len(state.Replicas))
	}
	for _, r := range state.Replicas {
		if len(r.Aliases) != 1 || r.Aliases[0].Current != 1 {
			t.Fatalf("replica %s after abort: %+v, want current=1", r.ID, r.Aliases)
		}
		if len(r.Aliases[0].Versions) != 2 {
			t.Fatalf("replica %s has %d versions, want 2 (replication happened, flip did not)", r.ID, len(r.Aliases[0].Versions))
		}
	}
}

// TestTwoPhasePromoteCommitsEverywhere is the happy path: after
// PromoteAll, every replica and the canonical registry agree.
func TestTwoPhasePromoteCommitsEverywhere(t *testing.T) {
	tier := newTestTier(t, 3, Config{RPCTimeout: 10 * time.Second})
	c := tier.cluster
	if _, err := c.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("demo", trainedModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.PromoteAll("demo", 2); err != nil {
		t.Fatal(err)
	}
	for _, rp := range tier.replicas {
		aliases, err := rp.Aliases(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if aliases[0].Current != 2 {
			t.Fatalf("replica %s at version %d after promote, want 2", rp.ID(), aliases[0].Current)
		}
	}
	// Rollback restores version 1 cluster-wide, atomically.
	ref, err := c.RollbackAll("demo")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Version != 1 {
		t.Fatalf("rollback restored version %d, want 1", ref.Version)
	}
	for _, rp := range tier.replicas {
		aliases, err := rp.Aliases(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if aliases[0].Current != 1 {
			t.Fatalf("replica %s at version %d after rollback, want 1", rp.ID(), aliases[0].Current)
		}
	}
	// Rolling back with an empty history fails without mutating state.
	if _, err := c.RollbackAll("demo"); err == nil {
		t.Fatal("second rollback succeeded with empty history")
	}
}

// TestPrepareValidation: prepares against wrong content ids or unknown
// versions must fail before anything is staged.
func TestPrepareValidation(t *testing.T) {
	tier := newTestTier(t, 1, Config{RPCTimeout: 10 * time.Second})
	rp := tier.replicas[0]
	if _, err := tier.cluster.Register("demo", trainedModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rp.Prepare(ctx, "t1", "demo", 99, "sha256:x", time.Second); err == nil {
		t.Fatal("prepare of unknown version succeeded")
	}
	if err := rp.Prepare(ctx, "t2", "demo", 1, "sha256:wrong", time.Second); err == nil {
		t.Fatal("prepare with mismatched content id succeeded")
	}
	if err := rp.Prepare(ctx, "", "demo", 1, "sha256:wrong", time.Second); err == nil {
		t.Fatal("prepare with empty txn succeeded")
	}
	// A staged flip expires after its TTL.
	id := tier.cluster.Canonical().Aliases()[0].Versions[0]
	if err := rp.Prepare(ctx, "t3", "demo", 1, id, time.Second); err != nil {
		t.Fatal(err)
	}
	tier.clk.Advance(2 * time.Second)
	if err := rp.Commit(ctx, "t3"); err == nil {
		t.Fatal("commit of expired txn succeeded")
	}
	// Unknown commits fail, unknown aborts are no-ops.
	if err := rp.Commit(ctx, "never-prepared"); err == nil {
		t.Fatal("commit of unknown txn succeeded")
	}
	if err := rp.Abort(ctx, "never-prepared"); err != nil {
		t.Fatalf("abort of unknown txn: %v", err)
	}
}
