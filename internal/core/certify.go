package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/sensor"

	"repro/internal/clock"
)

// Requirements is the certification scale the paper's §VIII calls for:
// the minimum acceptable score per trustworthy property for a given
// application class. Being explicit per application sidesteps the
// "agnostic trust score" problem the paper describes — a medical fall
// detector and a traffic classifier certify against different bars.
type Requirements map[sensor.Property]float64

// DefaultRequirements is a moderate certification bar used by the
// examples.
func DefaultRequirements() Requirements {
	return Requirements{
		sensor.PropPerformance:    0.85,
		sensor.PropResilience:     0.5,
		sensor.PropExplainability: 0.2,
	}
}

// Failure records one unmet requirement.
type Failure struct {
	Property sensor.Property `json:"property"`
	Required float64         `json:"required"`
	Measured float64         `json:"measured"`
	// Missing means no sensor measured the property at all — always a
	// failure when the property is required.
	Missing bool `json:"missing"`
}

// Certificate is the audit-ready output of a certification pass.
type Certificate struct {
	Issued       time.Time                   `json:"issued"`
	Score        float64                     `json:"score"`
	PerProperty  map[sensor.Property]float64 `json:"perProperty"`
	Requirements Requirements                `json:"requirements"`
	Alerts       int                         `json:"alerts"`
	Passed       bool                        `json:"passed"`
	Failures     []Failure                   `json:"failures,omitempty"`
	// Hash covers every field above; appending it to the audit log
	// pins the certificate content.
	Hash string `json:"hash"`
}

// Certify checks a trust report against per-property requirements and
// issues a hashable certificate. Active alerts fail certification
// regardless of scores: an operator must not certify a system that is
// currently alerting.
func Certify(rep TrustReport, req Requirements) (Certificate, error) {
	if len(req) == 0 {
		return Certificate{}, fmt.Errorf("core: empty requirements")
	}
	for prop, min := range req {
		if min < 0 || min > 1 {
			return Certificate{}, fmt.Errorf("core: requirement for %s is %v, outside [0,1]", prop, min)
		}
	}
	cert := Certificate{
		Issued:       clock.Real().Now().UTC(),
		Score:        rep.Score,
		PerProperty:  rep.PerProperty,
		Requirements: req,
		Alerts:       rep.Alerts,
		Passed:       true,
	}
	props := make([]sensor.Property, 0, len(req))
	for prop := range req {
		props = append(props, prop)
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	for _, prop := range props {
		min := req[prop]
		measured, ok := rep.PerProperty[prop]
		switch {
		case !ok:
			cert.Passed = false
			cert.Failures = append(cert.Failures, Failure{Property: prop, Required: min, Missing: true})
		case measured < min:
			cert.Passed = false
			cert.Failures = append(cert.Failures, Failure{Property: prop, Required: min, Measured: measured})
		}
	}
	if rep.Alerts > 0 {
		cert.Passed = false
	}
	hash, err := certHash(cert)
	if err != nil {
		return Certificate{}, err
	}
	cert.Hash = hash
	return cert, nil
}

// certHash hashes the certificate's canonical JSON (with Hash empty).
func certHash(c Certificate) (string, error) {
	c.Hash = ""
	raw, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("core: hash certificate: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// VerifyCertificate recomputes and compares the content hash.
func VerifyCertificate(c Certificate) error {
	want, err := certHash(c)
	if err != nil {
		return err
	}
	if want != c.Hash {
		return fmt.Errorf("core: certificate hash mismatch (tampered?)")
	}
	return nil
}
