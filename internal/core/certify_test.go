package core

import (
	"testing"

	"repro/internal/sensor"
)

func passingReport() TrustReport {
	return TrustReport{
		Score: 0.9,
		PerProperty: map[sensor.Property]float64{
			sensor.PropPerformance:    0.95,
			sensor.PropResilience:     0.7,
			sensor.PropExplainability: 0.4,
		},
	}
}

func TestCertifyPasses(t *testing.T) {
	cert, err := Certify(passingReport(), DefaultRequirements())
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Passed || len(cert.Failures) != 0 {
		t.Fatalf("certificate should pass: %+v", cert)
	}
	if cert.Hash == "" {
		t.Fatal("missing hash")
	}
	if err := VerifyCertificate(cert); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyFailsBelowRequirement(t *testing.T) {
	rep := passingReport()
	rep.PerProperty[sensor.PropPerformance] = 0.5
	cert, err := Certify(rep, DefaultRequirements())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Passed {
		t.Fatal("certificate should fail")
	}
	if len(cert.Failures) != 1 || cert.Failures[0].Property != sensor.PropPerformance || cert.Failures[0].Missing {
		t.Fatalf("failures %+v", cert.Failures)
	}
}

func TestCertifyFailsOnMissingProperty(t *testing.T) {
	rep := passingReport()
	delete(rep.PerProperty, sensor.PropResilience)
	cert, err := Certify(rep, DefaultRequirements())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Passed {
		t.Fatal("missing required property should fail certification")
	}
	found := false
	for _, f := range cert.Failures {
		if f.Property == sensor.PropResilience && f.Missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-property failure absent: %+v", cert.Failures)
	}
}

func TestCertifyFailsOnActiveAlerts(t *testing.T) {
	rep := passingReport()
	rep.Alerts = 2
	cert, err := Certify(rep, DefaultRequirements())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Passed {
		t.Fatal("active alerts must block certification")
	}
}

func TestCertifyValidation(t *testing.T) {
	if _, err := Certify(passingReport(), nil); err == nil {
		t.Fatal("expected empty-requirements error")
	}
	if _, err := Certify(passingReport(), Requirements{sensor.PropPerformance: 2}); err == nil {
		t.Fatal("expected out-of-range requirement error")
	}
}

func TestVerifyCertificateDetectsTampering(t *testing.T) {
	cert, err := Certify(passingReport(), DefaultRequirements())
	if err != nil {
		t.Fatal(err)
	}
	cert.Score = 1.0
	if err := VerifyCertificate(cert); err == nil {
		t.Fatal("tampered certificate verified")
	}
}
