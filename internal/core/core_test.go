package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/sensor"
	"repro/internal/service"
)

func TestTaxonomyIsConsistent(t *testing.T) {
	if err := ValidateTaxonomy(); err != nil {
		t.Fatal(err)
	}
}

func TestTaxonomyPaperPairingsHold(t *testing.T) {
	// Use case 1: label flipping applies to all five UC1 models.
	for _, algo := range []string{"lr", "dt", "rf", "mlp", "dnn"} {
		found := false
		for _, a := range AttacksOn(algo) {
			if a.Name == "random label flipping" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("label flipping missing for %s", algo)
		}
	}
	// Use case 2: FGSM is white-box on the NN, transfer on tree models.
	for _, a := range AttacksOn("dnn") {
		if a.Name == "FGSM" && !a.WhiteBox {
			t.Fatal("FGSM should be white-box")
		}
	}
	foundTransfer := false
	for _, a := range AttacksOn("xgb") {
		if a.Name == "FGSM" {
			t.Fatal("direct FGSM should not list tree ensembles")
		}
		if a.Name == "transfer FGSM" {
			foundTransfer = true
		}
	}
	if !foundTransfer {
		t.Fatal("transfer FGSM missing for xgb")
	}
}

func TestAttacksAtStage(t *testing.T) {
	collect := AttacksAtStage(pipeline.StageCollect)
	if len(collect) == 0 {
		t.Fatal("no collect-stage attacks")
	}
	for _, a := range collect {
		if a.Class != ClassPoisoning {
			t.Fatalf("collect-stage attack %q is %s, want poisoning", a.Name, a.Class)
		}
	}
	deploy := AttacksAtStage(pipeline.StageDeploy)
	classes := map[AttackClass]bool{}
	for _, a := range deploy {
		classes[a.Class] = true
	}
	if !classes[ClassEvasion] || !classes[ClassModelStealing] {
		t.Fatalf("deploy-stage attack classes incomplete: %v", classes)
	}
}

func TestVulnerabilitiesCoverCIA(t *testing.T) {
	seen := map[CIA]bool{}
	for _, v := range Vulnerabilities() {
		seen[v.CIA] = true
	}
	for _, c := range []CIA{Confidentiality, Integrity, Availability} {
		if !seen[c] {
			t.Fatalf("no vulnerability covers %s", c)
		}
	}
	if len(VulnerabilitiesAtStage(pipeline.StageDeploy)) < 2 {
		t.Fatal("deployment should have multiple documented vulnerabilities")
	}
}

func TestTrustScoreAggregation(t *testing.T) {
	readings := []sensor.Reading{
		{Sensor: "acc", Property: sensor.PropPerformance, Value: 0.9},
		{Sensor: "res", Property: sensor.PropResilience, Value: 0.6},
		{Sensor: "xai", Property: sensor.PropExplainability, Value: 0.8, Alert: true},
	}
	rep, err := Trust(readings, DefaultTrustWeights())
	if err != nil {
		t.Fatal(err)
	}
	want := 0.4*0.9 + 0.3*0.6 + 0.3*0.8
	if math.Abs(rep.Score-want) > 1e-12 {
		t.Fatalf("score %v, want %v", rep.Score, want)
	}
	if rep.Alerts != 1 {
		t.Fatalf("alerts %d", rep.Alerts)
	}
	if rep.PerProperty[sensor.PropResilience] != 0.6 {
		t.Fatalf("per-property %v", rep.PerProperty)
	}
}

func TestTrustScoreRenormalizesMissingProperties(t *testing.T) {
	readings := []sensor.Reading{
		{Sensor: "acc", Property: sensor.PropPerformance, Value: 0.5},
	}
	rep, err := Trust(readings, DefaultTrustWeights())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Score-0.5) > 1e-12 {
		t.Fatalf("score %v, want 0.5 after renormalization", rep.Score)
	}
}

func TestTrustScoreValidation(t *testing.T) {
	if _, err := Trust(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	bad := []sensor.Reading{{Sensor: "x", Property: sensor.PropPerformance, Value: 3}}
	if _, err := Trust(bad, nil); err == nil {
		t.Fatal("expected out-of-range error")
	}
	noWeight := []sensor.Reading{{Sensor: "x", Property: sensor.PropPrivacy, Value: 0.5}}
	if _, err := Trust(noWeight, TrustWeights{sensor.PropPerformance: 1}); err == nil {
		t.Fatal("expected no-weighted-property error")
	}
}

func sepTable(n int) *dataset.Table {
	rng := rand.New(rand.NewSource(1))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}, y)
	}
	return tb
}

// TestSystemEndToEnd deploys the full stack on loopback, trains a model
// through the gateway, requests a SHAP explanation, runs a sensor feeding
// the dashboard, and reads back a trust report.
func TestSystemEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sys := NewSystem(Options{HealthInterval: 50 * time.Millisecond})
	gwURL, dashURL, err := sys.DeployLocal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sys.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	if gwURL == "" || dashURL == "" {
		t.Fatal("missing URLs")
	}

	mlc := sys.ServiceClient("/ml", "")
	if err := mlc.WaitHealthy(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	tb := sepTable(200)
	trainResp, err := mlc.Train(ctx, service.TrainRequest{Algorithm: "lr", Train: service.FromTable(tb), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trainResp.Metrics.Accuracy < 0.9 {
		t.Fatalf("gateway-trained model accuracy %.3f", trainResp.Metrics.Accuracy)
	}

	model, err := mlc.FetchModel(ctx, trainResp.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	shapc := sys.ServiceClient("/shap", "")
	attr, err := shapc.SHAP(ctx, service.SHAPRequest{
		Model:      blob,
		Instance:   tb.X[0],
		Class:      tb.Y[0],
		Background: tb.X[1:4],
		Samples:    100,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 2 {
		t.Fatalf("attribution %v", attr)
	}

	// Register a performance sensor that measures the deployed model
	// through the gateway and publishes into the dashboard store.
	acc := trainResp.Metrics.Accuracy
	err = sys.Sensors.Register(&sensor.Sensor{
		Name:     "uc-accuracy",
		Property: sensor.PropPerformance,
		Interval: 20 * time.Millisecond,
		Collector: sensor.CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
			return acc, nil, nil
		}),
		Threshold: sensor.Threshold{Min: sensor.Float64Ptr(0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Sensors.Start(ctx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := sys.Sensors.Last("uc-accuracy"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sensor never collected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep, err := sys.TrustReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score < 0.5 {
		t.Fatalf("trust score %v", rep.Score)
	}

	// The dashboard received readings via the store sink.
	store := sys.Dashboard.Store()
	if len(store.Series("uc-accuracy", 0)) == 0 {
		t.Fatal("dashboard store empty")
	}
}

func TestDeployLocalIdempotent(t *testing.T) {
	ctx := context.Background()
	sys := NewSystem(Options{})
	a1, d1, err := sys.DeployLocal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown(ctx)
	a2, d2, err := sys.DeployLocal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || d1 != d2 {
		t.Fatal("second DeployLocal changed URLs")
	}
}

func TestSystemGatewayAuth(t *testing.T) {
	ctx := context.Background()
	sys := NewSystem(Options{APIKeys: []string{"k1"}})
	_, _, err := sys.DeployLocal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown(ctx)

	noKey := sys.ServiceClient("/ml", "")
	if _, err := noKey.Healthz(ctx); err == nil {
		t.Fatal("unauthenticated request admitted")
	}
	withKey := sys.ServiceClient("/ml", "k1")
	if _, err := withKey.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}
