package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/sensor"
)

func TestDeployModelRegistersAndMonitors(t *testing.T) {
	ctx := context.Background()
	sys := NewSystem(Options{})
	tb := sepTable(200)
	model := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := model.Fit(tb); err != nil {
		t.Fatal(err)
	}

	id, err := sys.DeployModel("prod", model, tb, 20*time.Millisecond, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty model id")
	}
	if _, ok := sys.ML.Model(id); !ok {
		t.Fatal("model not stored in ML service")
	}

	// The deploy sensor measures accuracy synchronously on demand.
	r, err := sys.Sensors.CollectOnce(ctx, "prod-accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if r.Property != sensor.PropPerformance || r.Value < 0.9 {
		t.Fatalf("deploy sensor reading %+v", r)
	}
	if r.Alert {
		t.Fatal("healthy model should not alert")
	}

	// Trust report now includes the deployed model's performance.
	rep, err := sys.TrustReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerProperty[sensor.PropPerformance] < 0.9 {
		t.Fatalf("trust report %+v", rep)
	}

	// Certification passes for the healthy deployment.
	cert, err := Certify(rep, Requirements{sensor.PropPerformance: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Passed {
		t.Fatalf("certificate failed: %+v", cert.Failures)
	}
}

func TestDeployModelValidation(t *testing.T) {
	sys := NewSystem(Options{})
	tb := sepTable(50)
	untrained := ml.NewLogReg(ml.DefaultLogRegConfig())
	if _, err := sys.DeployModel("x", untrained, tb, time.Second, 0.5); err == nil {
		t.Fatal("expected untrained-model error")
	}
	if _, err := sys.ML.StoreModel("lr", nil, ml.Metrics{}); err == nil {
		t.Fatal("expected nil-model error")
	}
}
