package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/dashboard"
	"repro/internal/dataset"
	"repro/internal/gateway"
	"repro/internal/ml"
	"repro/internal/sensor"
	"repro/internal/service"
)

// Options parameterizes a SPATIAL deployment.
type Options struct {
	// APIKeys enables gateway authentication when non-empty.
	APIKeys []string
	// RatePerSecond/Burst configure gateway rate limiting (0 = off).
	RatePerSecond float64
	Burst         int
	// HealthInterval is the gateway's upstream health-check period.
	HealthInterval time.Duration
	// StoreCapacity bounds the dashboard's per-sensor history.
	StoreCapacity int
}

// System is a fully assembled SPATIAL deployment: the metric
// micro-services, the API gateway fronting them, the AI dashboard, and a
// sensor manager publishing into the dashboard store.
type System struct {
	ML         *service.MLService
	SHAP       *service.SHAPService
	LIME       *service.LIMEService
	Occlusion  *service.OcclusionService
	Resilience *service.ResilienceService
	Fairness   *service.FairnessService
	Privacy    *service.PrivacyService
	Drift      *service.DriftService

	Gateway   *gateway.Gateway
	Dashboard *dashboard.Server
	Sensors   *sensor.Manager

	mu       sync.Mutex
	servers  []*http.Server
	serveWG  sync.WaitGroup
	deployed bool

	gatewayURL   string
	dashboardURL string
}

// NewSystem builds the system in-process. Call DeployLocal to expose it
// over loopback TCP, or use the handlers directly in tests.
func NewSystem(opts Options) *System {
	store := dashboard.NewStore(opts.StoreCapacity)
	sys := &System{
		ML:         service.NewMLService(),
		SHAP:       service.NewSHAPService(),
		LIME:       service.NewLIMEService(),
		Occlusion:  service.NewOcclusionService(),
		Resilience: service.NewResilienceService(),
		Fairness:   service.NewFairnessService(),
		Privacy:    service.NewPrivacyService(),
		Drift:      service.NewDriftService(),
		Dashboard:  dashboard.NewServer(store),
		Gateway: gateway.New(gateway.Config{
			APIKeys:        opts.APIKeys,
			RatePerSecond:  opts.RatePerSecond,
			Burst:          opts.Burst,
			HealthInterval: opts.HealthInterval,
		}),
	}
	sys.Sensors = sensor.NewManager(dashboard.StoreSink{Store: store})
	return sys
}

// DeployLocal binds every micro-service, the gateway, and the dashboard to
// loopback listeners, registers the gateway routes, and starts the
// gateway's health checker. It returns the gateway and dashboard base
// URLs.
func (s *System) DeployLocal(ctx context.Context) (gatewayURL, dashboardURL string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return s.gatewayURL, s.dashboardURL, nil
	}

	type svc struct {
		prefix  string
		handler http.Handler
	}
	services := []svc{
		{"/ml", s.ML},
		{"/shap", s.SHAP},
		{"/lime", s.LIME},
		{"/occlusion", s.Occlusion},
		{"/resilience", s.Resilience},
		{"/fairness", s.Fairness},
		{"/privacy", s.Privacy},
		{"/drift", s.Drift},
	}
	for _, sv := range services {
		url, err := s.listenAndServeLocked(sv.handler)
		if err != nil {
			s.shutdownLocked(ctx)
			return "", "", fmt.Errorf("deploy %s: %w", sv.prefix, err)
		}
		if err := s.Gateway.AddRoute(sv.prefix, gateway.RoundRobin, url); err != nil {
			s.shutdownLocked(ctx)
			return "", "", fmt.Errorf("route %s: %w", sv.prefix, err)
		}
	}

	gatewayURL, err = s.listenAndServeLocked(s.Gateway)
	if err != nil {
		s.shutdownLocked(ctx)
		return "", "", fmt.Errorf("deploy gateway: %w", err)
	}
	dashboardURL, err = s.listenAndServeLocked(s.Dashboard)
	if err != nil {
		s.shutdownLocked(ctx)
		return "", "", fmt.Errorf("deploy dashboard: %w", err)
	}
	s.Gateway.Start()
	s.deployed = true
	s.gatewayURL, s.dashboardURL = gatewayURL, dashboardURL
	return gatewayURL, dashboardURL, nil
}

// listenAndServeLocked starts an HTTP server on a fresh loopback port.
func (s *System) listenAndServeLocked(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h}
	s.servers = append(s.servers, srv)
	s.serveWG.Add(1)
	go func() {
		defer s.serveWG.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve exits on Shutdown; anything else is logged by the
			// default error logger inside http.Server.
			_ = err
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// ServiceClient returns a typed client for one gateway route (e.g. "/shap").
func (s *System) ServiceClient(prefix, apiKey string) *service.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &service.Client{BaseURL: s.gatewayURL + prefix, APIKey: apiKey}
}

// GatewayURL returns the deployed gateway base URL ("" before DeployLocal).
func (s *System) GatewayURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gatewayURL
}

// DashboardURL returns the deployed dashboard base URL.
func (s *System) DashboardURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dashboardURL
}

// DeployModel registers a trained model with the system's ML-pipeline
// service and instruments a performance sensor over the held-out table —
// the deploy→monitor tail of the paper's pipeline (Fig. 4). The sensor
// alerts when accuracy falls below minAccuracy.
func (s *System) DeployModel(name string, model ml.Classifier, holdout *dataset.Table, interval time.Duration, minAccuracy float64) (string, error) {
	if model == nil || model.NumClasses() == 0 {
		return "", fmt.Errorf("core: cannot deploy an untrained model")
	}
	metrics, err := ml.Evaluate(model, holdout)
	if err != nil {
		return "", fmt.Errorf("core: evaluate before deploy: %w", err)
	}
	id, err := s.ML.StoreModel(model.Name(), model, metrics)
	if err != nil {
		return "", err
	}
	err = s.Sensors.Register(&sensor.Sensor{
		Name:     name + "-accuracy",
		Property: sensor.PropPerformance,
		Interval: interval,
		Collector: sensor.CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
			m, err := ml.Evaluate(model, holdout)
			if err != nil {
				return 0, nil, err
			}
			return m.Accuracy, map[string]float64{"f1": m.F1}, nil
		}),
		Threshold: sensor.Threshold{Min: &minAccuracy},
	})
	if err != nil {
		return "", fmt.Errorf("core: register deploy sensor: %w", err)
	}
	return id, nil
}

// TrustReport aggregates the latest reading of every registered sensor.
func (s *System) TrustReport(weights TrustWeights) (TrustReport, error) {
	var readings []sensor.Reading
	for _, name := range s.Sensors.Names() {
		if r, ok := s.Sensors.Last(name); ok {
			readings = append(readings, r)
		}
	}
	return Trust(readings, weights)
}

// Shutdown stops sensors, the gateway health checker, and all HTTP
// servers.
func (s *System) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdownLocked(ctx)
}

func (s *System) shutdownLocked(ctx context.Context) error {
	s.Sensors.Stop()
	s.Gateway.Stop()
	var firstErr error
	for _, srv := range s.servers {
		if err := srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.servers = nil
	// Serve goroutines exit once Shutdown returns; join them so no
	// loose goroutine outlives the System.
	s.serveWG.Wait()
	s.deployed = false
	return firstErr
}
