// Package core is SPATIAL's façade: it assembles the metric
// micro-services, the API gateway, the AI dashboard, and the AI sensors
// into one deployable system, encodes the paper's attack and vulnerability
// taxonomies (Figs. 1 and 3), and aggregates sensor readings into a trust
// report.
package core

import (
	"fmt"

	"repro/internal/pipeline"
)

// AttackClass groups attacks by mechanism, following Fig. 1.
type AttackClass string

// Attack classes from the paper's perturbation taxonomy.
const (
	ClassPoisoning           AttackClass = "poisoning"
	ClassEvasion             AttackClass = "evasion"
	ClassModelStealing       AttackClass = "model-stealing"
	ClassMembershipInference AttackClass = "membership-inference"
	ClassModelInversion      AttackClass = "model-inversion"
	ClassPropertyInference   AttackClass = "property-inference"
)

// CIA is the security attribute an attack or vulnerability compromises.
type CIA string

// CIA attributes.
const (
	Confidentiality CIA = "confidentiality"
	Integrity       CIA = "integrity"
	Availability    CIA = "availability"
)

// Attack is one entry of the Fig. 1 taxonomy: an attack technique, the
// algorithm families it has been demonstrated against, the pipeline stage
// it targets, and the CIA attributes it compromises.
type Attack struct {
	Name       string         `json:"name"`
	Class      AttackClass    `json:"class"`
	Algorithms []string       `json:"algorithms"` // ml.NewByName identifiers
	Stage      pipeline.Stage `json:"stage"`
	CIA        []CIA          `json:"cia"`
	WhiteBox   bool           `json:"whiteBox"`
}

// attackRegistry encodes Fig. 1 (attack ↔ algorithm pairings surveyed in
// §II) restricted to the algorithm families this repository implements.
var attackRegistry = []Attack{
	{
		Name: "random label flipping", Class: ClassPoisoning,
		Algorithms: []string{"lr", "dt", "rf", "mlp", "dnn", "lgbm", "xgb"},
		Stage:      pipeline.StageCollect, CIA: []CIA{Integrity},
	},
	{
		Name: "targeted label flipping", Class: ClassPoisoning,
		Algorithms: []string{"lr", "dt", "rf", "mlp", "dnn", "lgbm", "xgb"},
		Stage:      pipeline.StageCollect, CIA: []CIA{Integrity},
	},
	{
		Name: "random label swapping", Class: ClassPoisoning,
		Algorithms: []string{"lr", "dt", "rf", "mlp", "dnn", "lgbm", "xgb"},
		Stage:      pipeline.StageCollect, CIA: []CIA{Integrity},
	},
	{
		Name: "GAN-based synthetic poisoning", Class: ClassPoisoning,
		Algorithms: []string{"mlp", "dnn", "lgbm", "xgb"},
		Stage:      pipeline.StageCollect, CIA: []CIA{Integrity},
	},
	{
		Name: "clean-label poisoning", Class: ClassPoisoning,
		Algorithms: []string{"dnn", "mlp"},
		Stage:      pipeline.StageCollect, CIA: []CIA{Integrity},
	},
	{
		Name: "backdoor trigger injection", Class: ClassPoisoning,
		Algorithms: []string{"dnn", "mlp"},
		Stage:      pipeline.StageTrain, CIA: []CIA{Integrity},
	},
	{
		Name: "FGSM", Class: ClassEvasion,
		Algorithms: []string{"lr", "mlp", "dnn"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Integrity}, WhiteBox: true,
	},
	{
		Name: "transfer FGSM", Class: ClassEvasion,
		Algorithms: []string{"dt", "rf", "lgbm", "xgb"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Integrity},
	},
	{
		Name: "tree-ensemble evasion", Class: ClassEvasion,
		Algorithms: []string{"dt", "rf", "lgbm", "xgb"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Integrity}, WhiteBox: true,
	},
	{
		Name: "sponge examples (energy-latency)", Class: ClassEvasion,
		Algorithms: []string{"dnn", "mlp"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Availability},
	},
	{
		Name: "prediction-API model stealing", Class: ClassModelStealing,
		Algorithms: []string{"lr", "dt", "rf", "mlp", "dnn", "lgbm", "xgb"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Confidentiality},
	},
	{
		Name: "membership inference", Class: ClassMembershipInference,
		Algorithms: []string{"lr", "dt", "rf", "mlp", "dnn", "lgbm", "xgb"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Confidentiality},
	},
	{
		Name: "generative model inversion", Class: ClassModelInversion,
		Algorithms: []string{"dnn", "mlp"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Confidentiality},
	},
	{
		Name: "property inference", Class: ClassPropertyInference,
		Algorithms: []string{"dnn", "mlp"},
		Stage:      pipeline.StageDeploy, CIA: []CIA{Confidentiality},
	},
}

// Attacks returns the full Fig. 1 taxonomy.
func Attacks() []Attack {
	out := make([]Attack, len(attackRegistry))
	copy(out, attackRegistry)
	return out
}

// AttacksOn lists the attacks demonstrated against an algorithm family.
func AttacksOn(algorithm string) []Attack {
	var out []Attack
	for _, a := range attackRegistry {
		for _, algo := range a.Algorithms {
			if algo == algorithm {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// AttacksAtStage lists the attacks that strike a given pipeline stage.
func AttacksAtStage(stage pipeline.Stage) []Attack {
	var out []Attack
	for _, a := range attackRegistry {
		if a.Stage == stage {
			out = append(out, a)
		}
	}
	return out
}

// Vulnerability is one entry of the Fig. 3 taxonomy: a machine-learning
// system weakness, the pipeline stage where it lives, and the CIA
// attribute whose compromise it enables.
type Vulnerability struct {
	Name        string         `json:"name"`
	Stage       pipeline.Stage `json:"stage"`
	CIA         CIA            `json:"cia"`
	Description string         `json:"description"`
}

// vulnerabilityRegistry encodes Fig. 3.
var vulnerabilityRegistry = []Vulnerability{
	{"unvalidated data sources", pipeline.StageCollect, Integrity, "training data accepted from untrusted contributors enables poisoning"},
	{"sensitive attributes in raw data", pipeline.StageCollect, Confidentiality, "personal data entering the pipeline can be reconstructed from the model"},
	{"label-noise blindness", pipeline.StageLabel, Integrity, "no audit of annotation quality lets flipped labels pass unnoticed"},
	{"annotator exposure", pipeline.StageLabel, Confidentiality, "human annotators observe raw sensitive records"},
	{"unaudited training procedure", pipeline.StageTrain, Integrity, "backdoors can be embedded without changing headline accuracy"},
	{"resource-unbounded training", pipeline.StageTrain, Availability, "adversarial data inflates training cost until jobs fail"},
	{"optimistic evaluation", pipeline.StageEvaluate, Integrity, "clean test sets overstate robustness under distribution shift or attack"},
	{"unprotected prediction API", pipeline.StageDeploy, Confidentiality, "query access leaks decision boundaries (stealing, membership inference)"},
	{"gradient exposure", pipeline.StageDeploy, Integrity, "white-box access enables FGSM-style evasion"},
	{"latency-sensitive serving", pipeline.StageDeploy, Availability, "sponge inputs exhaust inference budgets"},
	{"stale monitoring baselines", pipeline.StageMonitor, Integrity, "drift or slow poisoning goes undetected when baselines never refresh"},
}

// Vulnerabilities returns the Fig. 3 taxonomy.
func Vulnerabilities() []Vulnerability {
	out := make([]Vulnerability, len(vulnerabilityRegistry))
	copy(out, vulnerabilityRegistry)
	return out
}

// VulnerabilitiesAtStage filters the taxonomy by pipeline stage.
func VulnerabilitiesAtStage(stage pipeline.Stage) []Vulnerability {
	var out []Vulnerability
	for _, v := range vulnerabilityRegistry {
		if v.Stage == stage {
			out = append(out, v)
		}
	}
	return out
}

// ValidateTaxonomy checks internal consistency: every attack references
// known algorithms and a non-empty CIA set, and every pipeline stage with
// an attack also has a documented vulnerability. It runs in tests to keep
// the registries honest as they grow.
func ValidateTaxonomy() error {
	known := map[string]bool{"lr": true, "dt": true, "rf": true, "mlp": true, "dnn": true, "lgbm": true, "xgb": true, "nn": true}
	stagesWithVuln := map[pipeline.Stage]bool{}
	for _, v := range vulnerabilityRegistry {
		stagesWithVuln[v.Stage] = true
	}
	for _, a := range attackRegistry {
		if a.Name == "" || a.Class == "" {
			return fmt.Errorf("taxonomy: attack with empty name/class: %+v", a)
		}
		if len(a.Algorithms) == 0 || len(a.CIA) == 0 {
			return fmt.Errorf("taxonomy: attack %q missing algorithms or CIA", a.Name)
		}
		for _, algo := range a.Algorithms {
			if !known[algo] {
				return fmt.Errorf("taxonomy: attack %q references unknown algorithm %q", a.Name, algo)
			}
		}
		if !stagesWithVuln[a.Stage] {
			return fmt.Errorf("taxonomy: attack %q targets stage %q with no documented vulnerability", a.Name, a.Stage)
		}
	}
	return nil
}
