package core

import (
	"fmt"
	"sort"

	"repro/internal/sensor"
)

// TrustWeights assigns a relative weight to each trustworthy property when
// aggregating a trust score. The paper discusses (§VIII) that a single
// agnostic score is application-dependent; weights make that dependence
// explicit.
type TrustWeights map[sensor.Property]float64

// DefaultTrustWeights weighs the properties the reproduction's sensors
// measure.
func DefaultTrustWeights() TrustWeights {
	return TrustWeights{
		sensor.PropPerformance:    0.4,
		sensor.PropResilience:     0.3,
		sensor.PropExplainability: 0.3,
	}
}

// TrustReport aggregates the latest sensor readings into a weighted score.
type TrustReport struct {
	// Score is in [0, 1]; higher is more trustworthy.
	Score float64 `json:"score"`
	// PerProperty holds the mean normalized value per property.
	PerProperty map[sensor.Property]float64 `json:"perProperty"`
	// Alerts counts readings currently in alert state.
	Alerts int `json:"alerts"`
	// Sensors lists the readings that entered the report.
	Sensors []sensor.Reading `json:"sensors"`
}

// Trust computes a trust report from the given readings. Reading values
// must already be normalized to [0, 1] with higher = more trustworthy
// (use e.g. 1-impact for resilience impact measurements). Properties with
// zero weight or no readings are excluded from the score; remaining
// weights are renormalized.
func Trust(readings []sensor.Reading, weights TrustWeights) (TrustReport, error) {
	if len(readings) == 0 {
		return TrustReport{}, fmt.Errorf("core: no readings to aggregate")
	}
	if len(weights) == 0 {
		weights = DefaultTrustWeights()
	}
	sums := make(map[sensor.Property]float64)
	counts := make(map[sensor.Property]int)
	rep := TrustReport{PerProperty: make(map[sensor.Property]float64)}
	for _, r := range readings {
		if r.Value < 0 || r.Value > 1 {
			return TrustReport{}, fmt.Errorf("core: reading %q value %v outside [0,1]; normalize before aggregation", r.Sensor, r.Value)
		}
		sums[r.Property] += r.Value
		counts[r.Property]++
		if r.Alert {
			rep.Alerts++
		}
		rep.Sensors = append(rep.Sensors, r)
	}
	sort.Slice(rep.Sensors, func(i, j int) bool { return rep.Sensors[i].Sensor < rep.Sensors[j].Sensor })

	var weightTotal, score float64
	for prop, n := range counts {
		mean := sums[prop] / float64(n)
		rep.PerProperty[prop] = mean
		w := weights[prop]
		if w <= 0 {
			continue
		}
		score += w * mean
		weightTotal += w
	}
	if weightTotal == 0 {
		return TrustReport{}, fmt.Errorf("core: no reading matches a weighted property")
	}
	rep.Score = score / weightTotal
	return rep, nil
}
