package dashboard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/audit"
)

func TestIngestFeedsAuditTrail(t *testing.T) {
	dash := NewServer(nil)
	srv := httptest.NewServer(dash)
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	if err := c.Publish(context.Background(), reading("acc", 0.95, false)); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), reading("acc", 0.40, true)); err != nil {
		t.Fatal(err)
	}

	trail := dash.Audit()
	if trail.Len() != 2 {
		t.Fatalf("audit records %d", trail.Len())
	}
	if err := trail.Verify(); err != nil {
		t.Fatal(err)
	}
	alerts := trail.Records(audit.KindAlert)
	if len(alerts) != 1 {
		t.Fatalf("alert records %d", len(alerts))
	}

	// The audit API serves the chain and its verification.
	resp, err := http.Get(srv.URL + "/api/audit?kind=alert")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []audit.Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Actor != "acc" {
		t.Fatalf("served audit %+v", recs)
	}

	vresp, err := http.Get(srv.URL + "/api/audit/verify")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d", vresp.StatusCode)
	}
	var verdict struct {
		OK      bool `json:"ok"`
		Records int  `json:"records"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if !verdict.OK || verdict.Records != 2 {
		t.Fatalf("verdict %+v", verdict)
	}
}
