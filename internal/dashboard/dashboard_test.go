package dashboard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sensor"
)

func reading(name string, v float64, alert bool) sensor.Reading {
	return sensor.Reading{
		Sensor:   name,
		Property: sensor.PropPerformance,
		Value:    v,
		Time:     time.Now(),
		Alert:    alert,
		AlertMsg: map[bool]string{true: "out of range"}[alert],
	}
}

func TestStoreAddAndSeries(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Add(reading("acc", float64(i), false))
	}
	series := s.Series("acc", 0)
	if len(series) != 3 {
		t.Fatalf("capacity not enforced: %d", len(series))
	}
	if series[0].Value != 2 || series[2].Value != 4 {
		t.Fatalf("wrong window kept: %v..%v", series[0].Value, series[2].Value)
	}
	if got := s.Series("acc", 2); len(got) != 2 || got[1].Value != 4 {
		t.Fatalf("limited series wrong: %+v", got)
	}
	if got := s.Series("ghost", 0); len(got) != 0 {
		t.Fatal("unknown sensor should return empty series")
	}
}

func TestStoreLatestAndAlerts(t *testing.T) {
	s := NewStore(0)
	s.Add(reading("a", 1, false))
	s.Add(reading("a", 2, true))
	s.Add(reading("b", 7, false))
	latest := s.Latest()
	if latest["a"].Value != 2 || latest["b"].Value != 7 {
		t.Fatalf("latest %+v", latest)
	}
	if len(s.Alerts()) != 1 {
		t.Fatalf("alerts %d", len(s.Alerts()))
	}
	if got := s.Sensors(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sensors %v", got)
	}
}

func TestServerIngestAndQuery(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	if err := c.Publish(context.Background(), reading("acc", 0.97, false)); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), reading("acc", 0.5, true)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/api/series?sensor=acc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var series []sensor.Reading
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[1].Value != 0.5 {
		t.Fatalf("series %+v", series)
	}

	resp2, err := http.Get(srv.URL + "/api/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var summary struct {
		Latest map[string]sensor.Reading `json:"latest"`
		Alerts int                       `json:"alerts"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if summary.Alerts != 1 || summary.Latest["acc"].Value != 0.5 {
		t.Fatalf("summary %+v", summary)
	}
}

func TestServerIngestValidation(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/api/readings", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json accepted: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/api/readings", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless reading accepted: %d", resp.StatusCode)
	}
}

func TestServerSeriesValidation(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/series")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing sensor param accepted: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/api/series?sensor=a&n=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative n accepted: %d", resp.StatusCode)
	}
}

func TestServerHTMLIndex(t *testing.T) {
	store := NewStore(0)
	store.Add(reading("acc<script>", 0.9, true)) // must be escaped
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	html := body.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	if !strings.Contains(html, "SPATIAL AI Dashboard") {
		t.Fatal("missing dashboard title")
	}
	if strings.Contains(html, "<script>") {
		t.Fatal("sensor name not escaped")
	}
	if !strings.Contains(html, "ALERT") {
		t.Fatal("alert row missing")
	}
}

func TestStoreSinkAndManagerIntegration(t *testing.T) {
	store := NewStore(0)
	m := sensor.NewManager(StoreSink{Store: store})
	if err := m.Register(&sensor.Sensor{
		Name:     "acc",
		Property: sensor.PropPerformance,
		Interval: 10 * time.Millisecond,
		Collector: sensor.CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
			return 0.9, nil, nil
		}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(store.Series("acc", 0)) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("readings never reached store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
}

func TestClientPublishToDeadServer(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"}
	if err := c.Publish(context.Background(), reading("x", 1, false)); err == nil {
		t.Fatal("expected publish error")
	}
}
