package dashboard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/sensor"
	"repro/internal/telemetry"
)

// Server is the AI dashboard's HTTP surface. It implements http.Handler.
// Every ingested reading is also appended to a hash-chained audit log, the
// paper's accountability requirement ("facilitates the verification of AI
// systems for potential audits").
type Server struct {
	store   *Store
	trail   *audit.Log
	mux     *http.ServeMux
	tmpl    *template.Template
	tel     *telemetry.Registry
	tracer  *telemetry.Tracer
	handler http.Handler
	metricH http.Handler
	traceH  http.Handler
}

// NewServer builds a dashboard server over the given store (a new store is
// created when nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore(0)
	}
	tel := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(tel)
	tracer := telemetry.NewTracer(512)
	s := &Server{
		store:   store,
		trail:   audit.NewLog(),
		mux:     http.NewServeMux(),
		tmpl:    template.Must(template.New("index").Parse(indexHTML)),
		tel:     tel,
		tracer:  tracer,
		metricH: tel.Handler(),
		traceH:  tracer.Handler(),
	}
	s.handler = telemetry.NewMiddleware(telemetry.MiddlewareConfig{
		Registry: tel,
		Tracer:   tracer,
		Service:  "dashboard",
		// Collapse unknown paths into one label so scraping arbitrary
		// 404s cannot blow up metric cardinality.
		Route: func(r *http.Request) string {
			p := r.URL.Path
			if p == "/" || p == "/healthz" || strings.HasPrefix(p, "/api/") {
				return p
			}
			return "other"
		},
	})(s.mux)
	s.mux.HandleFunc("POST /api/readings", s.handleIngest)
	s.mux.HandleFunc("GET /api/sensors", s.handleSensors)
	s.mux.HandleFunc("GET /api/series", s.handleSeries)
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	s.mux.HandleFunc("GET /api/alerts", s.handleAlerts)
	s.mux.HandleFunc("GET /api/audit", s.handleAudit)
	s.mux.HandleFunc("GET /api/audit/verify", s.handleAuditVerify)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"service":"dashboard","status":"ok"}`)
	})
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// Store exposes the backing store (for in-process wiring).
func (s *Server) Store() *Store { return s.store }

// Audit exposes the hash-chained audit trail.
func (s *Server) Audit() *audit.Log { return s.trail }

// Telemetry exposes the dashboard's own metric registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Tracer exposes the dashboard's span ring buffer.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	kind := audit.Kind(r.URL.Query().Get("kind"))
	writeJSON(w, http.StatusOK, s.trail.Records(kind))
}

func (s *Server) handleAuditVerify(w http.ResponseWriter, r *http.Request) {
	if err := s.trail.Verify(); err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{"ok": false, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "records": s.trail.Len()})
}

// ServeHTTP implements http.Handler. The observability endpoints are
// served outside the middleware so scrapes do not count as dashboard
// traffic.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		s.metricH.ServeHTTP(w, r)
	case "/traces":
		s.traceH.ServeHTTP(w, r)
	default:
		s.handler.ServeHTTP(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dashboard: encode response: %v", err)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var reading sensor.Reading
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reading); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if reading.Sensor == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing sensor name"})
		return
	}
	s.store.Add(reading)
	kind := audit.KindReading
	if reading.Alert {
		kind = audit.KindAlert
	}
	if _, err := s.trail.Append(kind, reading.Sensor, reading); err != nil {
		log.Printf("dashboard: audit append: %v", err)
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted"})
}

func (s *Server) handleSensors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Sensors())
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("sensor")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ?sensor="})
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid ?n="})
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, s.store.Series(name, n))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"latest": s.store.Latest(),
		"alerts": len(s.store.Alerts()),
	})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Alerts())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	latest := s.store.Latest()
	type row struct {
		Sensor   string
		Property string
		Value    string
		Time     string
		Alert    bool
		AlertMsg string
	}
	var rows []row
	for _, name := range s.store.Sensors() {
		rd, ok := latest[name]
		if !ok {
			continue
		}
		rows = append(rows, row{
			Sensor:   rd.Sensor,
			Property: string(rd.Property),
			Value:    strconv.FormatFloat(rd.Value, 'g', 6, 64),
			Time:     rd.Time.Format("15:04:05"),
			Alert:    rd.Alert,
			AlertMsg: rd.AlertMsg,
		})
	}
	var buf bytes.Buffer
	if err := s.tmpl.Execute(&buf, map[string]any{
		"Rows":    rows,
		"Alerts":  s.store.Alerts(),
		"Metrics": s.metricRows(),
		"Spans":   s.tracer.Len(),
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}

// metricRow is one line of the HTML telemetry snapshot.
type metricRow struct {
	Name   string
	Labels string
	Value  string
}

// metricRows flattens the registry snapshot for the HTML view: counters
// and gauges verbatim, histograms as count/mean/p50/p95/p99.
func (s *Server) metricRows() []metricRow {
	var rows []metricRow
	for _, fam := range s.tel.Gather() {
		for _, se := range fam.Series {
			var parts []string
			for _, l := range se.Labels {
				parts = append(parts, l.Name+"="+l.Value)
			}
			labels := strings.Join(parts, ", ")
			switch fam.Type {
			case telemetry.TypeHistogram:
				mean := 0.0
				if se.Count > 0 {
					mean = se.Sum / float64(se.Count)
				}
				rows = append(rows, metricRow{
					Name:   fam.Name,
					Labels: labels,
					Value: fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms",
						se.Count, mean*1e3, se.Quantile(0.5)*1e3,
						se.Quantile(0.95)*1e3, se.Quantile(0.99)*1e3),
				})
			default:
				rows = append(rows, metricRow{
					Name:   fam.Name,
					Labels: labels,
					Value:  strconv.FormatFloat(se.Value, 'g', 6, 64),
				})
			}
		}
	}
	return rows
}

const indexHTML = `<!DOCTYPE html>
<html><head><title>SPATIAL AI Dashboard</title>
<style>
body{font-family:sans-serif;margin:2rem;background:#fafafa}
table{border-collapse:collapse;min-width:40rem}
th,td{border:1px solid #ccc;padding:.4rem .8rem;text-align:left}
th{background:#eee}
.alert{background:#ffe0e0}
h1{font-size:1.4rem}
</style></head>
<body>
<h1>SPATIAL AI Dashboard</h1>
<p>Latest trustworthy-property measurements collected by the AI sensors.</p>
<table>
<tr><th>Sensor</th><th>Property</th><th>Value</th><th>Time</th><th>Status</th></tr>
{{range .Rows}}<tr{{if .Alert}} class="alert"{{end}}>
<td>{{.Sensor}}</td><td>{{.Property}}</td><td>{{.Value}}</td><td>{{.Time}}</td>
<td>{{if .Alert}}ALERT: {{.AlertMsg}}{{else}}ok{{end}}</td></tr>
{{end}}
</table>
<p>{{len .Alerts}} alert(s) recorded.</p>
<h2>Telemetry snapshot</h2>
<p>Live metrics of this dashboard process ({{.Spans}} span(s) retained;
full exposition at <a href="/metrics">/metrics</a>, traces at
<a href="/traces">/traces</a>).</p>
<table>
<tr><th>Metric</th><th>Labels</th><th>Value</th></tr>
{{range .Metrics}}<tr><td>{{.Name}}</td><td>{{.Labels}}</td><td>{{.Value}}</td></tr>
{{end}}
</table>
</body></html>`

// Client publishes sensor readings to a dashboard over HTTP; it implements
// sensor.Sink.
type Client struct {
	// BaseURL is the dashboard root, e.g. "http://localhost:8088".
	BaseURL string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
}

var _ sensor.Sink = (*Client)(nil)

// Publish implements sensor.Sink.
func (c *Client) Publish(ctx context.Context, r sensor.Reading) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("marshal reading: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/api/readings", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := c.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("publish reading: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("publish reading: status %d", resp.StatusCode)
	}
	return nil
}

// StoreSink adapts a Store to sensor.Sink for in-process wiring.
type StoreSink struct{ Store *Store }

var _ sensor.Sink = StoreSink{}

// Publish implements sensor.Sink.
func (s StoreSink) Publish(_ context.Context, r sensor.Reading) error {
	s.Store.Add(r)
	return nil
}
