// Package dashboard implements SPATIAL's AI dashboard back-end: an ingest
// API fed by AI sensors, a bounded in-memory time-series store, alert
// tracking, and a human-facing view (JSON + self-contained HTML) that lets
// operators monitor the trustworthy properties of deployed AI models.
package dashboard

import (
	"sort"
	"sync"

	"repro/internal/sensor"
)

// Store is a bounded per-sensor time-series store.
type Store struct {
	capacity int

	mu     sync.RWMutex
	series map[string][]sensor.Reading
	alerts []sensor.Reading
}

// NewStore builds a store keeping up to capacity readings per sensor
// (default 1024).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Store{capacity: capacity, series: make(map[string][]sensor.Reading)}
}

// Add ingests one reading.
func (s *Store) Add(r sensor.Reading) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := append(s.series[r.Sensor], r)
	if len(buf) > s.capacity {
		buf = buf[len(buf)-s.capacity:]
	}
	s.series[r.Sensor] = buf
	if r.Alert {
		s.alerts = append(s.alerts, r)
		if len(s.alerts) > s.capacity {
			s.alerts = s.alerts[len(s.alerts)-s.capacity:]
		}
	}
}

// Sensors lists sensors with stored readings, sorted by name.
func (s *Store) Sensors() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Series returns up to n most recent readings of a sensor (all if n <= 0).
func (s *Store) Series(name string, n int) []sensor.Reading {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf := s.series[name]
	if n > 0 && len(buf) > n {
		buf = buf[len(buf)-n:]
	}
	out := make([]sensor.Reading, len(buf))
	copy(out, buf)
	return out
}

// Latest returns the newest reading per sensor.
func (s *Store) Latest() map[string]sensor.Reading {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]sensor.Reading, len(s.series))
	for name, buf := range s.series {
		if len(buf) > 0 {
			out[name] = buf[len(buf)-1]
		}
	}
	return out
}

// Alerts returns the stored alert readings, newest last.
func (s *Store) Alerts() []sensor.Reading {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]sensor.Reading, len(s.alerts))
	copy(out, s.alerts)
	return out
}
