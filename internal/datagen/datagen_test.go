package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

func TestUniMiBShape(t *testing.T) {
	cfg := UniMiBConfig{Samples: 340, Seed: 1}
	tb, err := UniMiB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 340 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.NumFeatures() != 453 {
		t.Fatalf("features = %d, want 453 (3 axes x 151 samples)", tb.NumFeatures())
	}
	if tb.NumClasses() != 17 {
		t.Fatalf("classes = %d, want 17", tb.NumClasses())
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniMiBClassMix(t *testing.T) {
	tb, err := UniMiB(UniMiBConfig{Samples: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := tb.ClassCounts()
	var adl, fall int
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d has no samples", c)
		}
		if c < 9 {
			adl += n
		} else {
			fall += n
		}
	}
	frac := float64(fall) / 1000
	if frac < 0.3 || frac > 0.42 {
		t.Fatalf("fall fraction %.2f outside [0.30, 0.42]", frac)
	}
}

func TestUniMiBBinaryLabels(t *testing.T) {
	tb, err := UniMiBBinary(UniMiBConfig{Samples: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumClasses() != 2 || tb.ClassNames[1] != "fall" {
		t.Fatalf("classes %v", tb.ClassNames)
	}
	counts := tb.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate binary mix %v", counts)
	}
}

func TestUniMiBDeterministic(t *testing.T) {
	a, err := UniMiB(UniMiBConfig{Samples: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniMiB(UniMiBConfig{Samples: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
	c, err := UniMiB(UniMiBConfig{Samples: 50, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X {
		if a.X[i][0] != c.X[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestUniMiBRejectsBadConfig(t *testing.T) {
	if _, err := UniMiB(UniMiBConfig{Samples: 0}); err == nil {
		t.Fatal("expected error for zero samples")
	}
}

func TestUniMiBFallsHaveImpactSpikes(t *testing.T) {
	tb, err := UniMiBBinary(UniMiBConfig{Samples: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Mean per-window max |az| should be clearly larger for falls.
	var fallMax, adlMax float64
	var fallN, adlN int
	for i, row := range tb.X {
		m := 0.0
		for _, v := range row[302:453] { // az block
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		if tb.Y[i] == 1 {
			fallMax += m
			fallN++
		} else {
			adlMax += m
			adlN++
		}
	}
	fallMax /= float64(fallN)
	adlMax /= float64(adlN)
	if fallMax < adlMax*1.2 {
		t.Fatalf("fall windows not spikier than ADL: %.2f vs %.2f", fallMax, adlMax)
	}
}

// TestUniMiBModelOrdering is the core calibration check: nonlinear models
// must clearly beat the linear baseline, mirroring the paper's LR 73% vs
// DNN/MLP/RF 97%.
func TestUniMiBModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training several models")
	}
	tb, err := UniMiBBinary(UniMiBConfig{Samples: 1600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	train, test, err := tb.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	scaler, err := dataset.FitScaler(train)
	if err != nil {
		t.Fatal(err)
	}
	strain, stest := train.Clone(), test.Clone()
	if err := scaler.Transform(strain); err != nil {
		t.Fatal(err)
	}
	if err := scaler.Transform(stest); err != nil {
		t.Fatal(err)
	}

	accOf := func(name string, tr, te *dataset.Table) float64 {
		c, err := ml.NewByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Fit(tr); err != nil {
			t.Fatal(err)
		}
		m, err := ml.Evaluate(c, te)
		if err != nil {
			t.Fatal(err)
		}
		return m.Accuracy
	}
	lr := accOf("lr", strain, stest)
	mlp := accOf("mlp", strain, stest)
	rf := accOf("rf", train, test)
	if mlp < 0.9 {
		t.Fatalf("mlp accuracy %.3f < 0.90", mlp)
	}
	if rf < 0.88 {
		t.Fatalf("rf accuracy %.3f < 0.88", rf)
	}
	if lr > mlp-0.05 {
		t.Fatalf("lr (%.3f) should trail mlp (%.3f) clearly", lr, mlp)
	}
}

func TestNetTrafficShape(t *testing.T) {
	tb, flows, err := NetTraffic(DefaultNetTrafficConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 382 || len(flows) != 382 {
		t.Fatalf("traces = %d/%d, want 382", tb.Len(), len(flows))
	}
	if tb.NumFeatures() != 21 {
		t.Fatalf("features = %d, want 21", tb.NumFeatures())
	}
	counts := tb.ClassCounts()
	if counts[0] != 304 || counts[1] != 34 || counts[2] != 44 {
		t.Fatalf("class mix %v, want [304 34 44]", counts)
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNetTrafficDeterministic(t *testing.T) {
	cfg := NetTrafficConfig{Web: 10, Interactive: 5, Video: 5, Seed: 11}
	a, _, err := NetTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NetTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("non-deterministic traces")
			}
		}
	}
}

func TestNetTrafficRejectsBadConfig(t *testing.T) {
	if _, _, err := NetTraffic(NetTrafficConfig{}); err == nil {
		t.Fatal("expected error for zero traces")
	}
	if _, _, err := NetTraffic(NetTrafficConfig{Web: -1, Video: 2}); err == nil {
		t.Fatal("expected error for negative count")
	}
}

func TestVideoFlowsAreDownlinkDominated(t *testing.T) {
	tb, _, err := NetTraffic(NetTrafficConfig{Web: 20, Interactive: 10, Video: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ratioIdx := indexOf(t, NetFeatureNames(), "speed_down_up_ratio")
	durIdx := indexOf(t, NetFeatureNames(), "duration_s")
	var videoRatio, webRatio, videoDur, webDur float64
	var nv, nw int
	for i, row := range tb.X {
		switch tb.ClassNames[tb.Y[i]] {
		case ClassVideo:
			videoRatio += row[ratioIdx]
			videoDur += row[durIdx]
			nv++
		case ClassWeb:
			webRatio += row[ratioIdx]
			webDur += row[durIdx]
			nw++
		}
	}
	videoRatio /= float64(nv)
	webRatio /= float64(nw)
	if videoRatio <= webRatio {
		t.Fatalf("video down/up ratio %.1f should exceed web %.1f", videoRatio, webRatio)
	}
	if videoDur/float64(1) <= webDur/float64(1) {
		t.Fatalf("video duration %.1f should exceed web %.1f", videoDur/float64(nv), webDur/float64(nw))
	}
}

func TestExtractFlowFeaturesEmptyFlow(t *testing.T) {
	if _, err := ExtractFlowFeatures(Flow{}); err == nil {
		t.Fatal("expected error for empty flow")
	}
}

func TestExtractFlowFeaturesSinglePacket(t *testing.T) {
	f := Flow{Packets: []Packet{{Time: 0, Dir: Uplink, Proto: ProtoTCP, Size: 100}}}
	feats, err := ExtractFlowFeatures(f)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range feats {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d non-finite for single-packet flow", i)
		}
	}
}

// TestNetTrafficSeparability verifies the classes are learnable at the
// paper's reported level (>= 94%) by at least one model family.
func TestNetTrafficSeparability(t *testing.T) {
	if testing.Short() {
		t.Skip("training model")
	}
	tb, _, err := NetTraffic(DefaultNetTrafficConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	train, test, err := tb.StratifiedSplit(rng, 0.73) // paper: 103 test samples
	if err != nil {
		t.Fatal(err)
	}
	c, err := ml.NewByName("lgbm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := ml.Evaluate(c, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.9 {
		t.Fatalf("lgbm accuracy %.3f < 0.90 on synthetic traces", m.Accuracy)
	}
}

func indexOf(t *testing.T, names []string, want string) int {
	t.Helper()
	for i, n := range names {
		if n == want {
			return i
		}
	}
	t.Fatalf("feature %q not found", want)
	return -1
}
