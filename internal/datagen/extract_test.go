package datagen

import (
	"math"
	"testing"
)

// handFlow builds a fully deterministic 4-packet flow:
//
//	t=0.0  up   TCP+TLS 100B
//	t=1.0  down TCP     1400B
//	t=2.0  down UDP     200B
//	t=4.0  up   UDP     50B
func handFlow() Flow {
	return Flow{Packets: []Packet{
		{Time: 0.0, Dir: Uplink, Proto: ProtoTCP, Size: 100, TLS: true},
		{Time: 1.0, Dir: Downlink, Proto: ProtoTCP, Size: 1400},
		{Time: 2.0, Dir: Downlink, Proto: ProtoUDP, Size: 200},
		{Time: 4.0, Dir: Uplink, Proto: ProtoUDP, Size: 50},
	}}
}

func featIdx(t *testing.T, name string) int {
	t.Helper()
	for i, n := range NetFeatureNames() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no feature %q", name)
	return -1
}

func TestExtractFlowFeaturesExactValues(t *testing.T) {
	feats, err := ExtractFlowFeatures(handFlow())
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, want float64) {
		t.Helper()
		if got := feats[featIdx(t, name)]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	check("duration_s", 4.0)
	check("idle_max_s", 2.0) // the 2s gap before the last packet
	check("proto_tcp", 0.5)  // 2 of 4 packets
	check("proto_udp", 0.5)
	check("proto_tls", 100.0/1500) // TLS bytes over TCP bytes
	check("up_pkts", 2)
	check("up_bytes", 150)
	check("up_mean_pkt_size", 75)
	check("up_pkt_rate", 0.5) // 2 packets / 4s
	check("down_pkts", 2)
	check("down_bytes", 1600)
	check("down_mean_pkt_size", 800)
	check("down_pkt_rate", 0.5)
	check("speed_up_bps", 150*8/4.0)
	check("speed_down_bps", 1600*8/4.0)
	check("speed_down_up_ratio", 1600.0/150)
	// Peak throughput: second 1 carries the 1400B packet = 11200 bits.
	check("speed_peak_bps", 11200)
}

func TestExtractFlowFeaturesSortsPackets(t *testing.T) {
	f := handFlow()
	// Reverse packet order; extraction must be order-invariant.
	for i, j := 0, len(f.Packets)-1; i < j; i, j = i+1, j-1 {
		f.Packets[i], f.Packets[j] = f.Packets[j], f.Packets[i]
	}
	a, err := ExtractFlowFeatures(handFlow())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractFlowFeatures(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d order-dependent: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExtractFlowFeaturesDoesNotMutateInput(t *testing.T) {
	f := Flow{Packets: []Packet{
		{Time: 3, Dir: Uplink, Proto: ProtoTCP, Size: 10},
		{Time: 1, Dir: Uplink, Proto: ProtoTCP, Size: 20},
	}}
	if _, err := ExtractFlowFeatures(f); err != nil {
		t.Fatal(err)
	}
	if f.Packets[0].Time != 3 {
		t.Fatal("extractor reordered the caller's packet slice")
	}
}

func TestBurstinessValues(t *testing.T) {
	// Perfectly paced gaps -> burstiness 0.
	if b := burstiness([]float64{1, 1, 1}); b != 0 {
		t.Fatalf("paced burstiness %v", b)
	}
	// Alternating gaps have positive coefficient of variation.
	if b := burstiness([]float64{0.1, 2, 0.1, 2}); b <= 0 {
		t.Fatalf("bursty burstiness %v", b)
	}
	if b := burstiness([]float64{1}); b != 0 {
		t.Fatalf("single-gap burstiness %v", b)
	}
}
