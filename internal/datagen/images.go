package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Shape classes of the synthetic image dataset used for the image-XAI
// workloads (occlusion sensitivity, image LIME, and the fig-8d heavy-load
// experiment).
const (
	ShapeBox   = "box"
	ShapeCross = "cross"
	ShapeDisc  = "disc"
)

// ShapesConfig parameterizes the image generator.
type ShapesConfig struct {
	// Samples is the total number of images.
	Samples int
	// Size is the square image side length (default 24).
	Size int
	// NoiseStd is additive pixel noise (default 0.1).
	NoiseStd float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultShapesConfig returns the geometry used by the experiments.
func DefaultShapesConfig() ShapesConfig {
	return ShapesConfig{Samples: 600, Size: 24, NoiseStd: 0.1, Seed: 1}
}

// Shapes generates flattened grayscale images of a box outline, a cross,
// or a filled disc at jittered positions and scales. Pixel values are in
// [0, 1] plus noise; features are row-major "px_y_x".
func Shapes(cfg ShapesConfig) (*dataset.Table, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("datagen: Samples must be positive, got %d", cfg.Samples)
	}
	if cfg.Size <= 7 {
		cfg.Size = 24
	}
	if cfg.NoiseStd <= 0 {
		cfg.NoiseStd = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	size := cfg.Size

	names := make([]string, 0, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			names = append(names, fmt.Sprintf("px_%02d_%02d", y, x))
		}
	}
	t := dataset.New("shapes-synthetic", names, []string{ShapeBox, ShapeCross, ShapeDisc})

	for i := 0; i < cfg.Samples; i++ {
		class := i % 3
		img := make([]float64, size*size)
		cx := size/2 + rng.Intn(5) - 2
		cy := size/2 + rng.Intn(5) - 2
		r := size/4 + rng.Intn(3) - 1
		switch class {
		case 0:
			drawBox(img, size, cx, cy, r)
		case 1:
			drawCross(img, size, cx, cy, r)
		case 2:
			drawDisc(img, size, cx, cy, r)
		}
		for p := range img {
			img[p] += rng.NormFloat64() * cfg.NoiseStd
		}
		if err := t.Append(img, class); err != nil {
			return nil, err
		}
	}
	t.Shuffle(rng)
	return t, nil
}

func setPx(img []float64, size, x, y int, v float64) {
	if x >= 0 && x < size && y >= 0 && y < size {
		img[y*size+x] = v
	}
}

func drawBox(img []float64, size, cx, cy, r int) {
	for d := -r; d <= r; d++ {
		setPx(img, size, cx+d, cy-r, 1)
		setPx(img, size, cx+d, cy+r, 1)
		setPx(img, size, cx-r, cy+d, 1)
		setPx(img, size, cx+r, cy+d, 1)
	}
}

func drawCross(img []float64, size, cx, cy, r int) {
	for d := -r; d <= r; d++ {
		setPx(img, size, cx+d, cy, 1)
		setPx(img, size, cx, cy+d, 1)
	}
}

func drawDisc(img []float64, size, cx, cy, r int) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := float64(x-cx), float64(y-cy)
			if math.Sqrt(dx*dx+dy*dy) <= float64(r) {
				setPx(img, size, x, y, 1)
			}
		}
	}
}
