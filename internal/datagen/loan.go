package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Loan-approval dataset: the fairness example the paper's challenges
// section describes ("in a loan application, fairness can be applied to
// identify data biases in individual or specific groups"). The generator
// produces applicants from two demographic groups with identical
// creditworthiness distributions but historically biased approval labels,
// so a model trained on the raw history inherits measurable group unfairness.

// LoanConfig parameterizes the generator.
type LoanConfig struct {
	// Samples is the number of applicants.
	Samples int
	// MinorityFrac is the fraction of group-B applicants (default 0.3).
	MinorityFrac float64
	// Bias is the extra approval-score margin demanded of group B in
	// the historical labels (0 = fair history; default 1.5).
	Bias float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultLoanConfig returns the calibrated generator settings.
func DefaultLoanConfig() LoanConfig {
	return LoanConfig{Samples: 1000, MinorityFrac: 0.3, Bias: 1.5, Seed: 1}
}

// LoanGroupFeature is the index of the protected-attribute column in the
// generated table (0 = group A, 1 = group B).
const LoanGroupFeature = 5

// loanFeatureNames: the protected attribute is an explicit column so bias
// detection (and bias mitigation by dropping it) can be demonstrated.
var loanFeatureNames = []string{
	"income_k", "debt_ratio", "years_employed", "credit_history_years", "prior_defaults", "group",
}

// Loan generates the dataset. Class 0 = denied, 1 = approved. The
// returned group slice holds each applicant's group (0 or 1), aligned
// with the table rows.
func Loan(cfg LoanConfig) (*dataset.Table, []int, error) {
	if cfg.Samples <= 0 {
		return nil, nil, fmt.Errorf("datagen: Samples must be positive, got %d", cfg.Samples)
	}
	if cfg.MinorityFrac < 0 || cfg.MinorityFrac > 1 {
		return nil, nil, fmt.Errorf("datagen: MinorityFrac %v outside [0,1]", cfg.MinorityFrac)
	}
	if cfg.MinorityFrac == 0 {
		cfg.MinorityFrac = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := dataset.New("loan-synthetic", loanFeatureNames, []string{"denied", "approved"})
	groups := make([]int, 0, cfg.Samples)

	for i := 0; i < cfg.Samples; i++ {
		group := 0
		if rng.Float64() < cfg.MinorityFrac {
			group = 1
		}
		// Identical creditworthiness distributions for both groups.
		income := 30 + rng.ExpFloat64()*40
		debt := clamp01(0.1 + rng.Float64()*0.7)
		years := rng.Float64() * 20
		history := rng.Float64() * 25
		defaults := float64(rng.Intn(4))

		// True creditworthiness score.
		score := 0.03*income - 2.5*debt + 0.08*years + 0.05*history - 0.9*defaults + rng.NormFloat64()*0.4

		// Historical decision: group B was held to a stricter bar.
		threshold := 0.5
		if group == 1 {
			threshold += cfg.Bias
		}
		label := 0
		if score > threshold {
			label = 1
		}
		row := []float64{income, debt, years, history, defaults, float64(group)}
		if err := t.Append(row, label); err != nil {
			return nil, nil, err
		}
		groups = append(groups, group)
	}
	return t, groups, nil
}
