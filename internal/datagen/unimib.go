// Package datagen synthesizes the two datasets the paper evaluates on.
// Both originals are unavailable (UniMiB SHAR cannot be redistributed; the
// network traces are proprietary), so this package generates statistical
// stand-ins that preserve the properties the experiments depend on — see
// DESIGN.md §3 for the substitution rationale.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// UniMiB window geometry: the real dataset uses ~3 s windows at ~50 Hz
// (151 samples) of 3-axis accelerometer data.
const (
	uniMiBWindow = 151
	uniMiBAxes   = 3
)

// ADL and fall class names follow the UniMiB SHAR taxonomy: 9 activities
// of daily living and 8 fall types.
var (
	uniMiBADLs = []string{
		"standing_up_from_sitting", "standing_up_from_lying", "walking",
		"running", "going_upstairs", "jumping", "going_downstairs",
		"lying_down", "sitting_down",
	}
	uniMiBFalls = []string{
		"falling_forward", "falling_rightward", "falling_backward",
		"falling_leftward", "falling_with_obstacle", "syncope",
		"falling_backward_sitting", "falling_frontal_knees",
	}
)

// UniMiBConfig parameterizes the accelerometer generator.
type UniMiBConfig struct {
	// Samples is the total number of windows to generate. The real
	// dataset has 11771; experiments use smaller deterministic draws.
	Samples int
	// Seed drives all randomness.
	Seed int64
	// NoiseStd is the per-sample sensor noise in g.
	NoiseStd float64
	// FullRotationFrac is the fraction of windows recorded with a
	// completely arbitrary device orientation (phone loose in a
	// pocket); the rest vary only in yaw. Arbitrary orientations remove
	// the linear orientation cue while leaving magnitude patterns
	// intact, which is what caps the linear baseline well below the
	// nonlinear models, as in the real dataset. The zero value selects
	// the calibrated default (0.45).
	FullRotationFrac float64
}

// DefaultUniMiBConfig mirrors the real dataset's class mix at a
// laptop-friendly size.
func DefaultUniMiBConfig() UniMiBConfig {
	return UniMiBConfig{Samples: 2400, Seed: 1, NoiseStd: 0.12}
}

// adlProfile describes the signal generator for one ADL class.
type adlProfile struct {
	freq      float64 // dominant gait frequency, Hz
	amp       float64 // oscillation amplitude, g
	tiltStart float64 // torso tilt at window start, radians
	tiltEnd   float64 // torso tilt at window end, radians
	jerk      float64 // transient amplitude for posture transitions
}

var adlProfiles = []adlProfile{
	{freq: 0.8, amp: 0.25, tiltStart: 1.35, tiltEnd: 0.15, jerk: 0.7}, // standing up from sitting
	{freq: 0.6, amp: 0.25, tiltStart: 1.55, tiltEnd: 0.15, jerk: 0.8}, // standing up from lying
	{freq: 1.8, amp: 0.45, tiltStart: 0.12, tiltEnd: 0.12, jerk: 0},   // walking
	{freq: 2.8, amp: 1.1, tiltStart: 0.18, tiltEnd: 0.18, jerk: 0},    // running
	{freq: 1.5, amp: 0.6, tiltStart: 0.25, tiltEnd: 0.25, jerk: 0},    // upstairs
	{freq: 2.2, amp: 1.5, tiltStart: 0.1, tiltEnd: 0.1, jerk: 0},      // jumping
	{freq: 1.7, amp: 0.7, tiltStart: 0.2, tiltEnd: 0.2, jerk: 0},      // downstairs
	{freq: 0.5, amp: 0.2, tiltStart: 0.2, tiltEnd: 1.5, jerk: 0.6},    // lying down
	{freq: 0.7, amp: 0.25, tiltStart: 0.15, tiltEnd: 1.3, jerk: 0.65}, // sitting down
}

// fallProfile describes the signal generator for one fall class.
type fallProfile struct {
	impactAmp float64 // peak impact acceleration, g
	impactLen int     // impact transient length, samples
	endTilt   float64 // post-fall orientation, radians from vertical
	slow      bool    // syncope-style slow collapse (weak impact)
	azimuth   float64 // fall direction in the horizontal plane
}

var fallProfiles = []fallProfile{
	{impactAmp: 3.6, impactLen: 7, endTilt: 1.5, azimuth: 0},                // forward
	{impactAmp: 3.4, impactLen: 7, endTilt: 1.5, azimuth: math.Pi / 2},      // rightward
	{impactAmp: 3.8, impactLen: 8, endTilt: 1.55, azimuth: math.Pi},         // backward
	{impactAmp: 3.4, impactLen: 7, endTilt: 1.5, azimuth: -math.Pi / 2},     // leftward
	{impactAmp: 4.4, impactLen: 10, endTilt: 1.45, azimuth: 0.3},            // with obstacle
	{impactAmp: 1.6, impactLen: 14, endTilt: 1.5, slow: true, azimuth: 0.8}, // syncope
	{impactAmp: 2.8, impactLen: 8, endTilt: 1.2, azimuth: math.Pi},          // backward onto chair
	{impactAmp: 3.0, impactLen: 6, endTilt: 1.35, azimuth: 0.1},             // frontal on knees
}

// UniMiBClassNames returns the 17 activity class names (ADLs then falls).
func UniMiBClassNames() []string {
	names := make([]string, 0, len(uniMiBADLs)+len(uniMiBFalls))
	names = append(names, uniMiBADLs...)
	names = append(names, uniMiBFalls...)
	return names
}

// UniMiB generates the 17-class accelerometer dataset. Roughly 64% of
// windows are ADLs and 36% falls, matching the real corpus.
func UniMiB(cfg UniMiBConfig) (*dataset.Table, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("datagen: Samples must be positive, got %d", cfg.Samples)
	}
	if cfg.NoiseStd <= 0 {
		cfg.NoiseStd = 0.12
	}
	if cfg.FullRotationFrac == 0 || cfg.FullRotationFrac < 0 || cfg.FullRotationFrac > 1 {
		cfg.FullRotationFrac = 0.45
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	featNames := make([]string, 0, uniMiBWindow*uniMiBAxes)
	for _, axis := range []string{"ax", "ay", "az"} {
		for s := 0; s < uniMiBWindow; s++ {
			featNames = append(featNames, fmt.Sprintf("%s_%03d", axis, s))
		}
	}
	t := dataset.New("unimib-shar-synthetic", featNames, UniMiBClassNames())

	nFalls := int(0.36 * float64(cfg.Samples))
	nADLs := cfg.Samples - nFalls
	for i := 0; i < nADLs; i++ {
		class := i % len(uniMiBADLs)
		row := genADLWindow(rng, adlProfiles[class], cfg.NoiseStd)
		rotateWindow(rng, row, rng.Float64() < cfg.FullRotationFrac)
		if err := t.Append(row, class); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nFalls; i++ {
		class := i % len(uniMiBFalls)
		row := genFallWindow(rng, fallProfiles[class], cfg.NoiseStd)
		rotateWindow(rng, row, rng.Float64() < cfg.FullRotationFrac)
		if err := t.Append(row, len(uniMiBADLs)+class); err != nil {
			return nil, err
		}
	}
	t.Shuffle(rng)
	return t, nil
}

// UniMiBBinary generates the binary fall-detection task of use case 1:
// class 0 "adl", class 1 "fall".
func UniMiBBinary(cfg UniMiBConfig) (*dataset.Table, error) {
	multi, err := UniMiB(cfg)
	if err != nil {
		return nil, err
	}
	bin := dataset.New(multi.Name+"-binary", multi.FeatureNames, []string{"adl", "fall"})
	for i, row := range multi.X {
		y := 0
		if multi.Y[i] >= len(uniMiBADLs) {
			y = 1
		}
		if err := bin.Append(row, y); err != nil {
			return nil, err
		}
	}
	return bin, nil
}

// genADLWindow synthesizes one ADL window: gravity projected through a
// (possibly transitioning) torso tilt plus class-periodic motion and
// sensor noise, with per-window subject jitter.
func genADLWindow(rng *rand.Rand, p adlProfile, noise float64) []float64 {
	amp := p.amp * (0.75 + 0.5*rng.Float64())
	freq := p.freq * (0.85 + 0.3*rng.Float64())
	phase := rng.Float64() * 2 * math.Pi
	azimuth := rng.Float64() * 2 * math.Pi
	tiltJit := rng.NormFloat64() * 0.12

	x := make([]float64, uniMiBWindow*uniMiBAxes)
	for s := 0; s < uniMiBWindow; s++ {
		frac := float64(s) / float64(uniMiBWindow-1)
		tilt := p.tiltStart + (p.tiltEnd-p.tiltStart)*smoothstep(frac) + tiltJit
		gx := math.Sin(tilt) * math.Cos(azimuth)
		gy := math.Sin(tilt) * math.Sin(azimuth)
		gz := math.Cos(tilt)

		osc := amp * math.Sin(2*math.Pi*freq*float64(s)/50+phase)
		// Posture-transition jerk near the middle of the window.
		var jerk float64
		if p.jerk > 0 {
			d := float64(s) - float64(uniMiBWindow)/2
			jerk = p.jerk * math.Exp(-d*d/80) * math.Sin(float64(s)/3)
		}
		x[s] = gx + 0.3*osc + jerk*0.5 + rng.NormFloat64()*noise
		x[uniMiBWindow+s] = gy + 0.3*osc + rng.NormFloat64()*noise
		x[2*uniMiBWindow+s] = gz + osc + jerk + rng.NormFloat64()*noise
	}
	return x
}

// genFallWindow synthesizes one fall: upright pre-fall activity, a
// free-fall dip followed by an impact spike at a random position, then a
// lying posture.
func genFallWindow(rng *rand.Rand, p fallProfile, noise float64) []float64 {
	impactAt := 40 + rng.Intn(60) // impact position varies per event
	impactAmp := p.impactAmp * (0.8 + 0.4*rng.Float64())
	azimuth := p.azimuth + rng.NormFloat64()*0.3
	endTilt := p.endTilt + rng.NormFloat64()*0.1
	preFreq := 1.2 + rng.Float64()
	phase := rng.Float64() * 2 * math.Pi

	x := make([]float64, uniMiBWindow*uniMiBAxes)
	for s := 0; s < uniMiBWindow; s++ {
		var gx, gy, gz, extra float64
		switch {
		case s < impactAt-p.impactLen:
			// Upright pre-fall motion.
			gz = 1
			extra = 0.2 * math.Sin(2*math.Pi*preFreq*float64(s)/50+phase)
		case s < impactAt:
			// Free fall: total acceleration collapses toward 0 g.
			fr := float64(impactAt-s) / float64(p.impactLen)
			gz = fr * 0.6
			if p.slow {
				gz = 0.4 + fr*0.5
			}
		case s < impactAt+p.impactLen:
			// Impact transient, decaying oscillation along the fall
			// direction.
			k := float64(s - impactAt)
			decay := math.Exp(-k / 3)
			spike := impactAmp * decay * math.Cos(k*1.9)
			gx = math.Sin(endTilt)*math.Cos(azimuth) + spike*math.Cos(azimuth)
			gy = math.Sin(endTilt)*math.Sin(azimuth) + spike*math.Sin(azimuth)
			gz = math.Cos(endTilt) + spike*0.7
		default:
			// Post-fall lying still.
			gx = math.Sin(endTilt) * math.Cos(azimuth)
			gy = math.Sin(endTilt) * math.Sin(azimuth)
			gz = math.Cos(endTilt)
		}
		x[s] = gx + extra*0.3 + rng.NormFloat64()*noise
		x[uniMiBWindow+s] = gy + extra*0.3 + rng.NormFloat64()*noise
		x[2*uniMiBWindow+s] = gz + extra + rng.NormFloat64()*noise
	}
	return x
}

// rotateWindow applies one rigid device rotation to every sample of the
// window, in place. When full is false the rotation is yaw-only (about the
// gravity axis), preserving the vertical component.
func rotateWindow(rng *rand.Rand, row []float64, full bool) {
	var r [3][3]float64
	if full {
		r = randomRotation(rng)
	} else {
		theta := rng.Float64() * 2 * math.Pi
		c, s := math.Cos(theta), math.Sin(theta)
		r = [3][3]float64{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
	}
	for i := 0; i < uniMiBWindow; i++ {
		x, y, z := row[i], row[uniMiBWindow+i], row[2*uniMiBWindow+i]
		row[i] = r[0][0]*x + r[0][1]*y + r[0][2]*z
		row[uniMiBWindow+i] = r[1][0]*x + r[1][1]*y + r[1][2]*z
		row[2*uniMiBWindow+i] = r[2][0]*x + r[2][1]*y + r[2][2]*z
	}
}

// randomRotation samples a uniformly distributed 3-D rotation matrix via
// Shoemake's random-quaternion construction.
func randomRotation(rng *rand.Rand) [3][3]float64 {
	u1, u2, u3 := rng.Float64(), rng.Float64(), rng.Float64()
	qx := math.Sqrt(1-u1) * math.Sin(2*math.Pi*u2)
	qy := math.Sqrt(1-u1) * math.Cos(2*math.Pi*u2)
	qz := math.Sqrt(u1) * math.Sin(2*math.Pi*u3)
	qw := math.Sqrt(u1) * math.Cos(2*math.Pi*u3)
	return [3][3]float64{
		{1 - 2*(qy*qy+qz*qz), 2 * (qx*qy - qz*qw), 2 * (qx*qz + qy*qw)},
		{2 * (qx*qy + qz*qw), 1 - 2*(qx*qx+qz*qz), 2 * (qy*qz - qx*qw)},
		{2 * (qx*qz - qy*qw), 2 * (qy*qz + qx*qw), 1 - 2*(qx*qx+qy*qy)},
	}
}

func smoothstep(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}
