package dataset

import "math"

// CleanReport summarizes what Clean changed, mirroring the "data
// collection" stage of the paper's AI pipeline (missing data handling and
// duplicate removal).
type CleanReport struct {
	ImputedValues     int `json:"imputedValues"`
	DroppedDuplicates int `json:"droppedDuplicates"`
	DroppedEmptyRows  int `json:"droppedEmptyRows"`
}

// Clean repairs the table in place: NaN/Inf feature values are imputed with
// the per-feature mean of the finite values, rows that are entirely
// non-finite are dropped, and exact duplicate rows (same features and
// label) are removed.
func Clean(t *Table) CleanReport {
	var rep CleanReport

	d := t.NumFeatures()
	means := make([]float64, d)
	counts := make([]int, d)
	for _, row := range t.X {
		for j, v := range row {
			if isFinite(v) {
				means[j] += v
				counts[j]++
			}
		}
	}
	for j := range means {
		if counts[j] > 0 {
			means[j] /= float64(counts[j])
		}
	}

	keptX := t.X[:0]
	keptY := t.Y[:0]
	for i, row := range t.X {
		finite := 0
		for j, v := range row {
			if isFinite(v) {
				finite++
			} else {
				row[j] = means[j]
				rep.ImputedValues++
			}
		}
		if finite == 0 && d > 0 {
			rep.DroppedEmptyRows++
			rep.ImputedValues -= d // the whole-row imputations do not count
			continue
		}
		keptX = append(keptX, row)
		keptY = append(keptY, t.Y[i])
	}
	t.X, t.Y = keptX, keptY

	seen := make(map[string]struct{}, len(t.X))
	dedupX := t.X[:0]
	dedupY := t.Y[:0]
	for i, row := range t.X {
		key := rowKey(row, t.Y[i])
		if _, dup := seen[key]; dup {
			rep.DroppedDuplicates++
			continue
		}
		seen[key] = struct{}{}
		dedupX = append(dedupX, row)
		dedupY = append(dedupY, t.Y[i])
	}
	t.X, t.Y = dedupX, dedupY
	return rep
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func rowKey(row []float64, y int) string {
	// Exact byte representation of the float64s plus the label.
	buf := make([]byte, 0, len(row)*8+4)
	for _, v := range row {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	}
	buf = append(buf, byte(y), byte(y>>8), byte(y>>16), byte(y>>24))
	return string(buf)
}
