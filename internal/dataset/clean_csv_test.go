package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCleanImputesNaN(t *testing.T) {
	tb := New("dirty", []string{"a", "b"}, []string{"x"})
	_ = tb.Append([]float64{1, 10}, 0)
	_ = tb.Append([]float64{3, 30}, 0)
	tb.X = append(tb.X, []float64{math.NaN(), 20})
	tb.Y = append(tb.Y, 0)
	rep := Clean(tb)
	if rep.ImputedValues != 1 {
		t.Fatalf("ImputedValues = %d", rep.ImputedValues)
	}
	if tb.X[2][0] != 2 { // mean of finite values 1 and 3
		t.Fatalf("imputed value %v, want 2", tb.X[2][0])
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanDropsAllNaNRows(t *testing.T) {
	tb := New("dirty", []string{"a", "b"}, []string{"x"})
	_ = tb.Append([]float64{1, 2}, 0)
	tb.X = append(tb.X, []float64{math.NaN(), math.Inf(1)})
	tb.Y = append(tb.Y, 0)
	rep := Clean(tb)
	if rep.DroppedEmptyRows != 1 {
		t.Fatalf("DroppedEmptyRows = %d", rep.DroppedEmptyRows)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after drop", tb.Len())
	}
}

func TestCleanDeduplicates(t *testing.T) {
	tb := New("dup", []string{"a"}, []string{"x", "y"})
	_ = tb.Append([]float64{1}, 0)
	_ = tb.Append([]float64{1}, 0) // exact duplicate
	_ = tb.Append([]float64{1}, 1) // same features, different label: keep
	rep := Clean(tb)
	if rep.DroppedDuplicates != 1 {
		t.Fatalf("DroppedDuplicates = %d", rep.DroppedDuplicates)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestCleanNoopOnCleanData(t *testing.T) {
	tb := twoClassTable(t, 20)
	before := tb.Len()
	rep := Clean(tb)
	if rep.ImputedValues != 0 || rep.DroppedDuplicates != 0 || rep.DroppedEmptyRows != 0 {
		t.Fatalf("unexpected clean report %+v", rep)
	}
	if tb.Len() != before {
		t.Fatal("Clean changed a clean table")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := twoClassTable(t, 15)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "toy", tb.ClassNames)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() || got.NumFeatures() != tb.NumFeatures() {
		t.Fatalf("round trip shape %dx%d", got.Len(), got.NumFeatures())
	}
	for i := range tb.X {
		if got.Y[i] != tb.Y[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range tb.X[i] {
			if got.X[i][j] != tb.X[i][j] {
				t.Fatalf("value (%d,%d) mismatch: %v != %v", i, j, got.X[i][j], tb.X[i][j])
			}
		}
	}
}

func TestReadCSVDiscoversClasses(t *testing.T) {
	in := "f0,label\n1,cat\n2,dog\n3,cat\n"
	tb, err := ReadCSV(strings.NewReader(in), "pets", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.ClassNames) != 2 || tb.ClassNames[0] != "cat" || tb.ClassNames[1] != "dog" {
		t.Fatalf("ClassNames = %v", tb.ClassNames)
	}
	if tb.Y[1] != 1 {
		t.Fatalf("dog label = %d", tb.Y[1])
	}
}

func TestReadCSVRejectsUnknownClassWhenFixed(t *testing.T) {
	in := "f0,label\n1,weasel\n"
	if _, err := ReadCSV(strings.NewReader(in), "pets", []string{"cat", "dog"}); err == nil {
		t.Fatal("expected unknown-class error")
	}
}

func TestReadCSVRejectsBadNumber(t *testing.T) {
	in := "f0,label\nnotanumber,cat\n"
	if _, err := ReadCSV(strings.NewReader(in), "bad", nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadCSVRejectsHeaderOnlyLabel(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("label\ncat\n"), "bad", nil); err == nil {
		t.Fatal("expected error for zero feature columns")
	}
}
