package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the table: a header row of feature names plus a final
// "label" column containing class names.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), t.FeatureNames...), "label")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	rec := make([]string, len(header))
	for i, row := range t.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = t.ClassNames[t.Y[i]]
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table in the WriteCSV format. Class names are collected
// in order of first appearance unless classNames is non-nil, in which case
// labels must come from that set.
func ReadCSV(r io.Reader, name string, classNames []string) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("csv %q: need at least one feature and a label column", name)
	}
	t := New(name, header[:len(header)-1], classNames)
	classIdx := make(map[string]int, len(classNames))
	for i, c := range t.ClassNames {
		classIdx[c] = i
	}
	fixed := classNames != nil
	rowNum := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv row %d: %w", rowNum, err)
		}
		rowNum++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csv %q row %d: %d fields, want %d", name, rowNum, len(rec), len(header))
		}
		row := make([]float64, len(header)-1)
		for j := range row {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("csv %q row %d col %d: %w", name, rowNum, j, err)
			}
			row[j] = v
		}
		label := rec[len(rec)-1]
		ci, ok := classIdx[label]
		if !ok {
			if fixed {
				return nil, fmt.Errorf("csv %q row %d: unknown class %q", name, rowNum, label)
			}
			ci = len(t.ClassNames)
			t.ClassNames = append(t.ClassNames, label)
			classIdx[label] = ci
		}
		t.X = append(t.X, row)
		t.Y = append(t.Y, ci)
	}
	return t, nil
}
