// Package dataset provides the tabular-data substrate used throughout the
// SPATIAL reproduction: an in-memory table of feature vectors with integer
// class labels, plus the preprocessing steps the paper's AI pipeline
// performs (cleaning, splitting, standardization, CSV interchange).
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Table is a labelled tabular dataset. X[i] is the feature vector of sample
// i and Y[i] its class index into ClassNames. All rows have the same length
// as FeatureNames.
type Table struct {
	Name         string
	FeatureNames []string
	ClassNames   []string
	X            [][]float64
	Y            []int
}

// New returns an empty table with the given schema.
func New(name string, featureNames, classNames []string) *Table {
	return &Table{
		Name:         name,
		FeatureNames: append([]string(nil), featureNames...),
		ClassNames:   append([]string(nil), classNames...),
	}
}

// Append adds a sample. The row is copied.
func (t *Table) Append(x []float64, y int) error {
	if len(x) != len(t.FeatureNames) {
		return fmt.Errorf("dataset: row length %d != %d features", len(x), len(t.FeatureNames))
	}
	if y < 0 || y >= len(t.ClassNames) {
		return fmt.Errorf("dataset: label %d out of range [0,%d)", y, len(t.ClassNames))
	}
	t.X = append(t.X, append([]float64(nil), x...))
	t.Y = append(t.Y, y)
	return nil
}

// Len returns the number of samples.
func (t *Table) Len() int { return len(t.X) }

// NumFeatures returns the feature dimensionality.
func (t *Table) NumFeatures() int { return len(t.FeatureNames) }

// NumClasses returns the number of classes in the schema.
func (t *Table) NumClasses() int { return len(t.ClassNames) }

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New(t.Name, t.FeatureNames, t.ClassNames)
	c.X = make([][]float64, len(t.X))
	for i, row := range t.X {
		c.X[i] = append([]float64(nil), row...)
	}
	c.Y = append([]int(nil), t.Y...)
	return c
}

// Validate checks structural invariants: matching lengths, uniform row
// width, labels in range, and finite values.
func (t *Table) Validate() error {
	if len(t.X) != len(t.Y) {
		return fmt.Errorf("dataset %q: %d rows but %d labels", t.Name, len(t.X), len(t.Y))
	}
	for i, row := range t.X {
		if len(row) != len(t.FeatureNames) {
			return fmt.Errorf("dataset %q: row %d has %d values, want %d", t.Name, i, len(row), len(t.FeatureNames))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset %q: non-finite value at (%d,%d)", t.Name, i, j)
			}
		}
	}
	for i, y := range t.Y {
		if y < 0 || y >= len(t.ClassNames) {
			return fmt.Errorf("dataset %q: label %d at row %d out of range", t.Name, y, i)
		}
	}
	return nil
}

// ClassCounts returns the number of samples per class.
func (t *Table) ClassCounts() []int {
	counts := make([]int, t.NumClasses())
	for _, y := range t.Y {
		counts[y]++
	}
	return counts
}

// Subset returns a new table holding copies of the rows at idx.
func (t *Table) Subset(idx []int) *Table {
	s := New(t.Name, t.FeatureNames, t.ClassNames)
	s.X = make([][]float64, 0, len(idx))
	s.Y = make([]int, 0, len(idx))
	for _, i := range idx {
		s.X = append(s.X, append([]float64(nil), t.X[i]...))
		s.Y = append(s.Y, t.Y[i])
	}
	return s
}

// Shuffle permutes the samples in place using rng.
func (t *Table) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(t.X), func(i, j int) {
		t.X[i], t.X[j] = t.X[j], t.X[i]
		t.Y[i], t.Y[j] = t.Y[j], t.Y[i]
	})
}

// Split partitions the table into the first ceil(trainFrac*n) samples and
// the remainder, without shuffling. Callers wanting a random split should
// Shuffle first or use StratifiedSplit.
func (t *Table) Split(trainFrac float64) (train, test *Table, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v outside (0,1)", trainFrac)
	}
	n := t.Len()
	cut := int(math.Ceil(trainFrac * float64(n)))
	if cut >= n {
		cut = n - 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return t.Subset(idx[:cut]), t.Subset(idx[cut:]), nil
}

// StratifiedSplit randomly partitions the table into train/test halves
// preserving per-class proportions. Every class with at least two samples
// contributes at least one sample to each side.
func (t *Table) StratifiedSplit(rng *rand.Rand, trainFrac float64) (train, test *Table, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v outside (0,1)", trainFrac)
	}
	if t.Len() == 0 {
		return nil, nil, errors.New("dataset: cannot split empty table")
	}
	byClass := make([][]int, t.NumClasses())
	for i, y := range t.Y {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		cut := int(math.Round(trainFrac * float64(len(members))))
		if len(members) >= 2 {
			if cut == 0 {
				cut = 1
			}
			if cut == len(members) {
				cut = len(members) - 1
			}
		}
		trainIdx = append(trainIdx, members[:cut]...)
		testIdx = append(testIdx, members[cut:]...)
	}
	train, test = t.Subset(trainIdx), t.Subset(testIdx)
	train.Shuffle(rng)
	test.Shuffle(rng)
	return train, test, nil
}

// KFold returns k (train, test) index partitions for cross-validation.
func (t *Table) KFold(rng *rand.Rand, k int) ([][2][]int, error) {
	n := t.Len()
	if k < 2 || k > n {
		return nil, fmt.Errorf("dataset: k=%d invalid for %d samples", k, n)
	}
	perm := rng.Perm(n)
	folds := make([][2][]int, k)
	for f := 0; f < k; f++ {
		lo, hi := f*n/k, (f+1)*n/k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = [2][]int{train, test}
	}
	return folds, nil
}
