package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoClassTable(t *testing.T, n int) *Table {
	t.Helper()
	tb := New("toy", []string{"f0", "f1"}, []string{"a", "b"})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		y := i % 2
		if err := tb.Append([]float64{rng.NormFloat64() + float64(y)*3, rng.NormFloat64()}, y); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestAppendValidation(t *testing.T) {
	tb := New("t", []string{"a"}, []string{"x"})
	if err := tb.Append([]float64{1, 2}, 0); err == nil {
		t.Fatal("expected row-length error")
	}
	if err := tb.Append([]float64{1}, 1); err == nil {
		t.Fatal("expected label-range error")
	}
	if err := tb.Append([]float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestAppendCopiesRow(t *testing.T) {
	tb := New("t", []string{"a"}, []string{"x"})
	row := []float64{1}
	if err := tb.Append(row, 0); err != nil {
		t.Fatal(err)
	}
	row[0] = 99
	if tb.X[0][0] != 1 {
		t.Fatal("Append must copy the row")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tb := twoClassTable(t, 10)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tb.Clone()
	bad.X[3][0] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("expected NaN to fail validation")
	}
	bad2 := tb.Clone()
	bad2.Y[0] = 5
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected out-of-range label to fail validation")
	}
	bad3 := tb.Clone()
	bad3.Y = bad3.Y[:5]
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected length mismatch to fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := twoClassTable(t, 4)
	c := tb.Clone()
	c.X[0][0] = 123
	c.Y[1] = 0
	if tb.X[0][0] == 123 {
		t.Fatal("Clone shares feature storage")
	}
}

func TestClassCounts(t *testing.T) {
	tb := twoClassTable(t, 10)
	counts := tb.ClassCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("ClassCounts = %v", counts)
	}
}

func TestSubset(t *testing.T) {
	tb := twoClassTable(t, 10)
	s := tb.Subset([]int{0, 2, 4})
	if s.Len() != 3 {
		t.Fatalf("Subset len = %d", s.Len())
	}
	if s.Y[0] != tb.Y[0] || s.Y[2] != tb.Y[4] {
		t.Fatal("Subset labels wrong")
	}
	s.X[0][0] = -1
	if tb.X[0][0] == -1 {
		t.Fatal("Subset must copy rows")
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	tb := New("imb", []string{"f"}, []string{"maj", "min"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 90; i++ {
		_ = tb.Append([]float64{rng.NormFloat64()}, 0)
	}
	for i := 0; i < 10; i++ {
		_ = tb.Append([]float64{rng.NormFloat64()}, 1)
	}
	train, test, err := tb.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != 100 {
		t.Fatalf("split sizes %d+%d", train.Len(), test.Len())
	}
	tc := train.ClassCounts()
	sc := test.ClassCounts()
	if tc[1] != 8 || sc[1] != 2 {
		t.Fatalf("minority split %d/%d, want 8/2", tc[1], sc[1])
	}
}

func TestStratifiedSplitMinorityAlwaysRepresented(t *testing.T) {
	tb := New("tiny", []string{"f"}, []string{"a", "b"})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		_ = tb.Append([]float64{float64(i)}, 0)
	}
	_ = tb.Append([]float64{100}, 1)
	_ = tb.Append([]float64{101}, 1)
	train, test, err := tb.StratifiedSplit(rng, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if train.ClassCounts()[1] == 0 || test.ClassCounts()[1] == 0 {
		t.Fatal("class with 2 samples must appear on both sides")
	}
}

func TestStratifiedSplitRejectsBadFrac(t *testing.T) {
	tb := twoClassTable(t, 4)
	rng := rand.New(rand.NewSource(3))
	if _, _, err := tb.StratifiedSplit(rng, 0); err == nil {
		t.Fatal("expected error for frac 0")
	}
	if _, _, err := tb.StratifiedSplit(rng, 1); err == nil {
		t.Fatal("expected error for frac 1")
	}
}

func TestSplitOrdered(t *testing.T) {
	tb := twoClassTable(t, 10)
	train, test, err := tb.Split(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 7 || test.Len() != 3 {
		t.Fatalf("Split sizes %d/%d", train.Len(), test.Len())
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	tb := twoClassTable(t, 30)
	sumBefore := 0.0
	for _, r := range tb.X {
		sumBefore += r[0]
	}
	tb.Shuffle(rand.New(rand.NewSource(4)))
	sumAfter := 0.0
	for _, r := range tb.X {
		sumAfter += r[0]
	}
	if math.Abs(sumBefore-sumAfter) > 1e-9 {
		t.Fatal("Shuffle changed contents")
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKFoldPartitions(t *testing.T) {
	tb := twoClassTable(t, 20)
	rng := rand.New(rand.NewSource(5))
	folds, err := tb.KFold(rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		if len(f[0])+len(f[1]) != 20 {
			t.Fatalf("fold sizes %d+%d", len(f[0]), len(f[1]))
		}
		for _, i := range f[1] {
			seen[i]++
		}
	}
	for i := 0; i < 20; i++ {
		if seen[i] != 1 {
			t.Fatalf("sample %d appears in %d test folds", i, seen[i])
		}
	}
	if _, err := tb.KFold(rng, 1); err == nil {
		t.Fatal("k=1 should error")
	}
}

func TestScalerStandardizes(t *testing.T) {
	tb := twoClassTable(t, 200)
	s, err := FitScaler(tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Transform(tb); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < tb.NumFeatures(); j++ {
		var mean float64
		for _, r := range tb.X {
			mean += r[j]
		}
		mean /= float64(tb.Len())
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %v after standardization", j, mean)
		}
	}
}

func TestScalerRoundTripProperty(t *testing.T) {
	tb := twoClassTable(t, 50)
	s, err := FitScaler(tb)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		row := []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		orig := append([]float64(nil), row...)
		s.TransformRow(row)
		s.InverseRow(row)
		for i := range row {
			if math.Abs(row[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScalerConstantFeature(t *testing.T) {
	tb := New("const", []string{"c"}, []string{"x"})
	for i := 0; i < 5; i++ {
		_ = tb.Append([]float64{7}, 0)
	}
	s, err := FitScaler(tb)
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{7}
	s.TransformRow(row)
	if row[0] != 0 {
		t.Fatalf("constant feature should map to 0, got %v", row[0])
	}
}

func TestScalerEmptyTable(t *testing.T) {
	tb := New("e", []string{"a"}, []string{"x"})
	if _, err := FitScaler(tb); err == nil {
		t.Fatal("expected error fitting scaler on empty table")
	}
}

func TestScalerDimensionMismatch(t *testing.T) {
	tb := twoClassTable(t, 5)
	s, err := FitScaler(tb)
	if err != nil {
		t.Fatal(err)
	}
	other := New("o", []string{"only"}, []string{"x"})
	_ = other.Append([]float64{1}, 0)
	if err := s.Transform(other); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
