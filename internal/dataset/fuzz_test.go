package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that anything it
// accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("f0,f1,label\n1,2,cat\n3,4,dog\n")
	f.Add("f0,label\n1e308,x\n")
	f.Add("a,b,label\n")
	f.Add("label\n")
	f.Add("f0,label\nNaN,x\n")
	f.Add("f0,label\n\"1\",x\n")
	f.Fuzz(func(t *testing.T, input string) {
		tb, err := ReadCSV(strings.NewReader(input), "fuzz", nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := tb.Validate(); err != nil {
			// NaN/Inf values parse as floats but fail validation;
			// that is the documented contract, not a bug.
			return
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, tb); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()), "fuzz", tb.ClassNames)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != tb.Len() {
			t.Fatalf("round trip changed size: %d -> %d", tb.Len(), back.Len())
		}
	})
}
