package dataset

import (
	"errors"
	"fmt"
)

// MinMaxScaler rescales features into [0, 1] using the ranges observed on
// a training set — the normalization use case 2 applies before training so
// all three model families see the same representation (which is also what
// lets adversarial samples crafted on one model transfer to the others).
type MinMaxScaler struct {
	Min   []float64 `json:"min"`
	Range []float64 `json:"range"`
}

// FitMinMax computes per-feature minima and ranges from t. Constant
// features get range 1 so transforming them is a pure shift.
func FitMinMax(t *Table) (*MinMaxScaler, error) {
	if t.Len() == 0 {
		return nil, errors.New("dataset: cannot fit min-max scaler on empty table")
	}
	d := t.NumFeatures()
	s := &MinMaxScaler{Min: make([]float64, d), Range: make([]float64, d)}
	maxs := make([]float64, d)
	copy(s.Min, t.X[0])
	copy(maxs, t.X[0])
	for _, row := range t.X[1:] {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	for j := range s.Range {
		s.Range[j] = maxs[j] - s.Min[j]
		if s.Range[j] <= 0 {
			s.Range[j] = 1
		}
	}
	return s, nil
}

// Transform rescales t in place. Values outside the fitted range map
// outside [0, 1]; they are not clipped.
func (s *MinMaxScaler) Transform(t *Table) error {
	if t.NumFeatures() != len(s.Min) {
		return fmt.Errorf("dataset: min-max scaler dimension %d != table %d", len(s.Min), t.NumFeatures())
	}
	for _, row := range t.X {
		s.TransformRow(row)
	}
	return nil
}

// TransformRow rescales one row in place.
func (s *MinMaxScaler) TransformRow(row []float64) {
	for j := range row {
		row[j] = (row[j] - s.Min[j]) / s.Range[j]
	}
}

// InverseRow maps a normalized row back to raw feature space in place.
func (s *MinMaxScaler) InverseRow(row []float64) {
	for j := range row {
		row[j] = row[j]*s.Range[j] + s.Min[j]
	}
}
