package dataset

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTable builds a random table with at least one sample per class.
func randomTable(rng *rand.Rand) *Table {
	classes := 2 + rng.Intn(4)
	features := 1 + rng.Intn(5)
	names := make([]string, features)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	classNames := make([]string, classes)
	for i := range classNames {
		classNames[i] = string(rune('A' + i))
	}
	t := New("rand", names, classNames)
	n := classes*2 + rng.Intn(60)
	for i := 0; i < n; i++ {
		row := make([]float64, features)
		for j := range row {
			row[j] = rng.NormFloat64() * 100
		}
		y := i % classes // guarantees every class appears twice
		if err := t.Append(row, y); err != nil {
			panic(err)
		}
	}
	return t
}

// TestStratifiedSplitPartitionProperty: for random tables and fractions,
// the split is a partition (sizes sum, class counts preserved) and every
// class is represented on both sides.
func TestStratifiedSplitPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		tb := randomTable(rng)
		frac := 0.3 + rng.Float64()*0.4
		train, test, err := tb.StratifiedSplit(rng, frac)
		if err != nil {
			return false
		}
		if train.Len()+test.Len() != tb.Len() {
			return false
		}
		orig := tb.ClassCounts()
		trainC, testC := train.ClassCounts(), test.ClassCounts()
		for c := range orig {
			if trainC[c]+testC[c] != orig[c] {
				return false
			}
			if orig[c] >= 2 && (trainC[c] == 0 || testC[c] == 0) {
				return false
			}
		}
		return train.Validate() == nil && test.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCSVRoundTripProperty: WriteCSV/ReadCSV is lossless for arbitrary
// float64 payloads (strconv 'g' -1 is exact).
func TestCSVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	f := func() bool {
		tb := randomTable(rng)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tb); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, tb.Name, tb.ClassNames)
		if err != nil {
			return false
		}
		if got.Len() != tb.Len() {
			return false
		}
		for i := range tb.X {
			if got.Y[i] != tb.Y[i] {
				return false
			}
			for j := range tb.X[i] {
				if got.X[i][j] != tb.X[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCleanIdempotent: cleaning twice equals cleaning once.
func TestCleanIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	f := func() bool {
		tb := randomTable(rng)
		Clean(tb)
		before := tb.Len()
		rep := Clean(tb)
		return tb.Len() == before && rep.ImputedValues == 0 && rep.DroppedDuplicates == 0 && rep.DroppedEmptyRows == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMinMaxTransformBoundsProperty: transformed training rows land in
// [0,1] and inverse-transform restores them.
func TestMinMaxTransformBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	f := func() bool {
		tb := randomTable(rng)
		s, err := FitMinMax(tb)
		if err != nil {
			return false
		}
		for _, row := range tb.X {
			orig := append([]float64(nil), row...)
			s.TransformRow(row)
			for _, v := range row {
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
			}
			s.InverseRow(row)
			for j := range row {
				if diff := row[j] - orig[j]; diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxValidation(t *testing.T) {
	empty := New("e", []string{"a"}, []string{"x"})
	if _, err := FitMinMax(empty); err == nil {
		t.Fatal("expected empty error")
	}
	tb := New("t", []string{"a"}, []string{"x"})
	_ = tb.Append([]float64{5}, 0)
	s, err := FitMinMax(tb)
	if err != nil {
		t.Fatal(err)
	}
	other := New("o", []string{"a", "b"}, []string{"x"})
	_ = other.Append([]float64{1, 2}, 0)
	if err := s.Transform(other); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	// Constant feature: transform is a pure shift to 0.
	row := []float64{5}
	s.TransformRow(row)
	if row[0] != 0 {
		t.Fatalf("constant feature transform %v", row[0])
	}
}
