package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Scaler standardizes features to zero mean and unit variance using
// statistics fitted on a training set, the preprocessing step the paper's
// pipeline applies before training gradient-based models.
type Scaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FitScaler computes per-feature mean and standard deviation from t.
// Features with zero variance get Std 1 so transforming them is a no-op
// shift.
func FitScaler(t *Table) (*Scaler, error) {
	if t.Len() == 0 {
		return nil, errors.New("dataset: cannot fit scaler on empty table")
	}
	d := t.NumFeatures()
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range t.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(t.Len())
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range t.X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform standardizes t in place.
func (s *Scaler) Transform(t *Table) error {
	if t.NumFeatures() != len(s.Mean) {
		return fmt.Errorf("dataset: scaler dimension %d != table %d", len(s.Mean), t.NumFeatures())
	}
	for _, row := range t.X {
		s.TransformRow(row)
	}
	return nil
}

// TransformRow standardizes a single row in place.
func (s *Scaler) TransformRow(row []float64) {
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
}

// InverseRow maps a standardized row back to the original feature space in
// place.
func (s *Scaler) InverseRow(row []float64) {
	for j := range row {
		row[j] = row[j]*s.Std[j] + s.Mean[j]
	}
}
