// Package defense implements the corrective actions SPATIAL's human
// operators apply when the dashboard flags an attack (§VII: "requiring to
// monitor further the model to apply corrective actions, e.g., Label
// sanitization methods"):
//
//   - label sanitization: kNN-consensus relabeling or filtering of
//     suspicious training labels, the standard counter to label-flipping
//     poisoning;
//   - ensemble smoothing: majority voting over independently trained
//     models, which damps the influence of poisoned subsets (bagging
//     defense);
//   - adversarial input filtering: a distance-to-training-manifold test
//     that flags evasion inputs before they reach the model.
package defense

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/ml"
)

// SanitizeMode selects what happens to a label that disagrees with its
// neighbourhood.
type SanitizeMode int

// Sanitization modes.
const (
	// Relabel replaces a suspicious label with the neighbourhood
	// majority.
	Relabel SanitizeMode = iota + 1
	// Drop removes the suspicious sample entirely.
	Drop
)

// SanitizeReport describes what label sanitization changed.
type SanitizeReport struct {
	Inspected int `json:"inspected"`
	Relabeled int `json:"relabeled"`
	Dropped   int `json:"dropped"`
}

// SanitizeLabels applies kNN-consensus label cleaning: for every sample,
// the labels of its k nearest neighbours (in feature space, excluding
// itself) are tallied, and if a strict majority disagrees with the
// sample's label the sample is relabeled or dropped per mode. It returns a
// cleaned copy and a report.
//
// This is the classical defense against random label flipping: flipped
// labels sit inside a neighbourhood of clean ones and lose the vote.
func SanitizeLabels(t *dataset.Table, k int, mode SanitizeMode) (*dataset.Table, SanitizeReport, error) {
	var rep SanitizeReport
	if k < 1 {
		return nil, rep, fmt.Errorf("defense: k must be >= 1, got %d", k)
	}
	if mode != Relabel && mode != Drop {
		return nil, rep, fmt.Errorf("defense: unknown sanitize mode %d", mode)
	}
	n := t.Len()
	if n < k+1 {
		return nil, rep, fmt.Errorf("defense: need more than k=%d samples, have %d", k, n)
	}

	// Majority label among each sample's k nearest neighbours.
	majority := make([]int, n)
	type distIdx struct {
		d float64
		i int
	}
	dists := make([]distIdx, 0, n-1)
	counts := make([]int, t.NumClasses())
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dists = append(dists, distIdx{d: mat.Dist2(t.X[i], t.X[j]), i: j})
		}
		sort.Slice(dists, func(a, b int) bool { return dists[a].d < dists[b].d })
		for c := range counts {
			counts[c] = 0
		}
		for _, nb := range dists[:k] {
			counts[t.Y[nb.i]]++
		}
		best, bestCount := t.Y[i], 0
		for c, cnt := range counts {
			if cnt > bestCount {
				best, bestCount = c, cnt
			}
		}
		// Strict majority required to overrule the recorded label.
		if bestCount*2 > k && best != t.Y[i] {
			majority[i] = best
		} else {
			majority[i] = t.Y[i]
		}
	}

	out := dataset.New(t.Name, t.FeatureNames, t.ClassNames)
	for i := 0; i < n; i++ {
		rep.Inspected++
		switch {
		case majority[i] == t.Y[i]:
			if err := out.Append(t.X[i], t.Y[i]); err != nil {
				return nil, rep, err
			}
		case mode == Relabel:
			rep.Relabeled++
			if err := out.Append(t.X[i], majority[i]); err != nil {
				return nil, rep, err
			}
		default: // Drop
			rep.Dropped++
		}
	}
	if out.Len() == 0 {
		return nil, rep, fmt.Errorf("defense: sanitization dropped every sample")
	}
	return out, rep, nil
}

// VotingEnsemble is a majority-probability ensemble over independently
// trained models — the bagging-style smoothing defense against poisoning.
type VotingEnsemble struct {
	Members []ml.Classifier
	classes int
}

var _ ml.Classifier = (*VotingEnsemble)(nil)

// NewVotingEnsemble builds an ensemble from model factories; each member
// trains on an independent bootstrap of the data during Fit.
func NewVotingEnsemble(factories ...func() (ml.Classifier, error)) (*VotingEnsemble, error) {
	if len(factories) == 0 {
		return nil, fmt.Errorf("defense: ensemble needs at least one member factory")
	}
	e := &VotingEnsemble{}
	for i, f := range factories {
		m, err := f()
		if err != nil {
			return nil, fmt.Errorf("defense: factory %d: %w", i, err)
		}
		e.Members = append(e.Members, m)
	}
	return e, nil
}

// Name implements ml.Classifier.
func (e *VotingEnsemble) Name() string { return "vote-ensemble" }

// NumClasses implements ml.Classifier.
func (e *VotingEnsemble) NumClasses() int { return e.classes }

// Fit implements ml.Classifier: each member trains on its own bootstrap
// resample, so a poisoned subset cannot dominate every member.
func (e *VotingEnsemble) Fit(t *dataset.Table) error {
	if t.Len() == 0 {
		return fmt.Errorf("defense: ensemble fit on empty dataset")
	}
	e.classes = t.NumClasses()
	for i, m := range e.Members {
		rng := rand.New(rand.NewSource(int64(i)*104729 + 1))
		idx := make([]int, t.Len())
		for j := range idx {
			idx[j] = rng.Intn(t.Len())
		}
		if err := m.Fit(t.Subset(idx)); err != nil {
			return fmt.Errorf("defense: member %d fit: %w", i, err)
		}
	}
	return nil
}

// PredictProba implements ml.Classifier by averaging member probabilities.
func (e *VotingEnsemble) PredictProba(x []float64) []float64 {
	if e.classes == 0 {
		panic(ml.ErrNotTrained)
	}
	acc := make([]float64, e.classes)
	for _, m := range e.Members {
		//lint:ignore hot-indirect member models are heterogeneous by construction (that is the ensemble's defense); the dispatch is the design
		p := m.PredictProba(x)
		// Reslice hint: members were fitted on the same class count, so
		// each row is acc-length; accumulate through the pinned view.
		sum := acc[:len(p)]
		for c, v := range p {
			sum[c] += v
		}
	}
	inv := 1 / float64(len(e.Members))
	for c := range acc {
		acc[c] *= inv
	}
	return acc
}
