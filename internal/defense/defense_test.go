package defense

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/ml"
)

func blobs(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("blobs", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*5 + rng.NormFloat64()*0.6, rng.NormFloat64() * 0.6}, y)
	}
	return tb
}

func TestSanitizeLabelsRecoversFlippedLabels(t *testing.T) {
	clean := blobs(1, 300)
	poisoned, err := attack.LabelFlip(clean, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	sanitized, rep, err := SanitizeLabels(poisoned, 7, Relabel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relabeled == 0 {
		t.Fatal("no labels repaired")
	}
	// Count labels that now match the clean ground truth.
	recovered := 0
	for i := range sanitized.Y {
		if sanitized.Y[i] == clean.Y[i] {
			recovered++
		}
	}
	frac := float64(recovered) / float64(sanitized.Len())
	if frac < 0.97 {
		t.Fatalf("only %.1f%% labels correct after sanitization", frac*100)
	}
}

func TestSanitizeLabelsDropMode(t *testing.T) {
	clean := blobs(2, 200)
	poisoned, err := attack.LabelFlip(clean, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sanitized, rep, err := SanitizeLabels(poisoned, 7, Drop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatal("nothing dropped")
	}
	if sanitized.Len() != poisoned.Len()-rep.Dropped {
		t.Fatalf("size %d after dropping %d of %d", sanitized.Len(), rep.Dropped, poisoned.Len())
	}
}

func TestSanitizeLabelsKeepsCleanData(t *testing.T) {
	clean := blobs(3, 200)
	sanitized, rep, err := SanitizeLabels(clean, 5, Relabel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relabeled > 4 || rep.Dropped != 0 {
		t.Fatalf("clean data disturbed: %+v", rep)
	}
	if sanitized.Len() != clean.Len() {
		t.Fatal("clean data shrank")
	}
}

func TestSanitizeLabelsImprovesPoisonedModel(t *testing.T) {
	// Overlapping blobs: heavy label flipping genuinely shifts the
	// learned boundary here, so sanitization has something to repair.
	rng := rand.New(rand.NewSource(4))
	clean := dataset.New("overlap", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < 400; i++ {
		y := i % 2
		_ = clean.Append([]float64{float64(y)*3 + rng.NormFloat64(), rng.NormFloat64()}, y)
	}
	train, test, err := clean.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := attack.TargetedFlip(train, 0.15, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(tr *dataset.Table) float64 {
		m := ml.NewLogReg(ml.DefaultLogRegConfig())
		if err := m.Fit(tr); err != nil {
			t.Fatal(err)
		}
		mm, err := ml.Evaluate(m, test)
		if err != nil {
			t.Fatal(err)
		}
		return mm.Accuracy
	}
	dirty := accOf(poisoned)
	sanitized, _, err := SanitizeLabels(poisoned, 9, Relabel)
	if err != nil {
		t.Fatal(err)
	}
	repaired := accOf(sanitized)
	if repaired <= dirty {
		t.Fatalf("sanitization did not help: %.3f -> %.3f", dirty, repaired)
	}
}

func TestSanitizeValidation(t *testing.T) {
	tb := blobs(5, 20)
	if _, _, err := SanitizeLabels(tb, 0, Relabel); err == nil {
		t.Fatal("expected k error")
	}
	if _, _, err := SanitizeLabels(tb, 5, SanitizeMode(9)); err == nil {
		t.Fatal("expected mode error")
	}
	if _, _, err := SanitizeLabels(tb, 25, Relabel); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}

func TestVotingEnsemble(t *testing.T) {
	data := blobs(6, 300)
	factory := func(seed int64) func() (ml.Classifier, error) {
		return func() (ml.Classifier, error) {
			cfg := ml.DefaultTreeConfig()
			cfg.Seed = seed
			return ml.NewTree(cfg), nil
		}
	}
	e, err := NewVotingEnsemble(factory(1), factory(2), factory(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(data); err != nil {
		t.Fatal(err)
	}
	m, err := ml.Evaluate(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.95 {
		t.Fatalf("ensemble accuracy %.3f", m.Accuracy)
	}
	p := e.PredictProba(data.X[0])
	if len(p) != 2 {
		t.Fatalf("probs %v", p)
	}
}

func TestVotingEnsembleValidation(t *testing.T) {
	if _, err := NewVotingEnsemble(); err == nil {
		t.Fatal("expected empty-factory error")
	}
	e, err := NewVotingEnsemble(func() (ml.Classifier, error) { return ml.NewTree(ml.DefaultTreeConfig()), nil })
	if err != nil {
		t.Fatal(err)
	}
	empty := dataset.New("e", []string{"f"}, []string{"a"})
	if err := e.Fit(empty); err == nil {
		t.Fatal("expected empty-dataset error")
	}
}

func TestVotingEnsemblePredictBeforeFitPanics(t *testing.T) {
	e, err := NewVotingEnsemble(func() (ml.Classifier, error) { return ml.NewTree(ml.DefaultTreeConfig()), nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.PredictProba([]float64{1, 2})
}
