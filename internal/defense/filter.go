package defense

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// InputFilter flags inputs that sit unusually far from the training
// manifold — a lightweight evasion detector the serving path can apply
// before the model (large FGSM-style perturbations push samples off the
// data manifold).
type InputFilter struct {
	train     [][]float64
	k         int
	threshold float64
}

// FitInputFilter learns the detector from training data: every training
// sample's mean distance to its k nearest neighbours is computed, and the
// detection threshold is set at the given quantile (e.g. 0.99) of those
// in-distribution scores.
func FitInputFilter(t *dataset.Table, k int, quantile float64) (*InputFilter, error) {
	if k < 1 {
		return nil, fmt.Errorf("defense: k must be >= 1, got %d", k)
	}
	if quantile <= 0 || quantile > 1 {
		return nil, fmt.Errorf("defense: quantile %v outside (0,1]", quantile)
	}
	n := t.Len()
	if n < k+1 {
		return nil, fmt.Errorf("defense: need more than k=%d samples, have %d", k, n)
	}
	train := make([][]float64, n)
	for i, row := range t.X {
		train[i] = append([]float64(nil), row...)
	}
	f := &InputFilter{train: train, k: k}

	scores := make([]float64, n)
	for i := range train {
		scores[i] = f.knnScore(train[i], i)
	}
	sort.Float64s(scores)
	idx := int(quantile * float64(n-1))
	f.threshold = scores[idx]
	return f, nil
}

// knnScore returns the mean distance from x to its k nearest training
// rows, excluding index skip (-1 to include all).
func (f *InputFilter) knnScore(x []float64, skip int) float64 {
	// Maintain the k smallest distances in a small insertion buffer.
	best := make([]float64, f.k)
	for i := range best {
		best[i] = math.Inf(1)
	}
	for i, row := range f.train {
		if i == skip {
			continue
		}
		d := mat.Dist2(x, row)
		if d >= best[f.k-1] {
			continue
		}
		pos := f.k - 1
		for pos > 0 && best[pos-1] > d {
			best[pos] = best[pos-1]
			pos--
		}
		best[pos] = d
	}
	var sum float64
	for _, d := range best {
		sum += d
	}
	return sum / float64(f.k)
}

// Score returns the anomaly score of x (mean k-NN distance to training
// data); higher is more anomalous.
func (f *InputFilter) Score(x []float64) float64 { return f.knnScore(x, -1) }

// Threshold returns the fitted detection threshold.
func (f *InputFilter) Threshold() float64 { return f.threshold }

// IsAdversarial reports whether x exceeds the detection threshold.
func (f *InputFilter) IsAdversarial(x []float64) bool { return f.Score(x) > f.threshold }

// DetectionRate scores a batch and returns the flagged fraction.
func (f *InputFilter) DetectionRate(rows [][]float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	flagged := 0
	for _, x := range rows {
		if f.IsAdversarial(x) {
			flagged++
		}
	}
	return float64(flagged) / float64(len(rows))
}
