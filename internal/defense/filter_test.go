package defense

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/ml"
)

func TestInputFilterFlagsLargePerturbations(t *testing.T) {
	data := blobs(10, 300)
	filter, err := FitInputFilter(data, 5, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	// In-distribution samples should mostly pass.
	cleanRate := filter.DetectionRate(data.X[:100])
	if cleanRate > 0.1 {
		t.Fatalf("clean false-positive rate %.2f", cleanRate)
	}
	// Large adversarial shifts must be flagged.
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	adv, err := attack.FGSM(m, data, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	advRate := filter.DetectionRate(adv.Adversarial.X[:100])
	if advRate < 0.8 {
		t.Fatalf("adversarial detection rate %.2f too low", advRate)
	}
}

func TestInputFilterScoreMonotoneInDistance(t *testing.T) {
	data := blobs(11, 100)
	filter, err := FitInputFilter(data, 3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	near := append([]float64(nil), data.X[0]...)
	far := []float64{near[0] + 50, near[1] + 50}
	if filter.Score(far) <= filter.Score(near) {
		t.Fatal("score should grow with distance from the manifold")
	}
	if !filter.IsAdversarial(far) {
		t.Fatal("distant point not flagged")
	}
}

func TestInputFilterValidation(t *testing.T) {
	data := blobs(12, 20)
	if _, err := FitInputFilter(data, 0, 0.95); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := FitInputFilter(data, 3, 0); err == nil {
		t.Fatal("expected quantile error")
	}
	if _, err := FitInputFilter(data, 3, 1.5); err == nil {
		t.Fatal("expected quantile error")
	}
	if _, err := FitInputFilter(data, 50, 0.95); err == nil {
		t.Fatal("expected size error")
	}
}

func TestInputFilterEmptyBatch(t *testing.T) {
	data := blobs(13, 30)
	filter, err := FitInputFilter(data, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if rate := filter.DetectionRate(nil); rate != 0 {
		t.Fatalf("empty batch rate %v", rate)
	}
}
