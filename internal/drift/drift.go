// Package drift implements the data-drift detection SPATIAL's monitoring
// stage needs: trustworthy computing demands "a quantifiable understanding
// of performance sensitivity to drifts" (§I), and the paper's roadmap
// flags stale monitoring baselines as a vulnerability. The detector
// compares live feature distributions against a training-time reference
// with the two standard measures — the Kolmogorov–Smirnov statistic and
// the Population Stability Index — and feeds a drift sensor.
package drift

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// FeatureReport is the drift assessment of one feature.
type FeatureReport struct {
	Feature string  `json:"feature"`
	KS      float64 `json:"ks"`      // two-sample KS statistic in [0,1]
	KSPLow  bool    `json:"ksPLow"`  // KS p-value below the configured alpha
	PSI     float64 `json:"psi"`     // population stability index
	Drifted bool    `json:"drifted"` // either test flags this feature
}

// Report is the drift assessment of a batch against the reference.
type Report struct {
	Features []FeatureReport `json:"features"`
	// DriftedFraction is the share of features flagged.
	DriftedFraction float64 `json:"driftedFraction"`
	// Drifted aggregates: true when any feature drifted.
	Drifted bool `json:"drifted"`
}

// Detector holds the reference distribution fitted from training data.
type Detector struct {
	// Alpha is the KS significance level (default 0.01).
	Alpha float64
	// PSIThreshold flags a feature when its PSI exceeds it; the
	// conventional "significant shift" bar is 0.2 (default).
	PSIThreshold float64
	// Bins is the PSI histogram resolution (default 10).
	Bins int

	featureNames []string
	// sortedRef[j] is feature j's reference sample, sorted.
	sortedRef [][]float64
	// binEdges[j] are the PSI quantile edges; refFrac[j] the reference
	// mass per bin.
	binEdges [][]float64
	refFrac  [][]float64
}

// Fit builds a detector from reference (training-time) data.
func Fit(reference *dataset.Table, alpha, psiThreshold float64, bins int) (*Detector, error) {
	if reference.Len() < 10 {
		return nil, fmt.Errorf("drift: need at least 10 reference samples, have %d", reference.Len())
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.01
	}
	if psiThreshold <= 0 {
		psiThreshold = 0.2
	}
	if bins < 2 {
		bins = 10
	}
	d := reference.NumFeatures()
	det := &Detector{
		Alpha:        alpha,
		PSIThreshold: psiThreshold,
		Bins:         bins,
		featureNames: append([]string(nil), reference.FeatureNames...),
		sortedRef:    make([][]float64, d),
		binEdges:     make([][]float64, d),
		refFrac:      make([][]float64, d),
	}
	n := reference.Len()
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i, row := range reference.X {
			col[i] = row[j]
		}
		sort.Float64s(col)
		det.sortedRef[j] = col

		// Quantile bin edges (interior edges only).
		edges := make([]float64, 0, bins-1)
		for q := 1; q < bins; q++ {
			v := col[q*n/bins]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		det.binEdges[j] = edges
		det.refFrac[j] = histogramFrac(col, edges)
	}
	return det, nil
}

// Detect scores a live batch against the reference.
func (det *Detector) Detect(batch *dataset.Table) (Report, error) {
	if batch.NumFeatures() != len(det.sortedRef) {
		return Report{}, fmt.Errorf("drift: batch has %d features, reference %d", batch.NumFeatures(), len(det.sortedRef))
	}
	if batch.Len() < 2 {
		return Report{}, fmt.Errorf("drift: need at least 2 batch samples, have %d", batch.Len())
	}
	var rep Report
	drifted := 0
	col := make([]float64, batch.Len())
	for j := range det.sortedRef {
		for i, row := range batch.X {
			col[i] = row[j]
		}
		sort.Float64s(col)

		ks := ksStatistic(det.sortedRef[j], col)
		pLow := ksSignificant(ks, len(det.sortedRef[j]), len(col), det.Alpha)
		psi := psiValue(det.refFrac[j], histogramFrac(col, det.binEdges[j]))
		fr := FeatureReport{
			Feature: det.featureNames[j],
			KS:      ks,
			KSPLow:  pLow,
			PSI:     psi,
			Drifted: pLow || psi > det.PSIThreshold,
		}
		if fr.Drifted {
			drifted++
		}
		rep.Features = append(rep.Features, fr)
	}
	rep.DriftedFraction = float64(drifted) / float64(len(rep.Features))
	rep.Drifted = drifted > 0
	return rep, nil
}

// Score converts a report into the [0, 1] sensor value (1 = no drift).
func Score(r Report) float64 { return 1 - r.DriftedFraction }

// ksStatistic computes the two-sample Kolmogorov–Smirnov statistic of two
// sorted samples.
func ksStatistic(a, b []float64) float64 {
	var i, j int
	var d float64
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			// Tie: consume every equal value from both samples before
			// comparing the empirical CDFs, otherwise identical samples
			// report spurious gaps.
			v := a[i]
			for i < len(a) && a[i] == v {
				i++
			}
			for j < len(b) && b[j] == v {
				j++
			}
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// ksSignificant applies the asymptotic two-sample KS test: reject equality
// at level alpha when D > c(alpha)·sqrt((n+m)/(n·m)) with
// c(alpha) = sqrt(−ln(alpha/2)/2).
func ksSignificant(d float64, n, m int, alpha float64) bool {
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return d > c*math.Sqrt(float64(n+m)/float64(n*m))
}

// histogramFrac returns the per-bin mass of a sorted sample for the given
// interior edges (len(edges)+1 bins), with a small floor to keep PSI
// finite.
func histogramFrac(sorted []float64, edges []float64) []float64 {
	counts := make([]float64, len(edges)+1)
	for _, v := range sorted {
		bin := sort.SearchFloat64s(edges, v)
		counts[bin]++
	}
	n := float64(len(sorted))
	for i := range counts {
		counts[i] = (counts[i] + 1e-4) / (n + 1e-4*float64(len(counts)))
	}
	return counts
}

// psiValue computes sum((cur−ref)·ln(cur/ref)).
func psiValue(ref, cur []float64) float64 {
	var psi float64
	for i := range ref {
		psi += (cur[i] - ref[i]) * math.Log(cur[i]/ref[i])
	}
	return psi
}
