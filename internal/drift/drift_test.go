package drift

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func gaussTable(seed int64, n int, mean, std float64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("g", []string{"f0", "f1"}, []string{"x"})
	for i := 0; i < n; i++ {
		_ = tb.Append([]float64{mean + rng.NormFloat64()*std, rng.NormFloat64()}, 0)
	}
	return tb
}

func TestNoDriftOnSameDistribution(t *testing.T) {
	ref := gaussTable(1, 500, 0, 1)
	det, err := Fit(ref, 0.01, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	batch := gaussTable(2, 300, 0, 1)
	rep, err := det.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted {
		t.Fatalf("false drift alarm: %+v", rep.Features)
	}
	if Score(rep) != 1 {
		t.Fatalf("score %v", Score(rep))
	}
}

func TestDetectsMeanShift(t *testing.T) {
	ref := gaussTable(3, 500, 0, 1)
	det, err := Fit(ref, 0.01, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	batch := gaussTable(4, 300, 2.5, 1) // shifted first feature
	rep, err := det.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Features[0].Drifted {
		t.Fatalf("mean shift undetected: %+v", rep.Features[0])
	}
	if rep.Features[1].Drifted {
		t.Fatalf("untouched feature flagged: %+v", rep.Features[1])
	}
	if rep.DriftedFraction != 0.5 || !rep.Drifted {
		t.Fatalf("aggregate wrong: %+v", rep)
	}
	if Score(rep) != 0.5 {
		t.Fatalf("score %v", Score(rep))
	}
}

func TestDetectsVarianceShift(t *testing.T) {
	ref := gaussTable(5, 600, 0, 1)
	det, err := Fit(ref, 0.01, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	batch := gaussTable(6, 400, 0, 3)
	rep, err := det.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Features[0].Drifted {
		t.Fatal("variance inflation undetected")
	}
}

func TestKSStatisticKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := ksStatistic(a, a); d != 0 {
		t.Fatalf("identical samples KS %v", d)
	}
	b := []float64{10, 11, 12, 13}
	if d := ksStatistic(a, b); d != 1 {
		t.Fatalf("disjoint samples KS %v, want 1", d)
	}
}

func TestPSIZeroForIdenticalHistograms(t *testing.T) {
	ref := []float64{0.25, 0.25, 0.25, 0.25}
	if psi := psiValue(ref, ref); psi != 0 {
		t.Fatalf("psi %v", psi)
	}
	shifted := []float64{0.4, 0.3, 0.2, 0.1}
	if psi := psiValue(ref, shifted); psi <= 0 {
		t.Fatalf("shifted psi %v should be positive", psi)
	}
}

func TestPSIFiniteForEmptyBins(t *testing.T) {
	// A batch entirely inside one reference bin must not produce Inf.
	sorted := []float64{5, 5, 5, 5}
	frac := histogramFrac(sorted, []float64{1, 2, 3})
	for _, f := range frac {
		if f <= 0 {
			t.Fatalf("zero mass bin: %v", frac)
		}
	}
	ref := histogramFrac([]float64{0.5, 1.5, 2.5, 3.5}, []float64{1, 2, 3})
	if psi := psiValue(ref, frac); math.IsInf(psi, 0) || math.IsNaN(psi) {
		t.Fatalf("psi not finite: %v", psi)
	}
}

func TestFitValidation(t *testing.T) {
	small := gaussTable(7, 5, 0, 1)
	if _, err := Fit(small, 0.01, 0.2, 10); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}

func TestDetectValidation(t *testing.T) {
	ref := gaussTable(8, 100, 0, 1)
	det, err := Fit(ref, 0.01, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.New("o", []string{"only"}, []string{"x"})
	_ = other.Append([]float64{1}, 0)
	_ = other.Append([]float64{2}, 0)
	if _, err := det.Detect(other); err == nil {
		t.Fatal("expected feature-count error")
	}
	one := dataset.New("one", ref.FeatureNames, ref.ClassNames)
	_ = one.Append([]float64{1, 2}, 0)
	if _, err := det.Detect(one); err == nil {
		t.Fatal("expected too-few-batch-samples error")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ref := gaussTable(9, 100, 0, 1)
	det, err := Fit(ref, -1, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if det.Alpha != 0.01 || det.PSIThreshold != 0.2 || det.Bins != 10 {
		t.Fatalf("defaults %+v", det)
	}
}
