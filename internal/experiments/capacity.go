package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/loadgen"
	"repro/internal/ml"
	"repro/internal/service"
)

// LoadSeries is the measured latency behaviour of one endpoint under load:
// the summary report plus the response-times-over-active-threads series
// the paper plots in Fig. 8.
type LoadSeries struct {
	Endpoint      string                `json:"endpoint"`
	Threads       int                   `json:"threads"`
	MeanMs        float64               `json:"meanMs"`
	P95Ms         float64               `json:"p95Ms"`
	ThroughputRPS float64               `json:"throughputRps"`
	ErrorRate     float64               `json:"errorRate"`
	OverThreads   []loadgen.ThreadPoint `json:"overThreads"`
}

func toSeries(endpoint string, threads int, res *loadgen.Results) LoadSeries {
	s := res.Summarize()
	return LoadSeries{
		Endpoint:      endpoint,
		Threads:       threads,
		MeanMs:        float64(s.Mean.Microseconds()) / 1e3,
		P95Ms:         float64(s.P95.Microseconds()) / 1e3,
		ThroughputRPS: s.Throughput,
		ErrorRate:     s.ErrorRate,
		OverThreads:   res.OverActiveThreads(),
	}
}

// capacityThreads returns the fig-8b/8c thread-group geometry.
func (c Config) capacityThreads() (threads, iterations int, rampUp time.Duration) {
	if c.Quick {
		return 12, 4, 200 * time.Millisecond
	}
	// Enough iterations per thread that the thread population overlaps
	// after the ramp-up — the paper's response-times-over-active-threads
	// view needs sustained concurrency, not a one-shot volley.
	return 100, 20, 2 * time.Second
}

// fig8dConcurrency returns the fig-8d concurrency sweep.
func (c Config) fig8dConcurrency() []int {
	if c.Quick {
		return []int{2, 8}
	}
	return []int{5, 10, 15, 20, 25}
}

// deployUC2System trains the UC2 NN, deploys the full SPATIAL stack on
// loopback, and returns the system, the serialized model, and the
// standardized test table.
func deployUC2System(ctx context.Context, cfg Config) (*core.System, json.RawMessage, *service.TableJSON, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	nn, err := fitByName("nn", train, cfg.seed())
	if err != nil {
		return nil, nil, nil, err
	}
	blob, err := ml.MarshalModel(nn)
	if err != nil {
		return nil, nil, nil, err
	}
	sys := core.NewSystem(core.Options{HealthInterval: 500 * time.Millisecond})
	if _, _, err := sys.DeployLocal(ctx); err != nil {
		return nil, nil, nil, err
	}
	wire := service.FromTable(test)
	return sys, blob, &wire, nil
}

// Fig8b reproduces Fig. 8(b): the impact-resilience micro-service
// (FGSM evasion impact) under ~100 concurrent requests through the
// gateway. The paper observes convergence to a stable mean (~1.6 s on
// their hardware); the reproduction checks the same saturation shape.
func Fig8b(cfg Config) (LoadSeries, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	sys, blob, wire, err := deployUC2System(ctx, cfg)
	if err != nil {
		return LoadSeries{}, err
	}
	defer sys.Shutdown(context.Background())

	body, err := json.Marshal(service.EvasionImpactRequest{Model: blob, Clean: *wire, Eps: fgsmEps})
	if err != nil {
		return LoadSeries{}, err
	}
	threads, iters, ramp := cfg.capacityThreads()
	sampler := &loadgen.HTTPSampler{
		Method: http.MethodPost,
		URL:    sys.GatewayURL() + "/resilience/impact/evasion",
		Body:   body,
		Header: http.Header{"Content-Type": []string{"application/json"}},
		Client: &http.Client{Timeout: 2 * time.Minute},
	}
	res, err := loadgen.Run(ctx, loadgen.ThreadGroup{Threads: threads, RampUp: ramp, Iterations: iters}, sampler)
	if err != nil {
		return LoadSeries{}, err
	}
	series := toSeries("resilience/impact/evasion", threads, res)
	printSeries(cfg, "Fig 8(b): impact-resilience service under concurrent load", series)
	return series, nil
}

// Fig8cResult pairs the SHAP and LIME series of Fig. 8(c).
type Fig8cResult struct {
	SHAP LoadSeries `json:"shap"`
	LIME LoadSeries `json:"lime"`
}

// Fig8c reproduces Fig. 8(c): SHAP and LIME tabular-explanation latency
// under ~100 concurrent requests (paper: 228.6 ms and 243.4 ms mean).
func Fig8c(cfg Config) (Fig8cResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	sys, blob, wire, err := deployUC2System(ctx, cfg)
	if err != nil {
		return Fig8cResult{}, err
	}
	defer sys.Shutdown(context.Background())

	shapSamples := 300
	limeSamples := 1200
	if cfg.Quick {
		shapSamples, limeSamples = 100, 300
	}
	shapBody, err := json.Marshal(service.SHAPRequest{
		Model:      blob,
		Instance:   wire.X[0],
		Class:      wire.Y[0],
		Background: wire.X[1:5],
		Samples:    shapSamples,
		Seed:       cfg.seed(),
	})
	if err != nil {
		return Fig8cResult{}, err
	}
	scale := make([]float64, len(wire.X[0]))
	for i := range scale {
		scale[i] = 1
	}
	limeBody, err := json.Marshal(service.LIMETabularRequest{
		Model:    blob,
		Instance: wire.X[0],
		Class:    wire.Y[0],
		Scale:    scale,
		Samples:  limeSamples,
		Seed:     cfg.seed(),
	})
	if err != nil {
		return Fig8cResult{}, err
	}

	threads, iters, ramp := cfg.capacityThreads()
	run := func(path string, body []byte) (LoadSeries, error) {
		sampler := &loadgen.HTTPSampler{
			Method: http.MethodPost,
			URL:    sys.GatewayURL() + path,
			Body:   body,
			Header: http.Header{"Content-Type": []string{"application/json"}},
			Client: &http.Client{Timeout: 2 * time.Minute},
		}
		res, err := loadgen.Run(ctx, loadgen.ThreadGroup{Threads: threads, RampUp: ramp, Iterations: iters}, sampler)
		if err != nil {
			return LoadSeries{}, err
		}
		return toSeries(path, threads, res), nil
	}
	var out Fig8cResult
	if out.SHAP, err = run("/shap/explain", shapBody); err != nil {
		return Fig8cResult{}, fmt.Errorf("shap load: %w", err)
	}
	if out.LIME, err = run("/lime/explain/tabular", limeBody); err != nil {
		return Fig8cResult{}, fmt.Errorf("lime load: %w", err)
	}
	printSeries(cfg, "Fig 8(c): SHAP under concurrent load (paper ~228.6ms)", out.SHAP)
	printSeries(cfg, "Fig 8(c): LIME under concurrent load (paper ~243.4ms)", out.LIME)
	return out, nil
}

// Fig8dResult is the image-LIME concurrency sweep of Fig. 8(d).
type Fig8dResult struct {
	Points []LoadSeries `json:"points"`
}

// Fig8d reproduces Fig. 8(d): image-LIME (a heavy XAI workload) under an
// increasing number of concurrent users with a 1 s ramp-up. The paper's
// observation: response time grows steadily with concurrency and exceeds
// one second, making image XAI unsuitable for tight monitoring loops.
func Fig8d(cfg Config) (Fig8dResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	size := 24
	limeSamples := 400
	iters := 3
	if cfg.Quick {
		size, limeSamples, iters = 16, 120, 3
	}
	shapes, err := datagen.Shapes(datagen.ShapesConfig{Samples: 360, Size: size, Seed: cfg.seed()})
	if err != nil {
		return Fig8dResult{}, err
	}
	model := ml.NewMLP(ml.MLPConfig{Hidden: []int{64, 32}, LearningRate: 0.05, Momentum: 0.9, Epochs: 25, BatchSize: 32, Seed: cfg.seed()})
	if err := model.Fit(shapes); err != nil {
		return Fig8dResult{}, err
	}
	blob, err := ml.MarshalModel(model)
	if err != nil {
		return Fig8dResult{}, err
	}

	sys := core.NewSystem(core.Options{HealthInterval: 500 * time.Millisecond})
	if _, _, err := sys.DeployLocal(ctx); err != nil {
		return Fig8dResult{}, err
	}
	defer sys.Shutdown(context.Background())

	body, err := json.Marshal(service.LIMEImageRequest{
		Model:   blob,
		Image:   shapes.X[0],
		Class:   shapes.Y[0],
		W:       size,
		H:       size,
		Patch:   4,
		Samples: limeSamples,
		Seed:    cfg.seed(),
	})
	if err != nil {
		return Fig8dResult{}, err
	}

	var out Fig8dResult
	for _, threads := range cfg.fig8dConcurrency() {
		sampler := &loadgen.HTTPSampler{
			Method: http.MethodPost,
			URL:    sys.GatewayURL() + "/lime/explain/image",
			Body:   body,
			Header: http.Header{"Content-Type": []string{"application/json"}},
			Client: &http.Client{Timeout: 5 * time.Minute},
		}
		res, err := loadgen.Run(ctx, loadgen.ThreadGroup{Threads: threads, RampUp: time.Second, Iterations: iters}, sampler)
		if err != nil {
			return Fig8dResult{}, err
		}
		out.Points = append(out.Points, toSeries("lime/explain/image", threads, res))
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nFig 8(d): image-LIME response time vs concurrent users (1s ramp-up)\n")
	fmt.Fprintf(w, "%8s %10s %10s %12s %8s\n", "users", "mean", "p95", "throughput", "errors")
	for _, p := range out.Points {
		fmt.Fprintf(w, "%8d %8.1fms %8.1fms %9.2f/s %7.1f%%\n",
			p.Threads, p.MeanMs, p.P95Ms, p.ThroughputRPS, p.ErrorRate*100)
	}
	return out, nil
}

func printSeries(cfg Config, title string, s LoadSeries) {
	w := cfg.out()
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "threads=%d mean=%.1fms p95=%.1fms throughput=%.2f/s errors=%.1f%%\n",
		s.Threads, s.MeanMs, s.P95Ms, s.ThroughputRPS, s.ErrorRate*100)
	fmt.Fprintf(w, "%-14s %12s %8s\n", "activeThreads", "meanLatency", "samples")
	for _, p := range s.OverThreads {
		fmt.Fprintf(w, "%-14d %10.1fms %8d\n", p.ActiveThreads, float64(p.MeanLatency.Microseconds())/1e3, p.Count)
	}
}
