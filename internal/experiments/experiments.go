// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI-§VII): the use-case-1 poisoning study (Fig. 6), the
// use-case-2 evasion/poisoning study (Fig. 7), and the capacity-load study
// (Fig. 8). Each experiment returns structured results and can print the
// same rows/series the paper reports. cmd/spatial-bench is the CLI entry
// point; bench_test.go wraps the same code in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/ml"
)

// Config scales the experiments. Zero values select the full-size runs the
// EXPERIMENTS.md numbers were produced with; Quick selects reduced sizes
// for benchmarks and smoke tests.
type Config struct {
	// Quick reduces dataset sizes, sweep points and XAI budgets so a
	// full pass fits in a benchmark iteration.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Out receives human-readable tables; nil discards them.
	Out io.Writer
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// uniMiBSamples returns the UC1 dataset size.
func (c Config) uniMiBSamples() int {
	if c.Quick {
		return 700
	}
	return 2400
}

// poisonRates returns the label-flip sweep of Fig. 6.
func (c Config) poisonRates() []float64 {
	if c.Quick {
		return []float64{0, 0.10, 0.30, 0.50}
	}
	return []float64{0, 0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
}

// uc2PoisonRates returns the poisoning sweep of Fig. 7(c,d).
func (c Config) uc2PoisonRates() []float64 {
	if c.Quick {
		return []float64{0, 0.20, 0.50}
	}
	return []float64{0, 0.10, 0.20, 0.30, 0.40, 0.50}
}

// shapBudget returns (coalition samples, background rows, max instances)
// for the SHAP-dissimilarity experiment.
func (c Config) shapBudget() (samples, background, maxInstances int) {
	if c.Quick {
		return 128, 4, 10
	}
	return 384, 6, 24
}

// uc1Models are the five use-case-1 model families, in the paper's order.
var uc1Models = []string{"lr", "dnn", "rf", "dt", "mlp"}

// uc2Models are the three use-case-2 model families. "nn" is the paper's
// name for the neural network; it resolves to the MLP implementation.
var uc2Models = []string{"nn", "lgbm", "xgb"}

// needsScaling reports whether an algorithm trains on standardized
// features (gradient-based models).
func needsScaling(algo string) bool {
	switch algo {
	case "lr", "mlp", "dnn", "nn":
		return true
	}
	return false
}

// uc1Data builds the binary fall-detection task with a stratified 80/20
// split.
func uc1Data(cfg Config) (train, test *dataset.Table, err error) {
	tb, err := datagen.UniMiBBinary(datagen.UniMiBConfig{Samples: cfg.uniMiBSamples(), Seed: cfg.seed()})
	if err != nil {
		return nil, nil, fmt.Errorf("uc1 data: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	return tb.StratifiedSplit(rng, 0.8)
}

// uc2Data builds the network-activity task. The split fraction reproduces
// the paper's 103-sample test set. All use-case-2 models train on min-max
// normalized features: the neural network needs the scaling, the tree
// ensembles are invariant to the monotone transform, and the shared
// representation is what lets adversarial samples crafted on the NN
// transfer to the other models (the paper's setup).
func uc2Data(cfg Config) (train, test *dataset.Table, scaler *dataset.MinMaxScaler, err error) {
	netCfg := datagen.DefaultNetTrafficConfig()
	netCfg.Seed = cfg.seed()
	if cfg.Quick {
		netCfg.Web, netCfg.Interactive, netCfg.Video = 120, 14, 18
	}
	tb, _, err := datagen.NetTraffic(netCfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("uc2 data: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	train, test, err = tb.StratifiedSplit(rng, 0.73)
	if err != nil {
		return nil, nil, nil, err
	}
	scaler, err = dataset.FitMinMax(train)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := scaler.Transform(train); err != nil {
		return nil, nil, nil, err
	}
	if err := scaler.Transform(test); err != nil {
		return nil, nil, nil, err
	}
	return train, test, scaler, nil
}

// fitByName trains a fresh model of the named algorithm.
func fitByName(algo string, train *dataset.Table, seed int64) (ml.Classifier, error) {
	model, err := ml.NewByName(algo, seed)
	if err != nil {
		return nil, err
	}
	if err := model.Fit(train); err != nil {
		return nil, fmt.Errorf("fit %s: %w", algo, err)
	}
	return model, nil
}

// trainModel fits algorithm algo on train, standardizing features when the
// model needs it. It returns the model, the (possibly standardized) train
// and test tables, and the scaler used (nil when none).
func trainModel(algo string, train, test *dataset.Table, seed int64) (ml.Classifier, *dataset.Table, *dataset.Table, *dataset.Scaler, error) {
	model, err := ml.NewByName(algo, seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var scaler *dataset.Scaler
	if needsScaling(algo) {
		scaler, err = dataset.FitScaler(train)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		train = train.Clone()
		test = test.Clone()
		if err := scaler.Transform(train); err != nil {
			return nil, nil, nil, nil, err
		}
		if err := scaler.Transform(test); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if err := model.Fit(train); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("fit %s: %w", algo, err)
	}
	return model, train, test, scaler, nil
}

// ModelScore is one row of a baseline table.
type ModelScore struct {
	Model     string  `json:"model"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

func scoreOf(model string, m ml.Metrics) ModelScore {
	return ModelScore{Model: model, Accuracy: m.Accuracy, Precision: m.Precision, Recall: m.Recall, F1: m.F1}
}

func printScores(w io.Writer, title string, scores []ModelScore) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-6s %9s %10s %8s %8s\n", "model", "accuracy", "precision", "recall", "f1")
	for _, s := range scores {
		fmt.Fprintf(w, "%-6s %8.1f%% %9.1f%% %7.1f%% %7.1f%%\n",
			s.Model, s.Accuracy*100, s.Precision*100, s.Recall*100, s.F1*100)
	}
}
