package experiments

import (
	"testing"
)

// quickCfg runs every experiment at reduced scale.
func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func scoreByModel(scores []ModelScore, model string) (ModelScore, bool) {
	for _, s := range scores {
		if s.Model == model {
			return s, true
		}
	}
	return ModelScore{}, false
}

func TestUC1BaselineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains five models")
	}
	res, err := UC1Baseline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 5 {
		t.Fatalf("scores %d", len(res.Scores))
	}
	lr, _ := scoreByModel(res.Scores, "lr")
	dnn, _ := scoreByModel(res.Scores, "dnn")
	mlp, _ := scoreByModel(res.Scores, "mlp")
	if dnn.Accuracy < 0.85 || mlp.Accuracy < 0.85 {
		t.Fatalf("nonlinear baselines too low: dnn %.3f mlp %.3f", dnn.Accuracy, mlp.Accuracy)
	}
	// The paper's headline gap: the linear baseline trails clearly.
	if lr.Accuracy > dnn.Accuracy-0.08 {
		t.Fatalf("lr %.3f should trail dnn %.3f", lr.Accuracy, dnn.Accuracy)
	}
}

func TestFig6DegradationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 5 models x 4 rates")
	}
	cfg := quickCfg()
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := cfg.poisonRates()
	wantPoints := len(uc1Models) * len(rates)
	if len(res.Points) != wantPoints {
		t.Fatalf("points %d, want %d", len(res.Points), wantPoints)
	}
	// Every model must lose accuracy from 0% to 50% poisoning: at 50%
	// random binary flipping the labels carry almost no signal.
	for _, model := range uc1Models {
		var first, last float64
		for _, p := range res.Points {
			if p.Model != model {
				continue
			}
			if p.Rate == 0 {
				first = p.Accuracy
			}
			if p.Rate == rates[len(rates)-1] {
				last = p.Accuracy
			}
		}
		if last >= first {
			t.Errorf("%s: accuracy did not degrade (%.3f -> %.3f)", model, first, last)
		}
	}
}

func TestFig6SHAPDissimilarityRises(t *testing.T) {
	if testing.Short() {
		t.Skip("trains DNN per rate and explains")
	}
	cfg := quickCfg()
	res, err := Fig6SHAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.poisonRates()) {
		t.Fatalf("points %d", len(res.Points))
	}
	first := res.Points[0].Dissimilarity
	last := res.Points[len(res.Points)-1].Dissimilarity
	if last <= first {
		t.Fatalf("dissimilarity did not rise with poisoning: %.4f -> %.4f", first, last)
	}
}

func TestUC2BaselineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three models")
	}
	res, err := UC2Baseline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("scores %d", len(res.Scores))
	}
	for _, s := range res.Scores {
		if s.Accuracy < 0.8 {
			t.Errorf("%s baseline %.3f < 0.80", s.Model, s.Accuracy)
		}
	}
}

func TestUC2FGSMShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three models and attacks")
	}
	res, err := UC2FGSM(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("scores %d", len(res.Scores))
	}
	for _, s := range res.Scores {
		if s.AdvAcc >= s.CleanAcc {
			t.Errorf("%s: FGSM did not degrade (%.3f -> %.3f)", s.Model, s.CleanAcc, s.AdvAcc)
		}
		if s.Impact <= 0 {
			t.Errorf("%s: zero impact", s.Model)
		}
		if s.ComplexityUS <= 0 {
			t.Errorf("%s: zero complexity", s.Model)
		}
	}
	// Complexity is constant across victims (samples crafted once).
	if res.Scores[0].ComplexityUS != res.Scores[1].ComplexityUS || res.Scores[1].ComplexityUS != res.Scores[2].ComplexityUS {
		t.Error("crafting complexity should be identical for every victim")
	}
}

func TestFig7SHAPProtocolFeaturesMatter(t *testing.T) {
	if testing.Short() {
		t.Skip("trains NN and explains")
	}
	res, err := Fig7SHAP(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benign) != 21 || len(res.Attacked) != 21 {
		t.Fatalf("rank lengths %d/%d", len(res.Benign), len(res.Attacked))
	}
	// The paper's observation: protocol features are top-ranked on
	// benign traffic.
	_, tcpRank := Importance(res.Benign, "proto_tcp")
	_, udpRank := Importance(res.Benign, "proto_udp")
	best := tcpRank
	if udpRank < best {
		best = udpRank
	}
	if best > 5 {
		t.Errorf("no protocol feature in benign top-5 (tcp #%d, udp #%d)", tcpRank, udpRank)
	}
}

func TestFig7PoisoningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains NN per rate")
	}
	cfg := quickCfg()
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineAccuracy < 0.8 {
		t.Fatalf("baseline %.3f", res.BaselineAccuracy)
	}
	rates := cfg.uc2PoisonRates()
	if len(res.Points) != 2*len(rates) {
		t.Fatalf("points %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Rate == 0 && p.Impact != 0 {
			t.Errorf("%s: nonzero impact at zero rate", p.Attack)
		}
		if p.ComplexityFrac != p.Rate {
			t.Errorf("%s: complexity %v != rate %v", p.Attack, p.ComplexityFrac, p.Rate)
		}
	}
	// The heaviest label-flip should hurt.
	var flipMax float64
	for _, p := range res.Points {
		if p.Attack == "label-flip" && p.Impact > flipMax {
			flipMax = p.Impact
		}
	}
	if flipMax <= 0 {
		t.Error("label flipping never had impact")
	}
	if res.GAN.Impact <= 0.05 {
		t.Errorf("GAN poisoning impact %.3f too small", res.GAN.Impact)
	}
}

func TestFig8bLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys system and generates load")
	}
	res, err := Fig8b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanMs <= 0 {
		t.Fatal("no latency measured")
	}
	if res.ErrorRate != 0 {
		t.Fatalf("error rate %.2f", res.ErrorRate)
	}
	if len(res.OverThreads) == 0 {
		t.Fatal("no over-threads series")
	}
}

func TestFig8cLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys system and generates load")
	}
	res, err := Fig8c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SHAP.MeanMs <= 0 || res.LIME.MeanMs <= 0 {
		t.Fatalf("latencies %v %v", res.SHAP.MeanMs, res.LIME.MeanMs)
	}
	if res.SHAP.ErrorRate != 0 || res.LIME.ErrorRate != 0 {
		t.Fatalf("errors %v %v", res.SHAP.ErrorRate, res.LIME.ErrorRate)
	}
}

func TestFig8dLoadGrowsWithConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys system and generates load")
	}
	cfg := quickCfg()
	res, err := Fig8d(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.fig8dConcurrency()) {
		t.Fatalf("points %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.ErrorRate != 0 {
			t.Fatalf("errors at %d users: %.2f", p.Threads, p.ErrorRate)
		}
	}
	// More users on a fixed CPU budget must not make requests faster.
	// The margin is generous: the quick workload is small enough that
	// scheduler noise moves individual means by tens of percent.
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if last.MeanMs < first.MeanMs*0.5 {
		t.Errorf("latency shrank with concurrency: %.1fms @%d -> %.1fms @%d",
			first.MeanMs, first.Threads, last.MeanMs, last.Threads)
	}
}

func TestTaxonomyExperiment(t *testing.T) {
	res, err := Taxonomy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attacks) == 0 || len(res.Vulnerabilities) == 0 {
		t.Fatal("empty taxonomy")
	}
}

func TestRunDispatcher(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	if _, err := Run("taxonomy", quickCfg()); err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("ids %v", ids)
	}
}

func TestExtDefenseRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains DNN three times")
	}
	res, err := ExtDefense(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.SanitizedAcc < p.PoisonedAcc {
			t.Errorf("rate %.0f%%: sanitization hurt (%.3f -> %.3f)", p.Rate*100, p.PoisonedAcc, p.SanitizedAcc)
		}
		if p.Relabeled == 0 {
			t.Errorf("rate %.0f%%: nothing repaired", p.Rate*100)
		}
	}
}

func TestExtPrivacyTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("trains DP models")
	}
	res, err := ExtPrivacy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("points %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Noise <= first.Noise {
		t.Fatal("sweep not ordered")
	}
	if last.Epsilon >= first.Epsilon && first.Noise > 0 {
		t.Errorf("epsilon should shrink with noise: %.2f -> %.2f", first.Epsilon, last.Epsilon)
	}
}

func TestExtFederatedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("federated rounds")
	}
	res, err := ExtFederated(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds")
	}
	final := res.Rounds[len(res.Rounds)-1].EvalAccuracy
	if final < 0.6 {
		t.Fatalf("honest federation accuracy %.3f", final)
	}
	for _, name := range []string{"fedavg", "trimmed-mean", "median"} {
		if _, ok := res.Poisoned[name]; !ok {
			t.Fatalf("missing aggregator %s", name)
		}
	}
}
