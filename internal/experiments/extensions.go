package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/fedlearn"
	"repro/internal/ml"
	"repro/internal/privacy"
)

// The ext-* experiments go beyond the paper's figures: they quantify the
// future-work capabilities the paper calls for (corrective actions,
// privacy-preserving computation, the distributed architecture of
// Fig. 2c) with the same harness and reporting style.

// ExtDefensePoint is one row of the sanitization-recovery sweep.
type ExtDefensePoint struct {
	Rate         float64 `json:"rate"`
	PoisonedAcc  float64 `json:"poisonedAcc"`
	SanitizedAcc float64 `json:"sanitizedAcc"`
	Relabeled    int     `json:"relabeled"`
}

// ExtDefenseResult reports how much accuracy kNN-consensus label
// sanitization recovers after label-flipping poisoning (the §VII
// corrective action), on the use-case-2 task with the NN. The 21-d
// normalized flow-feature space is where kNN consensus is appropriate;
// on raw high-dimensional time series (use case 1) a distance-based
// defense needs a learned embedding first.
type ExtDefenseResult struct {
	CleanAccuracy float64           `json:"cleanAccuracy"`
	Points        []ExtDefensePoint `json:"points"`
}

// ExtDefense sweeps label-flip rates and measures the model before and
// after sanitization.
func ExtDefense(cfg Config) (ExtDefenseResult, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return ExtDefenseResult{}, err
	}
	model, err := fitByName("nn", train, cfg.seed())
	if err != nil {
		return ExtDefenseResult{}, err
	}
	cleanMetrics, err := ml.Evaluate(model, test)
	if err != nil {
		return ExtDefenseResult{}, err
	}

	rates := []float64{0.20, 0.30, 0.40}
	if cfg.Quick {
		rates = []float64{0.30}
	}
	res := ExtDefenseResult{CleanAccuracy: cleanMetrics.Accuracy}
	for _, rate := range rates {
		poisoned, err := attack.LabelFlip(train, rate, cfg.seed()+int64(rate*100))
		if err != nil {
			return ExtDefenseResult{}, err
		}
		dirty, err := fitByName("nn", poisoned, cfg.seed())
		if err != nil {
			return ExtDefenseResult{}, err
		}
		dirtyMetrics, err := ml.Evaluate(dirty, test)
		if err != nil {
			return ExtDefenseResult{}, err
		}
		sanitized, rep, err := defense.SanitizeLabels(poisoned, 9, defense.Relabel)
		if err != nil {
			return ExtDefenseResult{}, err
		}
		repaired, err := fitByName("nn", sanitized, cfg.seed())
		if err != nil {
			return ExtDefenseResult{}, err
		}
		repairedMetrics, err := ml.Evaluate(repaired, test)
		if err != nil {
			return ExtDefenseResult{}, err
		}
		res.Points = append(res.Points, ExtDefensePoint{
			Rate:         rate,
			PoisonedAcc:  dirtyMetrics.Accuracy,
			SanitizedAcc: repairedMetrics.Accuracy,
			Relabeled:    rep.Relabeled,
		})
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nExtension: label-sanitization recovery (UC2 NN, clean %.1f%%)\n", res.CleanAccuracy*100)
	fmt.Fprintf(w, "%6s %10s %11s %10s\n", "rate", "poisoned", "sanitized", "relabeled")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%5.0f%% %9.1f%% %10.1f%% %10d\n", p.Rate*100, p.PoisonedAcc*100, p.SanitizedAcc*100, p.Relabeled)
	}
	return res, nil
}

// ExtPrivacyPoint is one row of the DP privacy/utility sweep.
type ExtPrivacyPoint struct {
	Noise     float64 `json:"noise"`
	Epsilon   float64 `json:"epsilon"`
	Accuracy  float64 `json:"accuracy"`
	Advantage float64 `json:"advantage"`
}

// ExtPrivacyResult reports the privacy/utility trade of DP-SGD training on
// use case 2, measured with the membership-inference sensor.
type ExtPrivacyResult struct {
	// Overfit is the reference leakage of an unconstrained tree.
	OverfitAdvantage float64           `json:"overfitAdvantage"`
	Points           []ExtPrivacyPoint `json:"points"`
}

// ExtPrivacy sweeps the DP noise multiplier.
func ExtPrivacy(cfg Config) (ExtPrivacyResult, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return ExtPrivacyResult{}, err
	}
	overfit := ml.NewTree(ml.TreeConfig{MaxDepth: 0, MinLeaf: 1, Seed: cfg.seed()})
	if err := overfit.Fit(train); err != nil {
		return ExtPrivacyResult{}, err
	}
	leak, err := privacy.MembershipInference(overfit, train, test)
	if err != nil {
		return ExtPrivacyResult{}, err
	}

	noises := []float64{0, 0.5, 1.0, 2.0}
	if cfg.Quick {
		noises = []float64{0, 1.0}
	}
	res := ExtPrivacyResult{OverfitAdvantage: leak.Advantage}
	for _, noise := range noises {
		dpCfg := privacy.DefaultDPLogRegConfig()
		dpCfg.NoiseMultiplier = noise
		dpCfg.Seed = cfg.seed()
		m := privacy.NewDPLogReg(dpCfg)
		if err := m.Fit(train); err != nil {
			return ExtPrivacyResult{}, err
		}
		metrics, err := ml.Evaluate(m, test)
		if err != nil {
			return ExtPrivacyResult{}, err
		}
		mi, err := privacy.MembershipInference(m, train, test)
		if err != nil {
			return ExtPrivacyResult{}, err
		}
		eps, err := m.Epsilon(1e-5)
		if err != nil {
			return ExtPrivacyResult{}, err
		}
		res.Points = append(res.Points, ExtPrivacyPoint{
			Noise:     noise,
			Epsilon:   eps,
			Accuracy:  metrics.Accuracy,
			Advantage: mi.Advantage,
		})
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nExtension: DP privacy/utility on UC2 (overfit-tree MI advantage %.2f)\n", res.OverfitAdvantage)
	fmt.Fprintf(w, "%6s %10s %9s %11s\n", "noise", "epsilon", "acc", "advantage")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%6.1f %10.2f %8.1f%% %11.2f\n", p.Noise, p.Epsilon, p.Accuracy*100, p.Advantage)
	}
	return res, nil
}

// ExtFederatedResult reports the Fig. 2(c) federation study: accuracy per
// round, then final accuracy under poisoned clients per aggregator.
type ExtFederatedResult struct {
	Rounds   []fedlearn.RoundStat `json:"rounds"`
	Poisoned map[string]float64   `json:"poisoned"` // aggregator -> final accuracy
}

// ExtFederated partitions use case 2 across clients, trains with FedAvg,
// then poisons a quarter of the clients and compares aggregators.
func ExtFederated(cfg Config) (ExtFederatedResult, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return ExtFederatedResult{}, err
	}
	numClients, rounds := 8, 12
	if cfg.Quick {
		numClients, rounds = 4, 6
	}
	clients, err := fedlearn.PartitionIID(train, numClients, cfg.seed())
	if err != nil {
		return ExtFederatedResult{}, err
	}
	lrCfg := ml.LogRegConfig{LearningRate: 0.2, Epochs: 3, BatchSize: 16, WarmStart: true, Seed: cfg.seed()}
	factory := func() (ml.ParamClassifier, error) { return ml.NewLogReg(lrCfg), nil }
	runFL := func(cs []fedlearn.Client, agg fedlearn.Aggregator) ([]fedlearn.RoundStat, error) {
		global := ml.NewLogReg(ml.DefaultLogRegConfig())
		if err := global.Init(train.NumFeatures(), train.NumClasses()); err != nil {
			return nil, err
		}
		return fedlearn.Run(global, factory, cs, test, fedlearn.Config{Rounds: rounds, Aggregator: agg, Seed: cfg.seed()})
	}

	honest, err := runFL(clients, fedlearn.FedAvg)
	if err != nil {
		return ExtFederatedResult{}, err
	}
	res := ExtFederatedResult{Rounds: honest, Poisoned: make(map[string]float64)}

	poisoned := make([]fedlearn.Client, len(clients))
	copy(poisoned, clients)
	rng := rand.New(rand.NewSource(cfg.seed()))
	for i := 0; i < len(clients)/4; i++ {
		flipped, err := attack.LabelFlip(clients[i].Data, 1.0, rng.Int63())
		if err != nil {
			return ExtFederatedResult{}, err
		}
		poisoned[i] = fedlearn.Client{Name: clients[i].Name + "-poisoned", Data: flipped}
	}
	for name, agg := range map[string]fedlearn.Aggregator{
		"fedavg": fedlearn.FedAvg, "trimmed-mean": fedlearn.TrimmedMean, "median": fedlearn.Median,
	} {
		stats, err := runFL(poisoned, agg)
		if err != nil {
			return ExtFederatedResult{}, err
		}
		res.Poisoned[name] = stats[len(stats)-1].EvalAccuracy
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nExtension: federated learning on UC2 (Fig 2c; %d clients)\n", numClients)
	fmt.Fprintf(w, "honest FedAvg: round 1 %.1f%% -> round %d %.1f%%\n",
		honest[0].EvalAccuracy*100, rounds, honest[len(honest)-1].EvalAccuracy*100)
	fmt.Fprintf(w, "with %d/%d clients poisoned:\n", len(clients)/4, numClients)
	for _, name := range []string{"fedavg", "trimmed-mean", "median"} {
		fmt.Fprintf(w, "  %-13s %.1f%%\n", name, res.Poisoned[name]*100)
	}
	return res, nil
}
