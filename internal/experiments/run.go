package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// IDs lists the experiment identifiers Run accepts, in the order they
// appear in the paper.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// registry maps experiment ids to runners. Every runner returns its
// structured result (for EXPERIMENTS.md) after printing its table.
var registry = map[string]func(Config) (any, error){
	"uc1-baseline": func(c Config) (any, error) { return UC1Baseline(c) },
	"fig6":         func(c Config) (any, error) { return Fig6(c) },
	"fig6-shap":    func(c Config) (any, error) { return Fig6SHAP(c) },
	"uc2-baseline": func(c Config) (any, error) { return UC2Baseline(c) },
	"uc2-fgsm":     func(c Config) (any, error) { return UC2FGSM(c) },
	"fig7-shap":    func(c Config) (any, error) { return Fig7SHAP(c) },
	"fig7":         func(c Config) (any, error) { return Fig7(c) },
	"fig8b":        func(c Config) (any, error) { return Fig8b(c) },
	"fig8c":        func(c Config) (any, error) { return Fig8c(c) },
	"fig8d":        func(c Config) (any, error) { return Fig8d(c) },
	"taxonomy":     func(c Config) (any, error) { return Taxonomy(c) },

	// Extensions beyond the paper's figures (future-work capabilities).
	"ext-defense":   func(c Config) (any, error) { return ExtDefense(c) },
	"ext-privacy":   func(c Config) (any, error) { return ExtPrivacy(c) },
	"ext-federated": func(c Config) (any, error) { return ExtFederated(c) },
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (any, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return fn(cfg)
}

// TaxonomyResult summarizes the Fig. 1 / Fig. 3 registries.
type TaxonomyResult struct {
	Attacks         []core.Attack        `json:"attacks"`
	Vulnerabilities []core.Vulnerability `json:"vulnerabilities"`
}

// Taxonomy validates and prints the encoded attack/vulnerability
// taxonomies of Figs. 1 and 3.
func Taxonomy(cfg Config) (TaxonomyResult, error) {
	if err := core.ValidateTaxonomy(); err != nil {
		return TaxonomyResult{}, err
	}
	res := TaxonomyResult{Attacks: core.Attacks(), Vulnerabilities: core.Vulnerabilities()}
	w := cfg.out()
	fmt.Fprintf(w, "\nFig 1: attack taxonomy (%d attacks)\n", len(res.Attacks))
	fmt.Fprintf(w, "%-34s %-22s %-9s %s\n", "attack", "class", "stage", "algorithms")
	for _, a := range res.Attacks {
		fmt.Fprintf(w, "%-34s %-22s %-9s %v\n", a.Name, a.Class, a.Stage, a.Algorithms)
	}
	fmt.Fprintf(w, "\nFig 3: vulnerability taxonomy (%d entries)\n", len(res.Vulnerabilities))
	for _, stage := range []pipeline.Stage{
		pipeline.StageCollect, pipeline.StageLabel, pipeline.StageTrain,
		pipeline.StageEvaluate, pipeline.StageDeploy, pipeline.StageMonitor,
	} {
		for _, v := range core.VulnerabilitiesAtStage(stage) {
			fmt.Fprintf(w, "%-10s %-36s %-15s %s\n", stage, v.Name, v.CIA, v.Description)
		}
	}
	return res, nil
}
