package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/xai"
)

// UC1BaselineResult reproduces the §VII baseline sentence: "LR (73%), DNN
// (97%), RF (97%), DT (90%), and MLP (97%)".
type UC1BaselineResult struct {
	Scores []ModelScore `json:"scores"`
}

// UC1Baseline trains the five use-case-1 models on clean data.
func UC1Baseline(cfg Config) (UC1BaselineResult, error) {
	train, test, err := uc1Data(cfg)
	if err != nil {
		return UC1BaselineResult{}, err
	}
	var res UC1BaselineResult
	for _, algo := range uc1Models {
		model, _, stest, _, err := trainModel(algo, train, test, cfg.seed())
		if err != nil {
			return UC1BaselineResult{}, err
		}
		m, err := ml.Evaluate(model, stest)
		if err != nil {
			return UC1BaselineResult{}, err
		}
		res.Scores = append(res.Scores, scoreOf(algo, m))
	}
	printScores(cfg.out(), "UC1 baseline (paper: LR 73%, DNN 97%, RF 97%, DT 90%, MLP 97%)", res.Scores)
	return res, nil
}

// Fig6Point is one point of the Fig. 6(a) sweep.
type Fig6Point struct {
	Model     string  `json:"model"`
	Rate      float64 `json:"rate"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// Fig6Result holds the label-flip degradation sweep for all five models.
type Fig6Result struct {
	Points []Fig6Point `json:"points"`
}

// Fig6 reproduces Fig. 6(a) i-iii: accuracy, precision and recall of the
// five models as the training labels are randomly flipped at increasing
// rates; evaluation is always on the clean test split.
func Fig6(cfg Config) (Fig6Result, error) {
	train, test, err := uc1Data(cfg)
	if err != nil {
		return Fig6Result{}, err
	}
	var res Fig6Result
	for _, algo := range uc1Models {
		for _, rate := range cfg.poisonRates() {
			poisoned, err := attack.LabelFlip(train, rate, cfg.seed()+int64(rate*1000))
			if err != nil {
				return Fig6Result{}, err
			}
			model, _, stest, _, err := trainModel(algo, poisoned, test, cfg.seed())
			if err != nil {
				return Fig6Result{}, err
			}
			m, err := ml.Evaluate(model, stest)
			if err != nil {
				return Fig6Result{}, err
			}
			res.Points = append(res.Points, Fig6Point{
				Model:     algo,
				Rate:      rate,
				Accuracy:  m.Accuracy,
				Precision: m.Precision,
				Recall:    m.Recall,
			})
		}
	}
	printFig6(cfg, res)
	return res, nil
}

func printFig6(cfg Config, res Fig6Result) {
	w := cfg.out()
	fmt.Fprintf(w, "\nFig 6(a): label flipping vs model performance (clean test set)\n")
	fmt.Fprintf(w, "%-6s", "model")
	for _, r := range cfg.poisonRates() {
		fmt.Fprintf(w, " %5.0f%%", r*100)
	}
	fmt.Fprintln(w)
	for _, metric := range []string{"acc", "prec", "rec"} {
		fmt.Fprintf(w, "-- %s --\n", metric)
		for _, algo := range uc1Models {
			fmt.Fprintf(w, "%-6s", algo)
			for _, p := range res.Points {
				if p.Model != algo {
					continue
				}
				v := p.Accuracy
				switch metric {
				case "prec":
					v = p.Precision
				case "rec":
					v = p.Recall
				}
				fmt.Fprintf(w, " %5.1f%%", v*100)
			}
			fmt.Fprintln(w)
		}
	}
}

// DissimPoint is one point of Fig. 6(a)-iv.
type DissimPoint struct {
	Rate          float64 `json:"rate"`
	Dissimilarity float64 `json:"dissimilarity"`
}

// Fig6SHAPResult holds the SHAP-dissimilarity poisoning indicator sweep.
type Fig6SHAPResult struct {
	Points []DissimPoint `json:"points"`
}

// Fig6SHAP reproduces Fig. 6(a)-iv: the DNN is retrained at each poisoning
// rate, SHAP explanations are computed for fall instances of the clean
// test set, and the mean explanation distance between feature-space
// neighbours (k=5) is reported. The paper's claim: the metric rises with
// the poisoning rate.
func Fig6SHAP(cfg Config) (Fig6SHAPResult, error) {
	train, test, err := uc1Data(cfg)
	if err != nil {
		return Fig6SHAPResult{}, err
	}
	samples, background, maxInstances := cfg.shapBudget()
	rates := cfg.poisonRates()

	var res Fig6SHAPResult
	for _, rate := range rates {
		poisoned, err := attack.LabelFlip(train, rate, cfg.seed()+int64(rate*1000))
		if err != nil {
			return Fig6SHAPResult{}, err
		}
		model, strain, stest, _, err := trainModel("dnn", poisoned, test, cfg.seed())
		if err != nil {
			return Fig6SHAPResult{}, err
		}

		// Fall instances from the clean (standardized) test set.
		var falls [][]float64
		for i, y := range stest.Y {
			if y == 1 {
				falls = append(falls, stest.X[i])
			}
			if len(falls) >= maxInstances {
				break
			}
		}
		if len(falls) < 2 {
			return Fig6SHAPResult{}, fmt.Errorf("fig6-shap: only %d fall instances in test set", len(falls))
		}
		explainer := &xai.KernelSHAP{
			Model:      model,
			Background: strain.X[:background],
			Samples:    samples,
			Seed:       cfg.seed(),
		}
		explanations := make([][]float64, len(falls))
		for i, x := range falls {
			e, err := explainer.Explain(x, 1)
			if err != nil {
				return Fig6SHAPResult{}, fmt.Errorf("fig6-shap explain: %w", err)
			}
			explanations[i] = e
		}
		d, err := xai.Dissimilarity(falls, explanations, 5)
		if err != nil {
			return Fig6SHAPResult{}, err
		}
		res.Points = append(res.Points, DissimPoint{Rate: rate, Dissimilarity: d})
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nFig 6(a)-iv: SHAP dissimilarity of similar fall instances vs poisoning rate\n")
	fmt.Fprintf(w, "%6s  %s\n", "rate", "dissimilarity")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%5.0f%%  %.4f\n", p.Rate*100, p.Dissimilarity)
	}
	return res, nil
}

// uc1DataForTest exposes the UC1 split to the package tests.
func uc1DataForTest(cfg Config) (*dataset.Table, *dataset.Table, error) { return uc1Data(cfg) }
