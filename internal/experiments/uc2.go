package experiments

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/resilience"
	"repro/internal/xai"

	"repro/internal/clock"
)

// UC2BaselineResult reproduces the §VII sentence "NN (96%), LightGBM (94%)
// and XGBoost (94%)".
type UC2BaselineResult struct {
	Scores []ModelScore `json:"scores"`
}

// UC2Baseline trains the three use-case-2 models on clean traces.
func UC2Baseline(cfg Config) (UC2BaselineResult, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return UC2BaselineResult{}, err
	}
	var res UC2BaselineResult
	for _, algo := range uc2Models {
		model, err := fitByName(algo, train, cfg.seed())
		if err != nil {
			return UC2BaselineResult{}, err
		}
		m, err := ml.Evaluate(model, test)
		if err != nil {
			return UC2BaselineResult{}, err
		}
		res.Scores = append(res.Scores, scoreOf(algo, m))
	}
	printScores(cfg.out(), "UC2 baseline (paper: NN 96%, LightGBM 94%, XGBoost 94%)", res.Scores)
	return res, nil
}

// FGSMScore is one row of the use-case-2 evasion table.
type FGSMScore struct {
	Model        string  `json:"model"`
	CleanAcc     float64 `json:"cleanAcc"`
	AdvAcc       float64 `json:"advAcc"`
	Impact       float64 `json:"impact"`
	ComplexityUS float64 `json:"complexityUs"`
}

// UC2FGSMResult reproduces the §VII evasion numbers: accuracy degradation
// (96→71, 94→72, 94→54), impact (29/28/45%), and the constant crafting
// complexity (the paper reports ≈37.86 μs for every model because the
// samples are crafted once, on the NN).
type UC2FGSMResult struct {
	Eps    float64     `json:"eps"`
	Scores []FGSMScore `json:"scores"`
}

// fgsmEps is the perturbation budget in normalized [0,1] feature units.
const fgsmEps = 0.10

// UC2FGSM runs the white-box FGSM attack on the NN and transfers the
// crafted samples to the two boosted-tree models, which were trained on
// the same normalized representation.
func UC2FGSM(cfg Config) (UC2FGSMResult, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return UC2FGSMResult{}, err
	}
	// The NN is both the white-box victim and the crafting surrogate.
	nn, err := fitByName("nn", train, cfg.seed())
	if err != nil {
		return UC2FGSMResult{}, err
	}
	grad, ok := nn.(ml.GradientClassifier)
	if !ok {
		return UC2FGSMResult{}, fmt.Errorf("uc2-fgsm: nn is not differentiable")
	}
	fgsm, err := attack.FGSM(grad, test, fgsmEps)
	if err != nil {
		return UC2FGSMResult{}, err
	}
	craftUS := float64(fgsm.CraftCost.Nanoseconds()) / 1e3

	res := UC2FGSMResult{Eps: fgsmEps}
	for _, algo := range uc2Models {
		victim := nn
		if algo != "nn" {
			victim, err = fitByName(algo, train, cfg.seed())
			if err != nil {
				return UC2FGSMResult{}, err
			}
		}
		rep, err := resilience.Evasion(victim, test, fgsm.Adversarial, fgsm.CraftCost)
		if err != nil {
			return UC2FGSMResult{}, err
		}
		res.Scores = append(res.Scores, FGSMScore{
			Model:        algo,
			CleanAcc:     rep.BaselineAccuracy,
			AdvAcc:       rep.AttackedAccuracy,
			Impact:       rep.Impact,
			ComplexityUS: craftUS,
		})
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nUC2 FGSM (paper: NN 96→71, LGBM 94→72, XGB 94→54; impact 29/28/45%%; complexity ~37.86us const)\n")
	fmt.Fprintf(w, "%-6s %9s %8s %8s %12s\n", "model", "clean", "adv", "impact", "complexity")
	for _, s := range res.Scores {
		fmt.Fprintf(w, "%-6s %8.1f%% %7.1f%% %7.1f%% %9.2fus\n",
			s.Model, s.CleanAcc*100, s.AdvAcc*100, s.Impact*100, s.ComplexityUS)
	}
	return res, nil
}

// FeatureRank is one bar of the Fig. 7(a,b) SHAP summary.
type FeatureRank struct {
	Feature    string  `json:"feature"`
	Importance float64 `json:"importance"`
	Rank       int     `json:"rank"`
}

// Fig7SHAPResult compares the NN's SHAP feature ranking on benign and
// adversarial inputs. The paper's observation: the udp-protocol feature
// loses importance under attack while tcp roughly doubles.
type Fig7SHAPResult struct {
	Benign   []FeatureRank `json:"benign"`
	Attacked []FeatureRank `json:"attacked"`
}

// Fig7SHAP reproduces Fig. 7(a,b).
func Fig7SHAP(cfg Config) (Fig7SHAPResult, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return Fig7SHAPResult{}, err
	}
	nn, err := fitByName("nn", train, cfg.seed())
	if err != nil {
		return Fig7SHAPResult{}, err
	}
	grad := nn.(ml.GradientClassifier)
	fgsm, err := attack.FGSM(grad, test, fgsmEps)
	if err != nil {
		return Fig7SHAPResult{}, err
	}

	samples, background, maxInstances := cfg.shapBudget()
	explainer := &xai.KernelSHAP{
		Model:      nn,
		Background: train.X[:background],
		Samples:    samples,
		Seed:       cfg.seed(),
	}
	// Explanations of web-class instances (class 0), the class the paper
	// inspects.
	explainSet := func(tb *dataset.Table) ([][]float64, error) {
		var expl [][]float64
		for i, y := range tb.Y {
			if y != 0 {
				continue
			}
			e, err := explainer.Explain(tb.X[i], 0)
			if err != nil {
				return nil, err
			}
			expl = append(expl, e)
			if len(expl) >= maxInstances {
				break
			}
		}
		return expl, nil
	}
	benignExpl, err := explainSet(test)
	if err != nil {
		return Fig7SHAPResult{}, fmt.Errorf("benign explanations: %w", err)
	}
	advExpl, err := explainSet(fgsm.Adversarial)
	if err != nil {
		return Fig7SHAPResult{}, fmt.Errorf("adversarial explanations: %w", err)
	}

	names := datagen.NetFeatureNames()
	res := Fig7SHAPResult{
		Benign:   rankFeatures(benignExpl, names),
		Attacked: rankFeatures(advExpl, names),
	}
	w := cfg.out()
	fmt.Fprintf(w, "\nFig 7(a,b): NN SHAP importance for web class, benign vs FGSM inputs (top 8)\n")
	fmt.Fprintf(w, "%-4s %-22s %10s   %-22s %10s\n", "rank", "benign", "| phi |", "attacked", "| phi |")
	for i := 0; i < 8 && i < len(res.Benign) && i < len(res.Attacked); i++ {
		fmt.Fprintf(w, "%-4d %-22s %10.4f   %-22s %10.4f\n",
			i+1, res.Benign[i].Feature, res.Benign[i].Importance,
			res.Attacked[i].Feature, res.Attacked[i].Importance)
	}
	return res, nil
}

func rankFeatures(explanations [][]float64, names []string) []FeatureRank {
	order, importance := xai.FeatureImportance(explanations)
	out := make([]FeatureRank, 0, len(order))
	for rank, idx := range order {
		out = append(out, FeatureRank{Feature: names[idx], Importance: importance[idx], Rank: rank + 1})
	}
	return out
}

// Importance returns the attribution and rank of a named feature (0, 0
// when absent).
func Importance(ranks []FeatureRank, feature string) (float64, int) {
	for _, r := range ranks {
		if r.Feature == feature {
			return r.Importance, r.Rank
		}
	}
	return 0, 0
}

// Fig7Point is one point of the Fig. 7(c,d) poisoning sweep.
type Fig7Point struct {
	Attack         string  `json:"attack"`
	Rate           float64 `json:"rate"`
	Impact         float64 `json:"impact"`
	ComplexityFrac float64 `json:"complexityFrac"`
	CraftUS        float64 `json:"craftUs"`
	Accuracy       float64 `json:"accuracy"`
}

// Fig7Result holds the poisoning sweep for the NN model under the
// poisoning attacks of use case 2: the rate sweep for the two label
// attacks, plus the fixed-size GAN-style attack (the paper injects 5000
// CTGAN samples rather than sweeping a rate).
type Fig7Result struct {
	BaselineAccuracy float64     `json:"baselineAccuracy"`
	Points           []Fig7Point `json:"points"`
	GAN              Fig7Point   `json:"gan"`
}

// Fig7 reproduces Fig. 7(c,d): impact and complexity vs poisoning rate for
// random label flipping, random label swapping, and GAN-style synthetic
// poisoning, all against the NN.
func Fig7(cfg Config) (Fig7Result, error) {
	train, test, _, err := uc2Data(cfg)
	if err != nil {
		return Fig7Result{}, err
	}
	baseModel, err := fitByName("nn", train, cfg.seed())
	if err != nil {
		return Fig7Result{}, err
	}
	baseMetrics, err := ml.Evaluate(baseModel, test)
	if err != nil {
		return Fig7Result{}, err
	}

	attacks := []struct {
		name  string
		apply func(rate float64) (*dataset.Table, time.Duration, error)
	}{
		{"label-flip", func(rate float64) (*dataset.Table, time.Duration, error) {
			start := clock.Real().Now()
			t, err := attack.LabelFlip(train, rate, cfg.seed())
			return t, clock.Real().Since(start), err
		}},
		{"label-swap", func(rate float64) (*dataset.Table, time.Duration, error) {
			start := clock.Real().Now()
			t, err := attack.RandomSwap(train, rate, cfg.seed())
			return t, clock.Real().Since(start), err
		}},
	}

	res := Fig7Result{BaselineAccuracy: baseMetrics.Accuracy}
	for _, atk := range attacks {
		for _, rate := range cfg.uc2PoisonRates() {
			poisoned, craft, err := atk.apply(rate)
			if err != nil {
				return Fig7Result{}, fmt.Errorf("%s at %.0f%%: %w", atk.name, rate*100, err)
			}
			model, err := fitByName("nn", poisoned, cfg.seed())
			if err != nil {
				return Fig7Result{}, err
			}
			m, err := ml.Evaluate(model, test)
			if err != nil {
				return Fig7Result{}, err
			}
			rep, err := resilience.Poisoning(baseMetrics, m, rate)
			if err != nil {
				return Fig7Result{}, err
			}
			craftUS := float64(craft.Nanoseconds()) / 1e3
			res.Points = append(res.Points, Fig7Point{
				Attack:         atk.name,
				Rate:           rate,
				Impact:         rep.Impact,
				ComplexityFrac: rate,
				CraftUS:        craftUS,
				Accuracy:       m.Accuracy,
			})
		}
	}

	// GAN-style synthetic poisoning at the paper's fixed scale: 5000
	// synthetic samples against a ~280-trace training set.
	ganCount := 5000
	if cfg.Quick {
		ganCount = 1200
	}
	ganStart := clock.Real().Now()
	ganPoisoned, err := attack.PoisonSynthetic(train, ganCount, 1.0, cfg.seed())
	if err != nil {
		return Fig7Result{}, fmt.Errorf("gan poisoning: %w", err)
	}
	ganCraft := clock.Real().Since(ganStart)
	ganModel, err := fitByName("nn", ganPoisoned, cfg.seed())
	if err != nil {
		return Fig7Result{}, err
	}
	ganMetrics, err := ml.Evaluate(ganModel, test)
	if err != nil {
		return Fig7Result{}, err
	}
	ganFrac := float64(ganCount) / float64(ganPoisoned.Len())
	ganRep, err := resilience.Poisoning(baseMetrics, ganMetrics, ganFrac)
	if err != nil {
		return Fig7Result{}, err
	}
	res.GAN = Fig7Point{
		Attack:         "gan-synthetic",
		Rate:           ganFrac,
		Impact:         ganRep.Impact,
		ComplexityFrac: ganFrac,
		CraftUS:        float64(ganCraft.Nanoseconds()) / 1e3,
		Accuracy:       ganMetrics.Accuracy,
	}

	w := cfg.out()
	fmt.Fprintf(w, "\nFig 7(c,d): poisoning impact and complexity vs rate (NN, baseline %.1f%%)\n", baseMetrics.Accuracy*100)
	fmt.Fprintf(w, "%-14s %6s %8s %8s %12s %10s\n", "attack", "rate", "acc", "impact", "complexity", "craft")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-14s %5.0f%% %7.1f%% %7.1f%% %11.2f%% %8.1fus\n",
			p.Attack, p.Rate*100, p.Accuracy*100, p.Impact*100, p.ComplexityFrac*100, p.CraftUS)
	}
	g := res.GAN
	fmt.Fprintf(w, "%-14s %5.0f%% %7.1f%% %7.1f%% %11.2f%% %8.1fus  (fixed %d synthetic samples)\n",
		g.Attack, g.Rate*100, g.Accuracy*100, g.Impact*100, g.ComplexityFrac*100, g.CraftUS, ganCount)
	return res, nil
}
