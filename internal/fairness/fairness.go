// Package fairness implements the group-fairness metrics SPATIAL's
// fairness sensor publishes: demographic parity, disparate impact, equal
// opportunity and equalized odds over a binary protected attribute —
// the loan-application scenario the paper uses to motivate per-application
// fairness analysis (§VIII).
package fairness

import (
	"fmt"
	"math"
)

// GroupStat summarizes one protected group's outcomes.
type GroupStat struct {
	Group        string  `json:"group"`
	N            int     `json:"n"`
	PositiveRate float64 `json:"positiveRate"` // P(pred=+ | group)
	TPR          float64 `json:"tpr"`          // P(pred=+ | truth=+, group)
	FPR          float64 `json:"fpr"`          // P(pred=+ | truth=-, group)
}

// Report holds the fairness metrics between two groups.
type Report struct {
	// DemographicParityDiff is |P(+|A) − P(+|B)| of predictions.
	DemographicParityDiff float64 `json:"demographicParityDiff"`
	// DisparateImpactRatio is min(P+)/max(P+) across groups (the
	// "80% rule" reads this ratio; 1 = parity).
	DisparateImpactRatio float64 `json:"disparateImpactRatio"`
	// EqualOpportunityDiff is |TPR_A − TPR_B|.
	EqualOpportunityDiff float64 `json:"equalOpportunityDiff"`
	// EqualizedOddsDiff is max(|TPR_A−TPR_B|, |FPR_A−FPR_B|).
	EqualizedOddsDiff float64     `json:"equalizedOddsDiff"`
	Groups            []GroupStat `json:"groups"`
}

// Evaluate computes the fairness report of binary predictions against a
// binary protected attribute. pred, truth and group must be aligned;
// positive is the favourable class index (e.g. "approved"); group values
// must be 0 or 1.
func Evaluate(pred, truth, group []int, positive int, groupNames [2]string) (Report, error) {
	n := len(pred)
	if n == 0 {
		return Report{}, fmt.Errorf("fairness: no samples")
	}
	if len(truth) != n || len(group) != n {
		return Report{}, fmt.Errorf("fairness: misaligned inputs (%d/%d/%d)", n, len(truth), len(group))
	}
	type counts struct {
		n, pos, truthPos, tp, truthNeg, fp int
	}
	var g [2]counts
	for i := 0; i < n; i++ {
		gi := group[i]
		if gi != 0 && gi != 1 {
			return Report{}, fmt.Errorf("fairness: group value %d at row %d (must be 0 or 1)", gi, i)
		}
		c := &g[gi]
		c.n++
		predPos := pred[i] == positive
		truthPos := truth[i] == positive
		if predPos {
			c.pos++
		}
		if truthPos {
			c.truthPos++
			if predPos {
				c.tp++
			}
		} else {
			c.truthNeg++
			if predPos {
				c.fp++
			}
		}
	}
	if g[0].n == 0 || g[1].n == 0 {
		return Report{}, fmt.Errorf("fairness: both groups need samples (have %d/%d)", g[0].n, g[1].n)
	}

	stat := func(idx int, name string) GroupStat {
		c := g[idx]
		return GroupStat{
			Group:        name,
			N:            c.n,
			PositiveRate: ratio(c.pos, c.n),
			TPR:          ratio(c.tp, c.truthPos),
			FPR:          ratio(c.fp, c.truthNeg),
		}
	}
	a, b := stat(0, groupNames[0]), stat(1, groupNames[1])

	rep := Report{
		DemographicParityDiff: math.Abs(a.PositiveRate - b.PositiveRate),
		EqualOpportunityDiff:  math.Abs(a.TPR - b.TPR),
		Groups:                []GroupStat{a, b},
	}
	rep.EqualizedOddsDiff = math.Max(rep.EqualOpportunityDiff, math.Abs(a.FPR-b.FPR))
	lo, hi := a.PositiveRate, b.PositiveRate
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		rep.DisparateImpactRatio = 1 // nobody approved anywhere: parity
	} else {
		rep.DisparateImpactRatio = lo / hi
	}
	return rep, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Score normalizes a report into the [0, 1] sensor value SPATIAL's
// fairness sensor publishes (1 = no measured disparity). It takes the
// worst of demographic parity and equalized odds.
func Score(r Report) float64 {
	worst := math.Max(r.DemographicParityDiff, r.EqualizedOddsDiff)
	if worst >= 1 {
		return 0
	}
	return 1 - worst
}
