package fairness

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ml"
)

func TestEvaluateKnownValues(t *testing.T) {
	// Group 0: 4 samples, 2 predicted positive; truth: 2 pos (both
	// caught), 2 neg (0 false alarms). Group 1: 4 samples, 1 predicted
	// positive; truth 2 pos (1 caught), 2 neg (0 false alarms).
	pred := []int{1, 1, 0, 0, 1, 0, 0, 0}
	truth := []int{1, 1, 0, 0, 1, 1, 0, 0}
	group := []int{0, 0, 0, 0, 1, 1, 1, 1}
	rep, err := Evaluate(pred, truth, group, 1, [2]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DemographicParityDiff-0.25) > 1e-12 {
		t.Fatalf("DP diff %v, want 0.25", rep.DemographicParityDiff)
	}
	if math.Abs(rep.DisparateImpactRatio-0.5) > 1e-12 {
		t.Fatalf("DI ratio %v, want 0.5", rep.DisparateImpactRatio)
	}
	if math.Abs(rep.EqualOpportunityDiff-0.5) > 1e-12 {
		t.Fatalf("EO diff %v, want 0.5", rep.EqualOpportunityDiff)
	}
	if math.Abs(rep.EqualizedOddsDiff-0.5) > 1e-12 {
		t.Fatalf("EOdds %v, want 0.5", rep.EqualizedOddsDiff)
	}
	if rep.Groups[0].N != 4 || rep.Groups[1].N != 4 {
		t.Fatalf("group sizes %+v", rep.Groups)
	}
}

func TestEvaluatePerfectParity(t *testing.T) {
	pred := []int{1, 0, 1, 0}
	truth := []int{1, 0, 1, 0}
	group := []int{0, 0, 1, 1}
	rep, err := Evaluate(pred, truth, group, 1, [2]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DemographicParityDiff != 0 || rep.EqualizedOddsDiff != 0 {
		t.Fatalf("parity broken: %+v", rep)
	}
	if rep.DisparateImpactRatio != 1 {
		t.Fatalf("DI ratio %v", rep.DisparateImpactRatio)
	}
	if Score(rep) != 1 {
		t.Fatalf("score %v", Score(rep))
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil, nil, nil, 1, [2]string{"A", "B"}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Evaluate([]int{1}, []int{1, 0}, []int{0}, 1, [2]string{"A", "B"}); err == nil {
		t.Fatal("expected misalignment error")
	}
	if _, err := Evaluate([]int{1}, []int{1}, []int{7}, 1, [2]string{"A", "B"}); err == nil {
		t.Fatal("expected group-value error")
	}
	if _, err := Evaluate([]int{1, 0}, []int{1, 0}, []int{0, 0}, 1, [2]string{"A", "B"}); err == nil {
		t.Fatal("expected one-sided-group error")
	}
}

func TestScoreBounds(t *testing.T) {
	if Score(Report{DemographicParityDiff: 2}) != 0 {
		t.Fatal("score should clamp at 0")
	}
	if math.Abs(Score(Report{DemographicParityDiff: 0.2, EqualizedOddsDiff: 0.4})-0.6) > 1e-12 {
		t.Fatal("score should use the worst metric")
	}
}

// TestBiasedLoanHistoryProducesUnfairModel is the paper's loan scenario:
// train on biased history, measure group disparity with the fairness
// sensor metrics.
func TestBiasedLoanHistoryProducesUnfairModel(t *testing.T) {
	data, _, err := datagen.Loan(datagen.DefaultLoanConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	model := ml.NewTree(ml.DefaultTreeConfig())
	if err := model.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := ml.PredictBatch(model, test)
	group := make([]int, test.Len())
	for i, row := range test.X {
		group[i] = int(row[datagen.LoanGroupFeature])
	}
	rep, err := Evaluate(pred, test.Y, group, 1, [2]string{"groupA", "groupB"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DemographicParityDiff < 0.1 {
		t.Fatalf("biased history should yield a visible parity gap, got %.3f", rep.DemographicParityDiff)
	}
	if rep.Groups[1].PositiveRate >= rep.Groups[0].PositiveRate {
		t.Fatal("minority group should have the lower approval rate")
	}
	if Score(rep) >= 1 {
		t.Fatal("fairness score should flag the disparity")
	}
}

// TestFairHistoryProducesFairerModel: with Bias=0 the same pipeline shows
// much smaller disparity, confirming the metric tracks the injected bias
// rather than generator artifacts.
func TestFairHistoryProducesFairerModel(t *testing.T) {
	biasedGap := loanGap(t, 1.5)
	fairGap := loanGap(t, 0.0001)
	if fairGap >= biasedGap {
		t.Fatalf("fair history gap %.3f should be below biased gap %.3f", fairGap, biasedGap)
	}
}

func loanGap(t *testing.T, bias float64) float64 {
	t.Helper()
	cfg := datagen.DefaultLoanConfig()
	cfg.Bias = bias
	data, _, err := datagen.Loan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	train, test, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	model := ml.NewTree(ml.DefaultTreeConfig())
	if err := model.Fit(train); err != nil {
		t.Fatal(err)
	}
	pred := ml.PredictBatch(model, test)
	group := make([]int, test.Len())
	for i, row := range test.X {
		group[i] = int(row[datagen.LoanGroupFeature])
	}
	rep, err := Evaluate(pred, test.Y, group, 1, [2]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	return rep.DemographicParityDiff
}

func TestLoanGeneratorValidation(t *testing.T) {
	if _, _, err := datagen.Loan(datagen.LoanConfig{Samples: 0}); err == nil {
		t.Fatal("expected samples error")
	}
	if _, _, err := datagen.Loan(datagen.LoanConfig{Samples: 10, MinorityFrac: 2}); err == nil {
		t.Fatal("expected minority-frac error")
	}
	data, groups, err := datagen.Loan(datagen.LoanConfig{Samples: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 200 || len(groups) != 200 {
		t.Fatalf("sizes %d/%d", data.Len(), len(groups))
	}
	if err := data.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		if int(data.X[i][datagen.LoanGroupFeature]) != g {
			t.Fatal("group column misaligned with group slice")
		}
	}
}
