// Package fedlearn implements the distributed machine-learning
// architecture of the paper's Fig. 2(c): federated averaging over clients
// that train locally on private data, with the aggregation variants needed
// to study poisoned clients (plain FedAvg, coordinate-wise trimmed mean,
// and coordinate-wise median). SPATIAL's sensors monitor the global model
// between rounds exactly as they monitor a centrally trained one.
package fedlearn

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// Aggregator selects how client updates are combined.
type Aggregator int

// Aggregation strategies.
const (
	// FedAvg is the sample-count-weighted mean of client parameters.
	FedAvg Aggregator = iota + 1
	// TrimmedMean drops the highest and lowest fraction of each
	// coordinate before averaging (robust to a minority of poisoned
	// clients).
	TrimmedMean
	// Median takes the coordinate-wise median.
	Median
)

// Client is one federated participant.
type Client struct {
	// Name identifies the client in round reports.
	Name string
	// Data is the client's private shard.
	Data *dataset.Table
}

// Config parameterizes a federated run.
type Config struct {
	// Rounds is the number of federation rounds.
	Rounds int
	// ClientFraction is the fraction of clients sampled per round
	// (default 1 = all).
	ClientFraction float64
	// Aggregator selects the combination rule (default FedAvg).
	Aggregator Aggregator
	// TrimFraction is the per-side trim of TrimmedMean (default 0.2).
	TrimFraction float64
	// Seed drives client sampling.
	Seed int64
}

// RoundStat reports one federation round.
type RoundStat struct {
	Round        int      `json:"round"`
	Participants []string `json:"participants"`
	// EvalAccuracy is the global model's accuracy on the evaluation set
	// after aggregation.
	EvalAccuracy float64 `json:"evalAccuracy"`
}

// Run executes federated training. global must be an initialized
// ml.ParamClassifier (Init or a prior Fit); factory must produce fresh
// local models of the same architecture configured for warm-start local
// training. eval is the held-out set scored after every round.
func Run(global ml.ParamClassifier, factory func() (ml.ParamClassifier, error), clients []Client, eval *dataset.Table, cfg Config) ([]RoundStat, error) {
	if global == nil || factory == nil {
		return nil, fmt.Errorf("fedlearn: nil global model or factory")
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fedlearn: no clients")
	}
	for i, c := range clients {
		if c.Data == nil || c.Data.Len() == 0 {
			return nil, fmt.Errorf("fedlearn: client %d (%s) has no data", i, c.Name)
		}
	}
	if eval == nil || eval.Len() == 0 {
		return nil, fmt.Errorf("fedlearn: empty evaluation set")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fedlearn: Rounds must be positive")
	}
	if cfg.ClientFraction <= 0 || cfg.ClientFraction > 1 {
		cfg.ClientFraction = 1
	}
	if cfg.Aggregator == 0 {
		cfg.Aggregator = FedAvg
	}
	if cfg.TrimFraction <= 0 || cfg.TrimFraction >= 0.5 {
		cfg.TrimFraction = 0.2
	}
	globalParams := global.Parameters()
	if len(globalParams) == 0 {
		return nil, fmt.Errorf("fedlearn: global model has no parameters; call Init first")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	perRound := int(cfg.ClientFraction * float64(len(clients)))
	if perRound < 1 {
		perRound = 1
	}

	var stats []RoundStat
	for round := 0; round < cfg.Rounds; round++ {
		picked := rng.Perm(len(clients))[:perRound]
		sort.Ints(picked)

		updates := make([][]float64, 0, perRound)
		weights := make([]float64, 0, perRound)
		names := make([]string, 0, perRound)
		for _, ci := range picked {
			c := clients[ci]
			local, err := factory()
			if err != nil {
				return nil, fmt.Errorf("fedlearn: factory: %w", err)
			}
			if err := local.Init(c.Data.NumFeatures(), c.Data.NumClasses()); err != nil {
				return nil, fmt.Errorf("fedlearn: init local for %s: %w", c.Name, err)
			}
			if err := local.SetParameters(globalParams); err != nil {
				return nil, fmt.Errorf("fedlearn: seed local for %s: %w", c.Name, err)
			}
			if err := local.Fit(c.Data); err != nil {
				return nil, fmt.Errorf("fedlearn: local fit on %s: %w", c.Name, err)
			}
			updates = append(updates, local.Parameters())
			weights = append(weights, float64(c.Data.Len()))
			names = append(names, c.Name)
		}

		agg, err := aggregate(updates, weights, cfg)
		if err != nil {
			return nil, fmt.Errorf("fedlearn: round %d: %w", round, err)
		}
		globalParams = agg
		if err := global.SetParameters(globalParams); err != nil {
			return nil, fmt.Errorf("fedlearn: update global: %w", err)
		}
		metrics, err := ml.Evaluate(global, eval)
		if err != nil {
			return nil, fmt.Errorf("fedlearn: eval round %d: %w", round, err)
		}
		stats = append(stats, RoundStat{Round: round + 1, Participants: names, EvalAccuracy: metrics.Accuracy})
	}
	return stats, nil
}

func aggregate(updates [][]float64, weights []float64, cfg Config) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("no updates to aggregate")
	}
	dim := len(updates[0])
	for i, u := range updates {
		if len(u) != dim {
			return nil, fmt.Errorf("update %d has %d params, want %d", i, len(u), dim)
		}
	}
	out := make([]float64, dim)
	switch cfg.Aggregator {
	case FedAvg:
		var wsum float64
		for _, w := range weights {
			wsum += w
		}
		for i, u := range updates {
			w := weights[i] / wsum
			for j, v := range u {
				out[j] += w * v
			}
		}
	case TrimmedMean:
		k := int(cfg.TrimFraction * float64(len(updates)))
		col := make([]float64, len(updates))
		for j := 0; j < dim; j++ {
			for i, u := range updates {
				col[i] = u[j]
			}
			sort.Float64s(col)
			kept := col[k : len(col)-k]
			var s float64
			for _, v := range kept {
				s += v
			}
			out[j] = s / float64(len(kept))
		}
	case Median:
		col := make([]float64, len(updates))
		for j := 0; j < dim; j++ {
			for i, u := range updates {
				col[i] = u[j]
			}
			sort.Float64s(col)
			mid := len(col) / 2
			if len(col)%2 == 1 {
				out[j] = col[mid]
			} else {
				out[j] = (col[mid-1] + col[mid]) / 2
			}
		}
	default:
		return nil, fmt.Errorf("unknown aggregator %d", cfg.Aggregator)
	}
	return out, nil
}

// PartitionIID splits a dataset into n roughly equal IID client shards.
func PartitionIID(t *dataset.Table, n int, seed int64) ([]Client, error) {
	if n < 1 || n > t.Len() {
		return nil, fmt.Errorf("fedlearn: cannot split %d samples into %d shards", t.Len(), n)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(t.Len())
	clients := make([]Client, n)
	for i := 0; i < n; i++ {
		lo, hi := i*t.Len()/n, (i+1)*t.Len()/n
		clients[i] = Client{
			Name: fmt.Sprintf("client-%02d", i),
			Data: t.Subset(perm[lo:hi]),
		}
	}
	return clients, nil
}
