package fedlearn

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/ml"
)

func blobs(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("blobs", []string{"f0", "f1", "f2"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		_ = tb.Append([]float64{
			float64(y)*3 + rng.NormFloat64(),
			rng.NormFloat64(),
			-float64(y)*2 + rng.NormFloat64(),
		}, y)
	}
	return tb
}

// localLRFactory makes warm-start logistic-regression clients with a few
// local epochs.
func localLRFactory() (ml.ParamClassifier, error) {
	return ml.NewLogReg(ml.LogRegConfig{
		LearningRate: 0.1, Epochs: 3, BatchSize: 16, WarmStart: true, Seed: 1,
	}), nil
}

func newGlobalLR(t *testing.T, dim, classes int) ml.ParamClassifier {
	t.Helper()
	g := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := g.Init(dim, classes); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFedAvgConvergesOnIIDShards(t *testing.T) {
	data := blobs(1, 600)
	rng := rand.New(rand.NewSource(1))
	train, eval, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := PartitionIID(train, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	global := newGlobalLR(t, train.NumFeatures(), train.NumClasses())
	stats, err := Run(global, localLRFactory, clients, eval, Config{Rounds: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 15 {
		t.Fatalf("rounds %d", len(stats))
	}
	final := stats[len(stats)-1].EvalAccuracy
	if final < 0.95 {
		t.Fatalf("federated accuracy %.3f < 0.95", final)
	}
	if stats[0].EvalAccuracy > final {
		t.Fatalf("no improvement across rounds: %.3f -> %.3f", stats[0].EvalAccuracy, final)
	}
}

func TestFedAvgWithMLPClients(t *testing.T) {
	data := blobs(2, 400)
	rng := rand.New(rand.NewSource(2))
	train, eval, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := PartitionIID(train, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mlpCfg := ml.MLPConfig{Hidden: []int{8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 3, BatchSize: 16, WarmStart: true, Seed: 3}
	global := ml.NewMLP(mlpCfg)
	if err := global.Init(train.NumFeatures(), train.NumClasses()); err != nil {
		t.Fatal(err)
	}
	factory := func() (ml.ParamClassifier, error) { return ml.NewMLP(mlpCfg), nil }
	stats, err := Run(global, factory, clients, eval, Config{Rounds: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].EvalAccuracy < 0.9 {
		t.Fatalf("federated MLP accuracy %.3f", stats[len(stats)-1].EvalAccuracy)
	}
}

func TestClientFractionSampling(t *testing.T) {
	data := blobs(3, 300)
	clients, err := PartitionIID(data, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	global := newGlobalLR(t, data.NumFeatures(), data.NumClasses())
	stats, err := Run(global, localLRFactory, clients, data, Config{Rounds: 3, ClientFraction: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if len(s.Participants) != 3 {
			t.Fatalf("round %d had %d participants, want 3", s.Round, len(s.Participants))
		}
	}
}

// TestRobustAggregationResistsPoisonedClient: one client holds fully
// label-flipped data. Plain FedAvg absorbs the poisoned update; trimmed
// mean and median cut it off.
func TestRobustAggregationResistsPoisonedClient(t *testing.T) {
	data := blobs(4, 600)
	rng := rand.New(rand.NewSource(4))
	train, eval, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := PartitionIID(train, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Client 0 is malicious: flips every label AND inflates its local
	// update count by claiming the most data (model-poisoning flavour).
	poisoned, err := attack.LabelFlip(clients[0].Data, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	clients[0].Data = poisoned

	accWith := func(agg Aggregator) float64 {
		global := newGlobalLR(t, train.NumFeatures(), train.NumClasses())
		stats, err := Run(global, localLRFactory, clients, eval, Config{Rounds: 12, Aggregator: agg, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return stats[len(stats)-1].EvalAccuracy
	}
	plain := accWith(FedAvg)
	trimmed := accWith(TrimmedMean)
	median := accWith(Median)
	if trimmed < plain-0.02 {
		t.Fatalf("trimmed mean (%.3f) should not trail FedAvg (%.3f) under poisoning", trimmed, plain)
	}
	if median < 0.85 {
		t.Fatalf("median aggregation accuracy %.3f", median)
	}
}

func TestRunValidation(t *testing.T) {
	data := blobs(5, 100)
	clients, err := PartitionIID(data, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	global := newGlobalLR(t, data.NumFeatures(), data.NumClasses())
	if _, err := Run(nil, localLRFactory, clients, data, Config{Rounds: 1}); err == nil {
		t.Fatal("expected nil-global error")
	}
	if _, err := Run(global, localLRFactory, nil, data, Config{Rounds: 1}); err == nil {
		t.Fatal("expected no-clients error")
	}
	if _, err := Run(global, localLRFactory, clients, data, Config{Rounds: 0}); err == nil {
		t.Fatal("expected rounds error")
	}
	empty := dataset.New("e", data.FeatureNames, data.ClassNames)
	if _, err := Run(global, localLRFactory, clients, empty, Config{Rounds: 1}); err == nil {
		t.Fatal("expected empty-eval error")
	}
	uninit := ml.NewLogReg(ml.DefaultLogRegConfig())
	if _, err := Run(uninit, localLRFactory, clients, data, Config{Rounds: 1}); err == nil {
		t.Fatal("expected uninitialized-global error")
	}
}

func TestPartitionIID(t *testing.T) {
	data := blobs(6, 103)
	clients, err := PartitionIID(data, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clients {
		if c.Data.Len() == 0 {
			t.Fatal("empty shard")
		}
		total += c.Data.Len()
	}
	if total != 103 {
		t.Fatalf("shards cover %d of 103 samples", total)
	}
	if _, err := PartitionIID(data, 0, 1); err == nil {
		t.Fatal("expected shard-count error")
	}
}

func TestAggregateTrimmedMeanAndMedian(t *testing.T) {
	updates := [][]float64{{1, 10}, {2, 20}, {3, 30}, {100, -100}}
	weights := []float64{1, 1, 1, 1}
	trimmed, err := aggregate(updates, weights, Config{Aggregator: TrimmedMean, TrimFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Trim 1 from each side: mean of {2,3} and {10,20}.
	if trimmed[0] != 2.5 || trimmed[1] != 15 {
		t.Fatalf("trimmed %v", trimmed)
	}
	median, err := aggregate(updates, weights, Config{Aggregator: Median})
	if err != nil {
		t.Fatal(err)
	}
	if median[0] != 2.5 || median[1] != 15 {
		t.Fatalf("median %v", median)
	}
	if _, err := aggregate([][]float64{{1}, {1, 2}}, []float64{1, 1}, Config{Aggregator: FedAvg}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
