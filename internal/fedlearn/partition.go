package fedlearn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// PartitionDirichlet splits a dataset into n label-skewed client shards:
// each class's samples are distributed across clients according to a
// Dirichlet(alpha) draw. Small alpha (e.g. 0.1) produces the severe
// non-IID skew that stresses federated averaging; large alpha approaches
// the IID split.
func PartitionDirichlet(t *dataset.Table, n int, alpha float64, seed int64) ([]Client, error) {
	if n < 1 || n > t.Len() {
		return nil, fmt.Errorf("fedlearn: cannot split %d samples into %d shards", t.Len(), n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("fedlearn: alpha must be positive, got %v", alpha)
	}
	rng := rand.New(rand.NewSource(seed))

	byClass := make([][]int, t.NumClasses())
	for i, y := range t.Y {
		byClass[y] = append(byClass[y], i)
	}

	shardIdx := make([][]int, n)
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		props := dirichlet(rng, alpha, n)
		// Convert proportions to cumulative cut points.
		start := 0
		acc := 0.0
		for c := 0; c < n; c++ {
			acc += props[c]
			end := int(math.Round(acc * float64(len(members))))
			if c == n-1 {
				end = len(members)
			}
			if end > start {
				shardIdx[c] = append(shardIdx[c], members[start:end]...)
				start = end
			}
		}
	}

	clients := make([]Client, 0, n)
	for c := 0; c < n; c++ {
		if len(shardIdx[c]) == 0 {
			// Guarantee non-empty shards: borrow one sample from the
			// largest shard.
			largest := 0
			for k := range shardIdx {
				if len(shardIdx[k]) > len(shardIdx[largest]) {
					largest = k
				}
			}
			if len(shardIdx[largest]) < 2 {
				return nil, fmt.Errorf("fedlearn: not enough samples for %d non-empty shards", n)
			}
			last := len(shardIdx[largest]) - 1
			shardIdx[c] = append(shardIdx[c], shardIdx[largest][last])
			shardIdx[largest] = shardIdx[largest][:last]
		}
		clients = append(clients, Client{
			Name: fmt.Sprintf("client-%02d", c),
			Data: t.Subset(shardIdx[c]),
		})
	}
	return clients, nil
}

// dirichlet samples a symmetric Dirichlet(alpha) vector of length n via
// normalized Gamma(alpha, 1) draws.
func dirichlet(rng *rand.Rand, alpha float64, n int) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		uniform := 1 / float64(n)
		for i := range out {
			out[i] = uniform
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang method
// (boosted for shape < 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
