package fedlearn

import (
	"math"
	"testing"
)

func TestPartitionDirichletCoversAllSamples(t *testing.T) {
	data := blobs(20, 400)
	clients, err := PartitionDirichlet(data, 8, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clients {
		if c.Data.Len() == 0 {
			t.Fatal("empty shard")
		}
		total += c.Data.Len()
	}
	if total != 400 {
		t.Fatalf("shards cover %d of 400", total)
	}
}

// labelSkew measures the mean absolute deviation of per-client class-0
// fraction from the global fraction.
func labelSkew(clients []Client) float64 {
	var skew float64
	for _, c := range clients {
		counts := c.Data.ClassCounts()
		frac := float64(counts[0]) / float64(c.Data.Len())
		skew += math.Abs(frac - 0.5)
	}
	return skew / float64(len(clients))
}

func TestDirichletSkewGrowsAsAlphaShrinks(t *testing.T) {
	data := blobs(21, 600)
	skewed, err := PartitionDirichlet(data, 6, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mild, err := PartitionDirichlet(data, 6, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if labelSkew(skewed) <= labelSkew(mild) {
		t.Fatalf("alpha=0.1 skew %.3f should exceed alpha=100 skew %.3f",
			labelSkew(skewed), labelSkew(mild))
	}
}

func TestPartitionDirichletValidation(t *testing.T) {
	data := blobs(22, 50)
	if _, err := PartitionDirichlet(data, 0, 1, 1); err == nil {
		t.Fatal("expected shard-count error")
	}
	if _, err := PartitionDirichlet(data, 5, 0, 1); err == nil {
		t.Fatal("expected alpha error")
	}
}

// TestFedAvgStillLearnsUnderNonIID: non-IID shards slow FedAvg but must
// not break it on this easy task.
func TestFedAvgStillLearnsUnderNonIID(t *testing.T) {
	data := blobs(23, 600)
	clients, err := PartitionDirichlet(data, 6, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	global := newGlobalLR(t, data.NumFeatures(), data.NumClasses())
	stats, err := Run(global, localLRFactory, clients, data, Config{Rounds: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if final := stats[len(stats)-1].EvalAccuracy; final < 0.9 {
		t.Fatalf("non-IID FedAvg accuracy %.3f", final)
	}
}
