package gateway

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/scenario"
)

// TestCircuitBreakerChaosRecoveryFakeClock walks the breaker through a
// full open → half-open → closed cycle with the chaos proxy injecting
// connection resets between the gateway and the upstream, entirely on a
// fake clock: no sleeps, and the measured recovery time is an exact
// virtual-time number instead of a scheduler-dependent estimate.
func TestCircuitBreakerChaosRecoveryFakeClock(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	fake := clock.NewFake(time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC))
	chaos, err := scenario.NewChaosProxy(backend.URL, fake, 1)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(chaos)
	defer proxy.Close()

	const (
		threshold = 3
		cooldown  = 5 * time.Second
	)
	g := New(Config{BreakerThreshold: threshold, BreakerCooldown: cooldown, Clock: fake})
	if err := g.AddRoute("/svc", RoundRobin, proxy.URL); err != nil {
		t.Fatal(err)
	}

	// Healthy pass-through before any fault.
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusOK {
		t.Fatalf("clean request: expected 200, got %d", code)
	}

	// Error-burst faults surface as upstream 5xx but must NOT trip the
	// breaker: the upstream answered, so the transport is fine and
	// opening the circuit would amplify an application error into an
	// outage.
	chaos.SetFault(&scenario.Fault{Kind: scenario.FaultErrorBurst, Code: http.StatusServiceUnavailable})
	for i := 0; i < 2*threshold; i++ {
		if code, _ := get(t, g, "/svc/x", nil); code != http.StatusServiceUnavailable {
			t.Fatalf("error burst request %d: expected 503, got %d", i, code)
		}
	}

	// Connection resets are transport failures: threshold of them opens
	// the circuit.
	chaos.SetFault(&scenario.Fault{Kind: scenario.FaultReset})
	for i := 0; i < threshold; i++ {
		if code, _ := get(t, g, "/svc/x", nil); code != http.StatusBadGateway {
			t.Fatalf("reset request %d: expected 502, got %d", i, code)
		}
	}
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("breaker should be open: got %d", code)
	}
	if !breakerOpen(g) {
		t.Fatal("RouteMetrics should report the breaker open")
	}

	// Fault clears; the clock marks the moment recovery starts.
	chaos.SetFault(nil)
	faultCleared := fake.Now()

	// Mid-cooldown the circuit still rejects without probing.
	fake.Advance(cooldown - time.Second)
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("mid-cooldown: expected 503, got %d", code)
	}

	// Past the cooldown: half-open lets one probe through; it succeeds
	// and closes the circuit.
	fake.Advance(2 * time.Second)
	code, _ := get(t, g, "/svc/x", nil)
	if code != http.StatusOK {
		t.Fatalf("half-open probe: expected 200, got %d", code)
	}
	recovery := fake.Now().Sub(faultCleared)
	if want := cooldown + time.Second; recovery != want {
		t.Fatalf("virtual recovery time: got %v, want %v", recovery, want)
	}
	if breakerOpen(g) {
		t.Fatal("RouteMetrics should report the breaker closed after the probe")
	}

	// Closed for good: a sub-threshold blip does not reopen it.
	for i := 0; i < 3; i++ {
		if code, _ := get(t, g, "/svc/x", nil); code != http.StatusOK {
			t.Fatalf("post-recovery request %d: expected 200, got %d", i, code)
		}
	}
	stats := chaos.Stats()
	// >= threshold, not ==: net/http retries an idempotent request once
	// when a reused connection dies, so one gateway-visible failure can
	// cost two chaos-visible resets.
	if stats.Reset < threshold || stats.Errored != 2*threshold {
		t.Fatalf("chaos stats: got %+v", stats)
	}
}

// breakerOpen reports whether any upstream of any route has an open
// breaker per RouteMetrics.
func breakerOpen(g *Gateway) bool {
	for _, m := range g.RouteMetrics() {
		for _, u := range m.Upstreams {
			if u.BreakerOpen {
				return true
			}
		}
	}
	return false
}
