package gateway

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestCircuitBreakerHalfOpenRecovery: after the cooldown the breaker lets
// a probe request through; a success closes the circuit again.
func TestCircuitBreakerHalfOpenRecovery(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			return
		}
		if failing.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	g := New(Config{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})
	if err := g.AddRoute("/svc", RoundRobin, backend.URL); err != nil {
		t.Fatal(err)
	}

	// Trip the breaker.
	for i := 0; i < 2; i++ {
		if code, _ := get(t, g, "/svc/x", nil); code != http.StatusBadGateway {
			t.Fatalf("expected 502, got %d", code)
		}
	}
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("breaker not open: %d", code)
	}

	// Heal the backend; after the cooldown the probe succeeds and the
	// circuit closes.
	failing.Store(false)
	time.Sleep(80 * time.Millisecond)
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusOK {
		t.Fatalf("half-open probe failed: %d", code)
	}
	// Fully closed: subsequent requests flow.
	for i := 0; i < 3; i++ {
		if code, _ := get(t, g, "/svc/x", nil); code != http.StatusOK {
			t.Fatalf("post-recovery request %d failed: %d", i, code)
		}
	}
}

// TestCircuitBreakerReopensAfterFailedProbe: a failing probe during
// half-open re-opens the circuit immediately.
func TestCircuitBreakerReopensAfterFailedProbe(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			return
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer backend.Close()

	g := New(Config{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})
	if err := g.AddRoute("/svc", RoundRobin, backend.URL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		get(t, g, "/svc/x", nil)
	}
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("breaker not open: %d", code)
	}
	time.Sleep(80 * time.Millisecond)
	// Probe goes through to the (still broken) upstream -> 502 and the
	// breaker re-opens at once (threshold already primed).
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusBadGateway {
		t.Fatalf("expected probe 502, got %d", code)
	}
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("breaker should re-open after failed probe: %d", code)
	}
}
