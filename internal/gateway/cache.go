package gateway

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"io"
	"net/http"
	"time"
)

// responseCache is an LRU+TTL cache over full upstream responses. SPATIAL
// sensors poll the metric services with identical payloads ("requesting
// micro-service functionality periodically", §V); the metric computations
// are pure functions of the request body, so byte-identical requests can
// be answered from cache instead of recomputing a SHAP explanation.
type responseCache struct {
	ttl time.Duration
	max int

	// guarded by the owning Gateway's cacheMu
	entries map[string]*list.Element
	order   *list.List // front = most recent
	now     func() time.Time
}

type cacheEntry struct {
	key         string
	status      int
	contentType string
	body        []byte
	expires     time.Time
}

func newResponseCache(ttl time.Duration, maxEntries int) *responseCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &responseCache{
		ttl:     ttl,
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		now:     time.Now,
	}
}

func (c *responseCache) get(key string) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	entry := el.Value.(*cacheEntry)
	if c.now().After(entry.expires) {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return entry, true
}

func (c *responseCache) put(entry *cacheEntry) {
	if el, ok := c.entries[entry.key]; ok {
		c.order.Remove(el)
		delete(c.entries, entry.key)
	}
	entry.expires = c.now().Add(c.ttl)
	c.entries[entry.key] = c.order.PushFront(entry)
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// cacheKey hashes method, path and body.
func cacheKey(method, path string, body []byte) string {
	h := sha256.New()
	io.WriteString(h, method)
	io.WriteString(h, "|")
	io.WriteString(h, path)
	io.WriteString(h, "|")
	h.Write(body) //lint:ignore unchecked-err hash.Hash.Write is documented to never return an error
	return string(h.Sum(nil))
}

// cacheRecorder captures an upstream response for caching while streaming
// it to the client.
type cacheRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (r *cacheRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *cacheRecorder) Write(p []byte) (int, error) {
	r.buf.Write(p) //lint:ignore unchecked-err bytes.Buffer.Write always returns a nil error
	return r.ResponseWriter.Write(p)
}
