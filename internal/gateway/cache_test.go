package gateway

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func postBody(t *testing.T, gw http.Handler, path, body string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header().Get("X-Cache")
}

func countingBackend(calls *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			return
		}
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"n":` + r.URL.Path[1:] + `}`))
	}))
}

func TestResponseCacheServesIdenticalRequests(t *testing.T) {
	var calls atomic.Int64
	b := countingBackend(&calls)
	defer b.Close()
	g := New(Config{CacheTTL: time.Minute})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}

	code, body1, xc := postBody(t, g, "/svc/7", `{"q":1}`)
	if code != 200 || xc == "hit" {
		t.Fatalf("first request: %d %q", code, xc)
	}
	code, body2, xc := postBody(t, g, "/svc/7", `{"q":1}`)
	if code != 200 || xc != "hit" {
		t.Fatalf("second request should hit cache: %d %q", code, xc)
	}
	if body1 != body2 {
		t.Fatalf("cached body differs: %q vs %q", body1, body2)
	}
	if calls.Load() != 1 {
		t.Fatalf("backend called %d times, want 1", calls.Load())
	}
	hits, misses := g.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats %d/%d", hits, misses)
	}
}

func TestResponseCacheKeyIncludesBodyAndPath(t *testing.T) {
	var calls atomic.Int64
	b := countingBackend(&calls)
	defer b.Close()
	g := New(Config{CacheTTL: time.Minute})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	postBody(t, g, "/svc/1", `{"q":1}`)
	postBody(t, g, "/svc/1", `{"q":2}`) // different body
	postBody(t, g, "/svc/2", `{"q":1}`) // different path
	if calls.Load() != 3 {
		t.Fatalf("backend called %d times, want 3 (no false hits)", calls.Load())
	}
}

func TestResponseCacheTTLExpiry(t *testing.T) {
	var calls atomic.Int64
	b := countingBackend(&calls)
	defer b.Close()
	g := New(Config{CacheTTL: time.Minute})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	g.cache.now = func() time.Time { return now }

	postBody(t, g, "/svc/1", "x")
	now = now.Add(2 * time.Minute)
	_, _, xc := postBody(t, g, "/svc/1", "x")
	if xc == "hit" {
		t.Fatal("expired entry served")
	}
	if calls.Load() != 2 {
		t.Fatalf("backend called %d times, want 2", calls.Load())
	}
}

func TestResponseCacheLRUEviction(t *testing.T) {
	c := newResponseCache(time.Minute, 2)
	put := func(key string) {
		c.put(&cacheEntry{key: key, status: 200, body: []byte(key)})
	}
	put("a")
	put("b")
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	put("c") // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	var calls atomic.Int64
	b := countingBackend(&calls)
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	postBody(t, g, "/svc/1", "x")
	postBody(t, g, "/svc/1", "x")
	if calls.Load() != 2 {
		t.Fatalf("backend called %d times, want 2 without cache", calls.Load())
	}
}

func TestCacheDoesNotStoreErrors(t *testing.T) {
	fail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusUnprocessableEntity)
	}))
	defer fail.Close()
	g := New(Config{CacheTTL: time.Minute})
	if err := g.AddRoute("/svc", RoundRobin, fail.URL); err != nil {
		t.Fatal(err)
	}
	postBody(t, g, "/svc/1", "x")
	_, _, xc := postBody(t, g, "/svc/1", "x")
	if xc == "hit" {
		t.Fatal("error response was cached")
	}
}
