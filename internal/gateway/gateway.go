// Package gateway implements the micro-service API gateway SPATIAL fronts
// its metric services with (the paper deploys Kong). It provides prefix
// routing, round-robin and least-connections load balancing, active health
// checks, token-bucket rate limiting, API-key authentication, per-route
// latency metrics, and a per-upstream circuit breaker.
package gateway

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Balancing selects the load-balancing policy of a route.
type Balancing int

// Balancing policies.
const (
	RoundRobin Balancing = iota + 1
	LeastConnections
)

// Config parameterizes the gateway.
type Config struct {
	// APIKeys, when non-empty, enables X-API-Key authentication.
	APIKeys []string
	// RatePerSecond and Burst configure the per-client token bucket;
	// RatePerSecond <= 0 disables rate limiting.
	RatePerSecond float64
	Burst         int
	// HealthInterval is the active health-check period (default 1s,
	// used by Start).
	HealthInterval time.Duration
	// BreakerThreshold is the number of consecutive upstream failures
	// that opens the circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects an upstream
	// before retrying it (default 5s).
	BreakerCooldown time.Duration
	// CacheTTL > 0 enables the response cache: byte-identical GET/POST
	// requests within the TTL are answered from cache. Safe here because
	// the metric services are pure functions of the request body; do not
	// enable in front of stateful endpoints.
	CacheTTL time.Duration
	// CacheMaxEntries bounds the cache (default 1024).
	CacheMaxEntries int
	// Telemetry is the metric registry the gateway records into; a
	// private registry (with runtime metrics) is created when nil. The
	// registry is exposed at /metrics, which bypasses auth and rate
	// limiting so scrapers need no API key.
	Telemetry *telemetry.Registry
	// Tracer records one span per proxied request; a private 1024-span
	// tracer is created when nil. Served as JSON at /traces.
	Tracer *telemetry.Tracer
	// Clock is the time source for request latencies, the circuit
	// breaker, and the health-check ticker; clock.Real() when nil.
	// Tests inject clock.Fake so breaker open/half-open/closed
	// transitions run on a virtual timeline instead of real sleeps.
	Clock clock.Clock
}

// upstream is one backend instance of a route.
type upstream struct {
	target  *url.URL
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
	// draining marks a backend a coordinated restart is about to stop:
	// it stays healthy (in-flight requests finish, health checks keep
	// probing) but pick sends it no new routes while any non-draining
	// candidate exists. Without this state a cluster rollout closed
	// connections the balancer was still routing to.
	draining atomic.Bool
	// conns counts in-flight requests (least-connections policy).
	conns atomic.Int64
	// consecutive proxy failures and the breaker deadline.
	fails     atomic.Int32
	openUntil atomic.Int64 // unix nanos; 0 = closed
}

func (u *upstream) available(now time.Time, threshold int32) bool {
	if !u.healthy.Load() {
		return false
	}
	if openUntil := u.openUntil.Load(); openUntil != 0 {
		if now.UnixNano() < openUntil {
			return false
		}
		// Half-open: exactly one caller wins the CAS and becomes the
		// probe. Losers keep the breaker open, and a breaker concurrently
		// re-opened with a fresh deadline is not erased by a plain store.
		if !u.openUntil.CompareAndSwap(openUntil, 0) {
			return false
		}
		u.fails.Store(threshold - 1)
	}
	return true
}

// route maps a path prefix onto a backend pool. Per-route statistics
// live in the telemetry registry (handles below), so /gateway/metrics,
// RouteMetrics, and the Prometheus /metrics exposition all read the same
// counters instead of keeping parallel private copies.
type route struct {
	prefix    string
	policy    Balancing
	upstreams []*upstream
	rr        atomic.Uint64

	// telemetry handles, resolved once at AddRoute.
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

// Gateway is the HTTP entry point. Create with New, register routes with
// AddRoute, then serve. Start launches the active health checker; Stop
// shuts it down.
type Gateway struct {
	cfg Config
	clk clock.Clock

	mu     sync.RWMutex
	routes []*route

	limiter *rateLimiter
	keys    map[string]struct{}

	tel     *telemetry.Registry
	tracer  *telemetry.Tracer
	metricH http.Handler
	traceH  http.Handler
	// telemetry family handles shared across routes.
	reqVec    *telemetry.CounterVec
	errVec    *telemetry.CounterVec
	latVec    *telemetry.HistogramVec
	inFlight  *telemetry.Gauge
	cacheHits *telemetry.Counter
	cacheMiss *telemetry.Counter
	shed      *telemetry.Counter

	cacheMu sync.Mutex
	cache   *responseCache

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New constructs a gateway.
func New(cfg Config) *Gateway {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	telemetry.RegisterRuntimeMetrics(tel)
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = telemetry.NewTracer(1024)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	g := &Gateway{
		cfg:     cfg,
		clk:     clk,
		tel:     tel,
		tracer:  tracer,
		metricH: tel.Handler(),
		traceH:  tracer.Handler(),
		reqVec: tel.Counter("spatial_gateway_requests_total",
			"Requests handled by the gateway, per route.", "route"),
		errVec: tel.Counter("spatial_gateway_errors_total",
			"Requests that ended in a 5xx, per route.", "route"),
		latVec: tel.Histogram("spatial_gateway_request_duration_seconds",
			"Gateway request latency in seconds, per route.", nil, "route"),
		inFlight: tel.Gauge("spatial_gateway_in_flight_requests",
			"Requests currently traversing the gateway.").With(),
		cacheHits: tel.Counter("spatial_gateway_cache_hits_total",
			"Responses served from the gateway response cache.").With(),
		cacheMiss: tel.Counter("spatial_gateway_cache_misses_total",
			"Cacheable requests that missed the response cache.").With(),
		shed: tel.Counter("spatial_gateway_upstream_shed_total",
			"Proxied requests an upstream shed with 429 (serving admission control); the Retry-After hint passes through to the client.").With(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if len(cfg.APIKeys) > 0 {
		g.keys = make(map[string]struct{}, len(cfg.APIKeys))
		for _, k := range cfg.APIKeys {
			g.keys[k] = struct{}{}
		}
	}
	if cfg.CacheTTL > 0 {
		g.cache = newResponseCache(cfg.CacheTTL, cfg.CacheMaxEntries)
		g.cache.now = clk.Now
	}
	if cfg.RatePerSecond > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(cfg.RatePerSecond)
			if burst < 1 {
				burst = 1
			}
		}
		g.limiter = newRateLimiter(cfg.RatePerSecond, burst)
		g.limiter.now = clk.Now
	}
	return g
}

// AddRoute registers a prefix route over one or more backend base URLs.
// The prefix is stripped before forwarding: /shap/explain with prefix
// /shap reaches the backend as /explain.
func (g *Gateway) AddRoute(prefix string, policy Balancing, backends ...string) error {
	if !strings.HasPrefix(prefix, "/") || prefix == "/" {
		return fmt.Errorf("gateway: invalid route prefix %q", prefix)
	}
	if len(backends) == 0 {
		return errors.New("gateway: route needs at least one backend")
	}
	if policy != RoundRobin && policy != LeastConnections {
		return fmt.Errorf("gateway: unknown balancing policy %d", policy)
	}
	cleanPrefix := strings.TrimSuffix(prefix, "/")
	rt := &route{
		prefix:   cleanPrefix,
		policy:   policy,
		requests: g.reqVec.With(cleanPrefix), //lint:ignore telemetry-cardinality route prefixes are the operator-configured -route set
		errors:   g.errVec.With(cleanPrefix), //lint:ignore telemetry-cardinality route prefixes are the operator-configured -route set
		latency:  g.latVec.With(cleanPrefix), //lint:ignore telemetry-cardinality route prefixes are the operator-configured -route set
	}
	for _, b := range backends {
		target, err := url.Parse(b)
		if err != nil {
			return fmt.Errorf("gateway: backend %q: %w", b, err)
		}
		if target.Scheme == "" || target.Host == "" {
			return fmt.Errorf("gateway: backend %q must be an absolute URL", b)
		}
		u := &upstream{target: target}
		u.healthy.Store(true) // optimistic until the first health check
		proxy := httputil.NewSingleHostReverseProxy(target)
		proxy.ModifyResponse = func(resp *http.Response) error {
			// The gateway already stamped X-Trace-Id on the client
			// response; drop the upstream's echo so the header is
			// not duplicated.
			resp.Header.Del(telemetry.HeaderTraceID)
			return nil
		}
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			g.onUpstreamFailure(u)
			http.Error(w, fmt.Sprintf("upstream error: %v", err), http.StatusBadGateway)
		}
		u.proxy = proxy
		rt.upstreams = append(rt.upstreams, u)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	for _, existing := range g.routes {
		if existing.prefix == rt.prefix {
			return fmt.Errorf("gateway: route %q already registered", rt.prefix)
		}
	}
	g.routes = append(g.routes, rt)
	// Longest prefix first so /explain/image wins over /explain.
	sort.Slice(g.routes, func(i, j int) bool { return len(g.routes[i].prefix) > len(g.routes[j].prefix) })
	return nil
}

// SetDraining marks every upstream with the given target URL as
// draining (or live again). A cluster coordinator calls this before
// stopping a replica so the balancer stops routing to it while its
// in-flight requests finish; it errors if no route knows the backend.
func (g *Gateway) SetDraining(backend string, draining bool) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	found := false
	for _, rt := range g.routes {
		for _, u := range rt.upstreams {
			if u.target.String() == backend {
				u.draining.Store(draining)
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("gateway: no upstream %q to drain", backend)
	}
	return nil
}

func (g *Gateway) onUpstreamFailure(u *upstream) {
	if int(u.fails.Add(1)) >= g.cfg.BreakerThreshold {
		u.openUntil.Store(g.clk.Now().Add(g.cfg.BreakerCooldown).UnixNano())
	}
}

func (g *Gateway) match(path string) *route {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, rt := range g.routes {
		if strings.HasPrefix(path, rt.prefix) {
			rest := path[len(rt.prefix):]
			if rest == "" || rest[0] == '/' {
				return rt
			}
		}
	}
	return nil
}

// pick selects an available upstream per the route policy. Draining
// backends are excluded while any non-draining candidate remains; when
// the whole pool is draining they are used anyway — a degraded route
// beats a refused one mid-rollout.
func (g *Gateway) pick(rt *route) *upstream {
	now := g.clk.Now()
	threshold := int32(g.cfg.BreakerThreshold)
	candidates := make([]*upstream, 0, len(rt.upstreams))
	var drainingOnly []*upstream
	for _, u := range rt.upstreams {
		if !u.available(now, threshold) {
			continue
		}
		if u.draining.Load() {
			drainingOnly = append(drainingOnly, u)
			continue
		}
		candidates = append(candidates, u)
	}
	if len(candidates) == 0 {
		candidates = drainingOnly
	}
	if len(candidates) == 0 {
		return nil
	}
	switch rt.policy {
	case LeastConnections:
		best := candidates[0]
		for _, u := range candidates[1:] {
			if u.conns.Load() < best.conns.Load() {
				best = u
			}
		}
		return best
	default: // RoundRobin
		return candidates[rt.rr.Add(1)%uint64(len(candidates))]
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Observability endpoints answer before auth and rate limiting so
	// scrapers and operators need no API key and are never shed.
	switch r.URL.Path {
	case "/gateway/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","routes":%d}`, len(g.RouteMetrics()))
		return
	case "/gateway/metrics":
		g.serveMetrics(w)
		return
	case "/metrics":
		g.metricH.ServeHTTP(w, r)
		return
	case "/traces":
		g.traceH.ServeHTTP(w, r)
		return
	}

	if g.keys != nil {
		if _, ok := g.keys[r.Header.Get("X-API-Key")]; !ok {
			http.Error(w, "invalid or missing API key", http.StatusUnauthorized)
			return
		}
	}
	if g.limiter != nil && !g.limiter.allow(clientKey(r)) {
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}

	rt := g.match(r.URL.Path)
	if rt == nil {
		http.Error(w, "no route", http.StatusNotFound)
		return
	}
	u := g.pick(rt)
	if u == nil {
		http.Error(w, "no healthy upstream", http.StatusServiceUnavailable)
		return
	}

	// Trace propagation: adopt the caller's trace (or mint one), then
	// hand our fresh span to the upstream as its parent so the gateway
	// hop and the service hop correlate under one trace ID.
	start := g.clk.Now()
	traceID, parentID := telemetry.Extract(r.Header)
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	spanID := telemetry.NewSpanID()
	w.Header().Set(telemetry.HeaderTraceID, traceID)
	finish := func(status int, cached bool) {
		elapsed := g.clk.Since(start)
		rt.requests.Inc()
		rt.latency.Observe(elapsed.Seconds())
		if status >= 500 {
			rt.errors.Inc()
		}
		if status == http.StatusTooManyRequests {
			g.shed.Inc()
		}
		name := "proxy " + rt.prefix
		if cached {
			name = "cache " + rt.prefix
		}
		g.tracer.Record(telemetry.Span{
			TraceID:  traceID,
			SpanID:   spanID,
			ParentID: parentID,
			Service:  "gateway",
			Name:     name,
			Start:    start,
			Duration: float64(elapsed.Nanoseconds()) / 1e6,
			Status:   status,
		})
	}

	// Strip the route prefix.
	r2 := r.Clone(telemetry.ContextWithTrace(r.Context(), traceID, spanID))
	r2.URL.Path = strings.TrimPrefix(r.URL.Path, rt.prefix)
	if r2.URL.Path == "" {
		r2.URL.Path = "/"
	}
	r2.Header.Set(telemetry.HeaderTraceID, traceID)
	r2.Header.Set(telemetry.HeaderSpanID, spanID)

	// Response cache: answer byte-identical requests within the TTL
	// without touching the upstream.
	var key string
	cacheable := g.cache != nil && (r.Method == http.MethodGet || r.Method == http.MethodPost)
	if cacheable {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read request body", http.StatusBadRequest)
			return
		}
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		key = cacheKey(r.Method, r.URL.Path, body)
		g.cacheMu.Lock()
		entry, hit := g.cache.get(key)
		g.cacheMu.Unlock()
		if hit {
			g.cacheHits.Inc()
			if entry.contentType != "" {
				w.Header().Set("Content-Type", entry.contentType)
			}
			w.Header().Set("X-Cache", "hit")
			w.WriteHeader(entry.status)
			if _, err := w.Write(entry.body); err != nil {
				return
			}
			finish(entry.status, true)
			return
		}
		g.cacheMiss.Inc()
	}

	g.inFlight.Inc()
	u.conns.Add(1)
	var rec interface {
		http.ResponseWriter
	}
	var status *int
	if cacheable {
		cr := &cacheRecorder{ResponseWriter: w, status: http.StatusOK}
		rec = cr
		status = &cr.status
		defer func() {
			if cr.status == http.StatusOK {
				g.cacheMu.Lock()
				g.cache.put(&cacheEntry{
					key:         key,
					status:      cr.status,
					contentType: cr.Header().Get("Content-Type"),
					body:        append([]byte(nil), cr.buf.Bytes()...),
				})
				g.cacheMu.Unlock()
			}
		}()
	} else {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		rec = sr
		status = &sr.status
	}
	u.proxy.ServeHTTP(rec, r2)
	u.conns.Add(-1)
	g.inFlight.Dec()

	finish(*status, false)
	if *status < 500 {
		u.fails.Store(0)
	}
}

// CacheStats reports (hits, misses) of the response cache.
func (g *Gateway) CacheStats() (hits, misses int64) {
	return int64(g.cacheHits.Value()), int64(g.cacheMiss.Value())
}

// Telemetry exposes the gateway's metric registry (for sharing with other
// components in the same process or scraping programmatically).
func (g *Gateway) Telemetry() *telemetry.Registry { return g.tel }

// Tracer exposes the gateway's span ring buffer.
func (g *Gateway) Tracer() *telemetry.Tracer { return g.tracer }

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return r.RemoteAddr
}

// RouteMetric is the exported per-route statistics record.
type RouteMetric struct {
	Prefix        string           `json:"prefix"`
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	MeanLatencyMs float64          `json:"meanLatencyMs"`
	Upstreams     []UpstreamStatus `json:"upstreams"`
}

// UpstreamStatus reports one backend's health.
type UpstreamStatus struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	Draining    bool   `json:"draining"`
	BreakerOpen bool   `json:"breakerOpen"`
	InFlight    int64  `json:"inFlight"`
}

// RouteMetrics snapshots per-route statistics from the telemetry
// registry.
func (g *Gateway) RouteMetrics() []RouteMetric {
	g.mu.RLock()
	defer g.mu.RUnlock()
	now := g.clk.Now().UnixNano()
	out := make([]RouteMetric, 0, len(g.routes))
	for _, rt := range g.routes {
		m := RouteMetric{
			Prefix:   rt.prefix,
			Requests: int64(rt.requests.Value()),
			Errors:   int64(rt.errors.Value()),
		}
		if n := rt.latency.Count(); n > 0 {
			m.MeanLatencyMs = rt.latency.Sum() / float64(n) * 1e3
		}
		for _, u := range rt.upstreams {
			m.Upstreams = append(m.Upstreams, UpstreamStatus{
				URL:         u.target.String(),
				Healthy:     u.healthy.Load(),
				Draining:    u.draining.Load(),
				BreakerOpen: u.openUntil.Load() > now,
				InFlight:    u.conns.Load(),
			})
		}
		out = append(out, m)
	}
	return out
}

func (g *Gateway) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	metrics := g.RouteMetrics()
	fmt.Fprint(w, "[")
	for i, m := range metrics {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, `{"prefix":%q,"requests":%d,"errors":%d,"meanLatencyMs":%.3f}`,
			m.Prefix, m.Requests, m.Errors, m.MeanLatencyMs)
	}
	fmt.Fprint(w, "]")
}

// Start launches the active health checker. Call Stop to shut it down.
func (g *Gateway) Start() {
	if !g.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(g.done)
		ticker := g.clk.NewTicker(g.cfg.HealthInterval)
		defer ticker.Stop()
		// The probe timeout is decoupled from the probe period: under
		// CPU saturation a busy-but-healthy service can take far longer
		// than the check interval to answer /healthz, and flapping it
		// unhealthy would turn overload into an outage.
		probeTimeout := g.cfg.HealthInterval
		if probeTimeout < 3*time.Second {
			probeTimeout = 3 * time.Second
		}
		client := &http.Client{Timeout: probeTimeout}
		for {
			select {
			case <-ticker.C():
				g.checkHealth(client)
			case <-g.stop:
				return
			}
		}
	}()
}

// Stop terminates the health checker and waits for it to exit. It is safe
// to call multiple times, and safe to call even if Start was never called
// (the health goroutine simply never ran).
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	if !g.started.Load() {
		return
	}
	<-g.done
}

func (g *Gateway) checkHealth(client *http.Client) {
	g.mu.RLock()
	routes := append([]*route(nil), g.routes...)
	g.mu.RUnlock()
	for _, rt := range routes {
		for _, u := range rt.upstreams {
			resp, err := client.Get(u.target.String() + "/healthz")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				_ = resp.Body.Close()
			}
			u.healthy.Store(ok)
		}
	}
}
