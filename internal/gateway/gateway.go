// Package gateway implements the micro-service API gateway SPATIAL fronts
// its metric services with (the paper deploys Kong). It provides prefix
// routing, round-robin and least-connections load balancing, active health
// checks, token-bucket rate limiting, API-key authentication, per-route
// latency metrics, and a per-upstream circuit breaker.
package gateway

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Balancing selects the load-balancing policy of a route.
type Balancing int

// Balancing policies.
const (
	RoundRobin Balancing = iota + 1
	LeastConnections
)

// Config parameterizes the gateway.
type Config struct {
	// APIKeys, when non-empty, enables X-API-Key authentication.
	APIKeys []string
	// RatePerSecond and Burst configure the per-client token bucket;
	// RatePerSecond <= 0 disables rate limiting.
	RatePerSecond float64
	Burst         int
	// HealthInterval is the active health-check period (default 1s,
	// used by Start).
	HealthInterval time.Duration
	// BreakerThreshold is the number of consecutive upstream failures
	// that opens the circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects an upstream
	// before retrying it (default 5s).
	BreakerCooldown time.Duration
	// CacheTTL > 0 enables the response cache: byte-identical GET/POST
	// requests within the TTL are answered from cache. Safe here because
	// the metric services are pure functions of the request body; do not
	// enable in front of stateful endpoints.
	CacheTTL time.Duration
	// CacheMaxEntries bounds the cache (default 1024).
	CacheMaxEntries int
}

// upstream is one backend instance of a route.
type upstream struct {
	target  *url.URL
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
	// conns counts in-flight requests (least-connections policy).
	conns atomic.Int64
	// consecutive proxy failures and the breaker deadline.
	fails     atomic.Int32
	openUntil atomic.Int64 // unix nanos; 0 = closed
}

func (u *upstream) available(now time.Time, threshold int32) bool {
	if !u.healthy.Load() {
		return false
	}
	if openUntil := u.openUntil.Load(); openUntil != 0 {
		if now.UnixNano() < openUntil {
			return false
		}
		// Half-open: allow a probe request through.
		u.openUntil.Store(0)
		u.fails.Store(threshold - 1)
	}
	return true
}

// route maps a path prefix onto a backend pool.
type route struct {
	prefix    string
	policy    Balancing
	upstreams []*upstream
	rr        atomic.Uint64

	// metrics
	requests  atomic.Int64
	errors    atomic.Int64
	totalNano atomic.Int64
}

// Gateway is the HTTP entry point. Create with New, register routes with
// AddRoute, then serve. Start launches the active health checker; Stop
// shuts it down.
type Gateway struct {
	cfg Config

	mu     sync.RWMutex
	routes []*route

	limiter *rateLimiter
	keys    map[string]struct{}

	cacheMu   sync.Mutex
	cache     *responseCache
	cacheHits atomic.Int64
	cacheMiss atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New constructs a gateway.
func New(cfg Config) *Gateway {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	g := &Gateway{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if len(cfg.APIKeys) > 0 {
		g.keys = make(map[string]struct{}, len(cfg.APIKeys))
		for _, k := range cfg.APIKeys {
			g.keys[k] = struct{}{}
		}
	}
	if cfg.CacheTTL > 0 {
		g.cache = newResponseCache(cfg.CacheTTL, cfg.CacheMaxEntries)
	}
	if cfg.RatePerSecond > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(cfg.RatePerSecond)
			if burst < 1 {
				burst = 1
			}
		}
		g.limiter = newRateLimiter(cfg.RatePerSecond, burst)
	}
	return g
}

// AddRoute registers a prefix route over one or more backend base URLs.
// The prefix is stripped before forwarding: /shap/explain with prefix
// /shap reaches the backend as /explain.
func (g *Gateway) AddRoute(prefix string, policy Balancing, backends ...string) error {
	if !strings.HasPrefix(prefix, "/") || prefix == "/" {
		return fmt.Errorf("gateway: invalid route prefix %q", prefix)
	}
	if len(backends) == 0 {
		return errors.New("gateway: route needs at least one backend")
	}
	if policy != RoundRobin && policy != LeastConnections {
		return fmt.Errorf("gateway: unknown balancing policy %d", policy)
	}
	rt := &route{prefix: strings.TrimSuffix(prefix, "/"), policy: policy}
	for _, b := range backends {
		target, err := url.Parse(b)
		if err != nil {
			return fmt.Errorf("gateway: backend %q: %w", b, err)
		}
		if target.Scheme == "" || target.Host == "" {
			return fmt.Errorf("gateway: backend %q must be an absolute URL", b)
		}
		u := &upstream{target: target}
		u.healthy.Store(true) // optimistic until the first health check
		proxy := httputil.NewSingleHostReverseProxy(target)
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			g.onUpstreamFailure(u)
			http.Error(w, fmt.Sprintf("upstream error: %v", err), http.StatusBadGateway)
		}
		u.proxy = proxy
		rt.upstreams = append(rt.upstreams, u)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	for _, existing := range g.routes {
		if existing.prefix == rt.prefix {
			return fmt.Errorf("gateway: route %q already registered", rt.prefix)
		}
	}
	g.routes = append(g.routes, rt)
	// Longest prefix first so /explain/image wins over /explain.
	sort.Slice(g.routes, func(i, j int) bool { return len(g.routes[i].prefix) > len(g.routes[j].prefix) })
	return nil
}

func (g *Gateway) onUpstreamFailure(u *upstream) {
	if int(u.fails.Add(1)) >= g.cfg.BreakerThreshold {
		u.openUntil.Store(time.Now().Add(g.cfg.BreakerCooldown).UnixNano())
	}
}

func (g *Gateway) match(path string) *route {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, rt := range g.routes {
		if strings.HasPrefix(path, rt.prefix) {
			rest := path[len(rt.prefix):]
			if rest == "" || rest[0] == '/' {
				return rt
			}
		}
	}
	return nil
}

// pick selects an available upstream per the route policy.
func (g *Gateway) pick(rt *route) *upstream {
	now := time.Now()
	threshold := int32(g.cfg.BreakerThreshold)
	candidates := make([]*upstream, 0, len(rt.upstreams))
	for _, u := range rt.upstreams {
		if u.available(now, threshold) {
			candidates = append(candidates, u)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch rt.policy {
	case LeastConnections:
		best := candidates[0]
		for _, u := range candidates[1:] {
			if u.conns.Load() < best.conns.Load() {
				best = u
			}
		}
		return best
	default: // RoundRobin
		return candidates[rt.rr.Add(1)%uint64(len(candidates))]
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/gateway/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","routes":%d}`, len(g.RouteMetrics()))
		return
	case "/gateway/metrics":
		g.serveMetrics(w)
		return
	}

	if g.keys != nil {
		if _, ok := g.keys[r.Header.Get("X-API-Key")]; !ok {
			http.Error(w, "invalid or missing API key", http.StatusUnauthorized)
			return
		}
	}
	if g.limiter != nil && !g.limiter.allow(clientKey(r)) {
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}

	rt := g.match(r.URL.Path)
	if rt == nil {
		http.Error(w, "no route", http.StatusNotFound)
		return
	}
	u := g.pick(rt)
	if u == nil {
		http.Error(w, "no healthy upstream", http.StatusServiceUnavailable)
		return
	}

	// Strip the route prefix.
	r2 := r.Clone(r.Context())
	r2.URL.Path = strings.TrimPrefix(r.URL.Path, rt.prefix)
	if r2.URL.Path == "" {
		r2.URL.Path = "/"
	}

	// Response cache: answer byte-identical requests within the TTL
	// without touching the upstream.
	var key string
	cacheable := g.cache != nil && (r.Method == http.MethodGet || r.Method == http.MethodPost)
	if cacheable {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read request body", http.StatusBadRequest)
			return
		}
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		key = cacheKey(r.Method, r.URL.Path, body)
		g.cacheMu.Lock()
		entry, hit := g.cache.get(key)
		g.cacheMu.Unlock()
		if hit {
			g.cacheHits.Add(1)
			rt.requests.Add(1)
			if entry.contentType != "" {
				w.Header().Set("Content-Type", entry.contentType)
			}
			w.Header().Set("X-Cache", "hit")
			w.WriteHeader(entry.status)
			if _, err := w.Write(entry.body); err != nil {
				return
			}
			return
		}
		g.cacheMiss.Add(1)
	}

	start := time.Now()
	u.conns.Add(1)
	var rec interface {
		http.ResponseWriter
	}
	var status *int
	if cacheable {
		cr := &cacheRecorder{ResponseWriter: w, status: http.StatusOK}
		rec = cr
		status = &cr.status
		defer func() {
			if cr.status == http.StatusOK {
				g.cacheMu.Lock()
				g.cache.put(&cacheEntry{
					key:         key,
					status:      cr.status,
					contentType: cr.Header().Get("Content-Type"),
					body:        append([]byte(nil), cr.buf.Bytes()...),
				})
				g.cacheMu.Unlock()
			}
		}()
	} else {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		rec = sr
		status = &sr.status
	}
	u.proxy.ServeHTTP(rec, r2)
	u.conns.Add(-1)

	rt.requests.Add(1)
	rt.totalNano.Add(time.Since(start).Nanoseconds())
	if *status >= 500 {
		rt.errors.Add(1)
	} else {
		u.fails.Store(0)
	}
}

// CacheStats reports (hits, misses) of the response cache.
func (g *Gateway) CacheStats() (hits, misses int64) {
	return g.cacheHits.Load(), g.cacheMiss.Load()
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return r.RemoteAddr
}

// RouteMetric is the exported per-route statistics record.
type RouteMetric struct {
	Prefix        string           `json:"prefix"`
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	MeanLatencyMs float64          `json:"meanLatencyMs"`
	Upstreams     []UpstreamStatus `json:"upstreams"`
}

// UpstreamStatus reports one backend's health.
type UpstreamStatus struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	BreakerOpen bool   `json:"breakerOpen"`
	InFlight    int64  `json:"inFlight"`
}

// RouteMetrics snapshots per-route statistics.
func (g *Gateway) RouteMetrics() []RouteMetric {
	g.mu.RLock()
	defer g.mu.RUnlock()
	now := time.Now().UnixNano()
	out := make([]RouteMetric, 0, len(g.routes))
	for _, rt := range g.routes {
		m := RouteMetric{
			Prefix:   rt.prefix,
			Requests: rt.requests.Load(),
			Errors:   rt.errors.Load(),
		}
		if m.Requests > 0 {
			m.MeanLatencyMs = float64(rt.totalNano.Load()) / float64(m.Requests) / 1e6
		}
		for _, u := range rt.upstreams {
			m.Upstreams = append(m.Upstreams, UpstreamStatus{
				URL:         u.target.String(),
				Healthy:     u.healthy.Load(),
				BreakerOpen: u.openUntil.Load() > now,
				InFlight:    u.conns.Load(),
			})
		}
		out = append(out, m)
	}
	return out
}

func (g *Gateway) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	metrics := g.RouteMetrics()
	fmt.Fprint(w, "[")
	for i, m := range metrics {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, `{"prefix":%q,"requests":%d,"errors":%d,"meanLatencyMs":%.3f}`,
			m.Prefix, m.Requests, m.Errors, m.MeanLatencyMs)
	}
	fmt.Fprint(w, "]")
}

// Start launches the active health checker. Call Stop to shut it down.
func (g *Gateway) Start() {
	if !g.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(g.cfg.HealthInterval)
		defer ticker.Stop()
		// The probe timeout is decoupled from the probe period: under
		// CPU saturation a busy-but-healthy service can take far longer
		// than the check interval to answer /healthz, and flapping it
		// unhealthy would turn overload into an outage.
		probeTimeout := g.cfg.HealthInterval
		if probeTimeout < 3*time.Second {
			probeTimeout = 3 * time.Second
		}
		client := &http.Client{Timeout: probeTimeout}
		for {
			select {
			case <-ticker.C:
				g.checkHealth(client)
			case <-g.stop:
				return
			}
		}
	}()
}

// Stop terminates the health checker and waits for it to exit. It is safe
// to call multiple times, and safe to call even if Start was never called
// (the health goroutine simply never ran).
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	if !g.started.Load() {
		return
	}
	<-g.done
}

func (g *Gateway) checkHealth(client *http.Client) {
	g.mu.RLock()
	routes := append([]*route(nil), g.routes...)
	g.mu.RUnlock()
	for _, rt := range routes {
		for _, u := range rt.upstreams {
			resp, err := client.Get(u.target.String() + "/healthz")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				resp.Body.Close()
			}
			u.healthy.Store(ok)
		}
	}
}
