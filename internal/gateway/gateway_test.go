package gateway

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoBackend returns a test server that identifies itself and echoes the
// request path.
func echoBackend(name string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		fmt.Fprintf(w, "%s:%s", name, r.URL.Path)
	}))
}

func get(t *testing.T, gw http.Handler, path string, headers map[string]string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestRoutingAndPrefixStrip(t *testing.T) {
	b := echoBackend("svc")
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/shap", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, g, "/shap/explain", nil)
	if code != http.StatusOK || body != "svc:/explain" {
		t.Fatalf("got %d %q", code, body)
	}
	code, _ = get(t, g, "/unknown/x", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unrouted path status %d", code)
	}
	// Prefix must match on a path-segment boundary.
	code, _ = get(t, g, "/shapelike/explain", nil)
	if code != http.StatusNotFound {
		t.Fatalf("partial prefix matched: %d", code)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	b := echoBackend("b")
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/explain", RoundRobin, a.URL); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRoute("/explain/image", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, g, "/explain/image/run", nil)
	if body != "b:/run" {
		t.Fatalf("longest prefix not preferred: %q", body)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	b := echoBackend("b")
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/svc", RoundRobin, a.URL, b.URL); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		_, body := get(t, g, "/svc/x", nil)
		counts[body[:1]]++
	}
	if counts["a"] != 5 || counts["b"] != 5 {
		t.Fatalf("round robin distribution %v", counts)
	}
}

func TestLeastConnectionsPrefersIdle(t *testing.T) {
	release := make(chan struct{})
	var slowStarted sync.WaitGroup
	slowStarted.Add(1)
	var once sync.Once
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			return
		}
		once.Do(slowStarted.Done)
		<-release
		fmt.Fprint(w, "slow")
	}))
	defer slow.Close()
	fast := echoBackend("fast")
	defer fast.Close()

	g := New(Config{})
	if err := g.AddRoute("/svc", LeastConnections, slow.URL, fast.URL); err != nil {
		t.Fatal(err)
	}

	// Occupy the slow backend with one in-flight request.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, g, "/svc/first", nil) // least-conns: both idle, picks first (slow)
	}()
	slowStarted.Wait()

	// Now every new request must go to the idle fast backend.
	for i := 0; i < 3; i++ {
		_, body := get(t, g, "/svc/x", nil)
		if body != "fast:/x" {
			close(release)
			t.Fatalf("request %d went to %q", i, body)
		}
	}
	close(release)
	wg.Wait()
}

func TestAPIKeyAuth(t *testing.T) {
	b := echoBackend("svc")
	defer b.Close()
	g := New(Config{APIKeys: []string{"secret"}})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	code, _ := get(t, g, "/svc/x", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("missing key admitted: %d", code)
	}
	code, _ = get(t, g, "/svc/x", map[string]string{"X-API-Key": "wrong"})
	if code != http.StatusUnauthorized {
		t.Fatalf("wrong key admitted: %d", code)
	}
	code, _ = get(t, g, "/svc/x", map[string]string{"X-API-Key": "secret"})
	if code != http.StatusOK {
		t.Fatalf("valid key rejected: %d", code)
	}
}

func TestRateLimiting(t *testing.T) {
	b := echoBackend("svc")
	defer b.Close()
	g := New(Config{RatePerSecond: 1, Burst: 2})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	codes := make([]int, 4)
	for i := range codes {
		codes[i], _ = get(t, g, "/svc/x", nil)
	}
	if codes[0] != 200 || codes[1] != 200 {
		t.Fatalf("burst requests rejected: %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third request admitted past burst: %v", codes)
	}
}

func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(10, 1)
	now := time.Now()
	l.now = func() time.Time { return now }
	if !l.allow("k") {
		t.Fatal("first request should pass")
	}
	if l.allow("k") {
		t.Fatal("bucket should be empty")
	}
	now = now.Add(150 * time.Millisecond) // refills 1.5 tokens, capped at 1
	if !l.allow("k") {
		t.Fatal("refilled token not granted")
	}
	if l.allow("k") {
		t.Fatal("cap exceeded")
	}
}

func TestRateLimiterIsolatesClients(t *testing.T) {
	l := newRateLimiter(1, 1)
	if !l.allow("a") || !l.allow("b") {
		t.Fatal("independent clients share a bucket")
	}
}

func TestHealthCheckRemovesDeadUpstream(t *testing.T) {
	alive := echoBackend("alive")
	defer alive.Close()
	dead := echoBackend("dead")
	deadURL := dead.URL
	dead.Close() // kill it immediately

	g := New(Config{HealthInterval: 20 * time.Millisecond})
	if err := g.AddRoute("/svc", RoundRobin, alive.URL, deadURL); err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for {
		ms := g.RouteMetrics()
		if !ms[0].Upstreams[1].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead upstream never marked unhealthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		code, body := get(t, g, "/svc/x", nil)
		if code != http.StatusOK || body != "alive:/x" {
			t.Fatalf("request hit dead upstream: %d %q", code, body)
		}
	}
}

func TestCircuitBreakerOpens(t *testing.T) {
	var calls atomic.Int64
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close() // abort mid-response -> proxy error
		}
	}))
	defer failing.Close()

	g := New(Config{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	if err := g.AddRoute("/svc", RoundRobin, failing.URL); err != nil {
		t.Fatal(err)
	}
	// Two failures open the breaker.
	for i := 0; i < 2; i++ {
		code, _ := get(t, g, "/svc/x", nil)
		if code != http.StatusBadGateway {
			t.Fatalf("expected 502, got %d", code)
		}
	}
	before := calls.Load()
	code, _ := get(t, g, "/svc/x", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breaker did not open: %d", code)
	}
	if calls.Load() != before {
		t.Fatal("request reached upstream through open breaker")
	}
}

func TestGatewayMetricsEndpoint(t *testing.T) {
	b := echoBackend("svc")
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/svc", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	get(t, g, "/svc/x", nil)
	code, body := get(t, g, "/gateway/metrics", nil)
	if code != http.StatusOK || body == "[]" {
		t.Fatalf("metrics: %d %q", code, body)
	}
	ms := g.RouteMetrics()
	if len(ms) != 1 || ms[0].Requests != 1 || ms[0].Errors != 0 {
		t.Fatalf("route metrics %+v", ms)
	}
	code, _ = get(t, g, "/gateway/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("gateway healthz %d", code)
	}
}

func TestAddRouteValidation(t *testing.T) {
	g := New(Config{})
	if err := g.AddRoute("bad", RoundRobin, "http://x"); err == nil {
		t.Fatal("expected prefix error")
	}
	if err := g.AddRoute("/a", RoundRobin); err == nil {
		t.Fatal("expected backend error")
	}
	if err := g.AddRoute("/a", Balancing(99), "http://x"); err == nil {
		t.Fatal("expected policy error")
	}
	if err := g.AddRoute("/a", RoundRobin, "relative/url"); err == nil {
		t.Fatal("expected absolute-URL error")
	}
	if err := g.AddRoute("/a", RoundRobin, "http://x"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRoute("/a", RoundRobin, "http://y"); err == nil {
		t.Fatal("expected duplicate-route error")
	}
}

func TestStopWithoutStart(t *testing.T) {
	g := New(Config{})
	done := make(chan struct{})
	go func() {
		g.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hangs")
	}
}

// TestDrainingStopsNewRoutes: a draining upstream receives no new
// requests while a live peer exists, is used as a last resort when the
// whole pool drains, and returns to rotation when undrained.
func TestDrainingStopsNewRoutes(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	b := echoBackend("b")
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/svc", LeastConnections, a.URL, b.URL); err != nil {
		t.Fatal(err)
	}
	if err := g.SetDraining(a.URL, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_, body := get(t, g, "/svc/x", nil)
		if body[:1] != "b" {
			t.Fatalf("request %d routed to draining upstream: %q", i, body)
		}
	}
	// Whole pool draining: degraded service beats a refused route.
	if err := g.SetDraining(b.URL, true); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, g, "/svc/x", nil); code != http.StatusOK {
		t.Fatalf("fully draining pool refused the request: %d", code)
	}
	// Undrain a: it takes traffic again and the status reflects b.
	if err := g.SetDraining(a.URL, false); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, g, "/svc/x", nil)
	if body[:1] != "a" {
		t.Fatalf("undrained upstream not restored: %q", body)
	}
	var drained []string
	for _, rm := range g.RouteMetrics() {
		for _, u := range rm.Upstreams {
			if u.Draining {
				drained = append(drained, u.URL)
			}
		}
	}
	if len(drained) != 1 || drained[0] != b.URL {
		t.Fatalf("status drains %v, want only %s", drained, b.URL)
	}
	if err := g.SetDraining("http://127.0.0.1:1/nope", true); err == nil {
		t.Fatal("draining an unknown backend succeeded")
	}
}
