package gateway

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket. Buckets refill continuously at
// ratePerSecond up to burst tokens.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(ratePerSecond float64, burst int) *rateLimiter {
	return &rateLimiter{
		rate:    ratePerSecond,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow consumes one token for the client key, reporting whether the
// request is admitted.
func (l *rateLimiter) allow(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
