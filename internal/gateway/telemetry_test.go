package gateway

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestMetricsEndpointBypassesAuthAndRateLimit pins the satellite
// requirement: /metrics (and /traces) answer without an API key and are
// never shed by the rate limiter, so scrapers need no credentials.
func TestMetricsEndpointBypassesAuthAndRateLimit(t *testing.T) {
	b := echoBackend("svc")
	defer b.Close()
	g := New(Config{APIKeys: []string{"secret"}, RatePerSecond: 0.0001, Burst: 1})
	if err := g.AddRoute("/shap", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}

	// Burn the rate-limit budget with an authenticated request.
	get(t, g, "/shap/x", map[string]string{"X-API-Key": "secret"})
	if code, _ := get(t, g, "/shap/x", map[string]string{"X-API-Key": "secret"}); code != http.StatusTooManyRequests {
		t.Fatalf("expected rate limit, got %d", code)
	}

	// /metrics still answers, keyless, in Prometheus text format.
	for i := 0; i < 5; i++ {
		code, body := get(t, g, "/metrics", nil)
		if code != http.StatusOK {
			t.Fatalf("metrics status %d on attempt %d", code, i)
		}
		for _, want := range []string{
			`spatial_gateway_requests_total{route="/shap"} 1`,
			"spatial_gateway_request_duration_seconds_bucket",
			`quantile="0.99"`,
			"go_goroutines",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %q:\n%s", want, body)
			}
		}
	}
	if code, _ := get(t, g, "/traces", nil); code != http.StatusOK {
		t.Fatalf("traces endpoint status %d", code)
	}
}

// TestGatewayRecordsSpansAndPropagatesTrace checks that a request carrying
// X-Trace-Id yields a gateway span under that trace, that the trace ID is
// echoed to the client, and that the upstream receives both trace headers
// with the gateway's span as parent.
func TestGatewayRecordsSpansAndPropagatesTrace(t *testing.T) {
	var gotTrace, gotSpan string
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace = r.Header.Get(telemetry.HeaderTraceID)
		gotSpan = r.Header.Get(telemetry.HeaderSpanID)
		// Echo the trace header like an instrumented service would;
		// the gateway must dedupe it on the client response.
		w.Header().Set(telemetry.HeaderTraceID, gotTrace)
		w.WriteHeader(http.StatusOK)
	}))
	defer b.Close()

	g := New(Config{})
	if err := g.AddRoute("/ml", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/ml/predict", nil)
	req.Header.Set(telemetry.HeaderTraceID, "trace-abc")
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if vals := rec.Header().Values(telemetry.HeaderTraceID); len(vals) != 1 || vals[0] != "trace-abc" {
		t.Errorf("response %s = %v, want exactly one trace-abc", telemetry.HeaderTraceID, vals)
	}
	if gotTrace != "trace-abc" {
		t.Errorf("upstream saw trace %q, want trace-abc", gotTrace)
	}
	if gotSpan == "" {
		t.Error("upstream did not receive the gateway's span id")
	}
	spans := g.Tracer().Spans("trace-abc", 0)
	if len(spans) != 1 {
		t.Fatalf("gateway spans = %+v", spans)
	}
	if spans[0].Service != "gateway" || spans[0].Name != "proxy /ml" || spans[0].SpanID != gotSpan {
		t.Errorf("span = %+v (upstream parent %q)", spans[0], gotSpan)
	}
}

// TestGatewayMintsTraceWhenAbsent: requests without trace headers still
// get a trace ID, echoed on the response for client-side correlation.
func TestGatewayMintsTraceWhenAbsent(t *testing.T) {
	b := echoBackend("svc")
	defer b.Close()
	g := New(Config{})
	if err := g.AddRoute("/ml", RoundRobin, b.URL); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/ml/x", nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	minted := rec.Header().Get(telemetry.HeaderTraceID)
	if len(minted) != 32 {
		t.Fatalf("minted trace id %q", minted)
	}
	if spans := g.Tracer().Spans(minted, 0); len(spans) != 1 {
		t.Errorf("spans for minted trace = %+v", spans)
	}
}

// TestSharedRegistryAcrossGateways: two gateways can share one registry
// without re-registration panics (family get-or-create semantics).
func TestSharedRegistryAcrossGateways(t *testing.T) {
	reg := telemetry.NewRegistry()
	g1 := New(Config{Telemetry: reg})
	g2 := New(Config{Telemetry: reg})
	if g1.Telemetry() != reg || g2.Telemetry() != reg {
		t.Fatal("registry not shared")
	}
	if err := g1.AddRoute("/a", RoundRobin, "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddRoute("/b", RoundRobin, "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
}
