package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAppendAlias flags three append misuses that silently corrupt
// or drop data in the batch-assembly hot paths:
//
//  1. dead append — `s = append(s, x)` where s is never read afterwards
//     (classically: appending to a slice parameter, which the caller
//     never sees). Backward liveness analysis over the CFG.
//  2. diverged append — a second `append(base, ...)` while an earlier
//     `other := append(base, ...)` result is around: when cap(base)
//     exceeds len(base) the second append overwrites the element the
//     first one placed. Forward dataflow; appends on mutually exclusive
//     branches are not flagged.
//  3. goroutine append race — `s = append(s, ...)` after spawning a
//     goroutine whose closure also appends to s: an unsynchronized
//     write-write race on both the slice header and the backing array.
//
// Severity is warn: each pattern has rare legitimate shapes (an
// intentionally discarded scratch append, a caller that guarantees
// exact capacity), which get a justified suppression.
var AnalyzerAppendAlias = &Analyzer{
	Name:         "append-alias",
	Doc:          "flags appends whose result is lost or whose backing array is shared across aliases or goroutines",
	Severity:     SeverityWarn,
	IncludeTests: true,
	Run:          runAppendAlias,
}

func runAppendAlias(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, fn := range p.functionBodies() {
		g := p.BuildCFG(fn.Body)
		checkDeadAppend(p, fn, g)
		checkAliasedAppend(p, fn, g)
	}
}

// appendAssign matches lhs[i] = append(...) pairs inside an assignment
// and reports them to fn as (dst ident, append call).
func appendAssigns(as *ast.AssignStmt, fn func(dst *ast.Ident, call *ast.CallExpr)) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Rhs {
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		dst, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		fn(dst, call)
	}
}

// --- pattern 1: dead append (backward liveness) ---

func checkDeadAppend(p *Pass, fn fnBody, g *CFG) {
	// extent bounds the analyzed function's declarations: a variable
	// declared outside it is free (captured from an enclosing function),
	// and appending to it is visible there — never dead from this view.
	var extent ast.Node = fn.Decl
	if fn.Decl == nil {
		extent = fn.Lit
	}
	isLocal := func(v *types.Var) bool {
		return v.Pos() >= extent.Pos() && v.Pos() <= extent.End()
	}

	// alwaysLive holds variables whose liveness the intraprocedural view
	// cannot bound: captured by a closure, address-taken, or named
	// results (implicitly returned).
	alwaysLive := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := p.useVar(id); v != nil {
						alwaysLive[v] = true
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := p.useVar(n.X); v != nil {
					alwaysLive[v] = true
				}
			}
		}
		return true
	})
	named := make(map[*types.Var]bool)
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, id := range field.Names {
				if v := p.useVar(id); v != nil {
					named[v] = true
				}
			}
		}
	}
	params := make(map[*types.Var]bool)
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, id := range field.Names {
				if v := p.useVar(id); v != nil {
					params[v] = true
				}
			}
		}
	}
	if fn.Decl != nil && fn.Decl.Recv != nil {
		for _, field := range fn.Decl.Recv.List {
			for _, id := range field.Names {
				if v := p.useVar(id); v != nil {
					alwaysLive[v] = true // receiver state outlives the call
				}
			}
		}
	}

	type fact = map[*types.Var]int

	// stepBack applies one node's liveness effect in reverse execution
	// order: kill pure definitions, then gen uses.
	stepBack := func(node ast.Node, live fact) fact {
		out := cloneFacts(live)
		if as, ok := node.(*ast.AssignStmt); ok && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
			for _, lhs := range as.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name != "_" {
					if v := p.useVar(id); v != nil {
						delete(out, v)
					}
				}
			}
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if id, isIdent := m.(*ast.Ident); isIdent {
						if v := p.useVar(id); v != nil {
							out[v] = 1
						}
					}
					return true
				})
			}
			return out
		}
		ast.Inspect(node, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v := p.useVar(id); v != nil {
					out[v] = 1
				}
			}
			return true
		})
		return out
	}

	boundary := func() fact {
		f := fact{}
		for v := range named {
			f[v] = 1
		}
		return f
	}
	facts := Solve(g, FlowProblem[fact]{
		Backward: true,
		Boundary: boundary,
		Init:     func() fact { return fact{} },
		Meet:     func(a, b fact) fact { return unionFacts(a, b, keepEarlier) },
		Equal:    equalFacts[*types.Var, int],
		Transfer: func(b *Block, f fact) fact {
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				f = stepBack(b.Nodes[i], f)
			}
			return f
		},
	})

	// Reporting sweep: walk each block backwards from its Out fact so
	// every append-assign sees the liveness state right after it.
	for _, b := range g.Blocks {
		live := facts[b].Out
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			node := b.Nodes[i]
			if as, ok := node.(*ast.AssignStmt); ok {
				appendAssigns(as, func(dst *ast.Ident, call *ast.CallExpr) {
					if dst.Name == "_" {
						return
					}
					v := p.useVar(dst)
					if v == nil || alwaysLive[v] || named[v] || !isLocal(v) {
						return
					}
					if _, isLive := live[v]; isLive {
						return
					}
					if params[v] {
						p.Reportf(call.Pos(),
							"append to parameter %s is lost: slices grow by value, the caller's slice is unchanged — return the appended slice", v.Name())
					} else {
						p.Reportf(call.Pos(),
							"result of append to %s is never used after this point", v.Name())
					}
				})
			}
			live = stepBack(node, live)
		}
	}
}

// --- patterns 2 and 3: aliased and goroutine-raced appends (forward) ---

// aliasKind tags why a base slice is dangerous to append from again.
type aliasKind int8

const (
	aliasDiverged aliasKind = iota + 1
	aliasGoAppend
)

type aliasFact struct {
	pos  int
	kind aliasKind
}

func checkAliasedAppend(p *Pass, fn fnBody, g *CFG) {
	type fact = map[*types.Var]aliasFact

	// goAppendVars lists, per go statement, the outer slice variables the
	// spawned closure itself appends to.
	goAppendTargets := func(gs *ast.GoStmt) []*types.Var {
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return nil
		}
		var out []*types.Var
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if as, ok := m.(*ast.AssignStmt); ok {
				appendAssigns(as, func(dst *ast.Ident, call *ast.CallExpr) {
					v := p.useVar(dst)
					if v == nil {
						return
					}
					// Captured (declared outside the literal), not a
					// variable local to the goroutine.
					if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
						out = append(out, v)
					}
				})
			}
			return true
		})
		return out
	}

	baseVarOf := func(call *ast.CallExpr) *types.Var {
		if len(call.Args) == 0 {
			return nil
		}
		return p.useVar(call.Args[0])
	}

	// The reporting sweep revisits blocks whose In facts may overlap, so
	// dedupe by position.
	seen := make(map[int]bool)
	report := func(pos int, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		p.Reportf(token.Pos(pos), format, args...)
	}

	step := func(node ast.Node, in fact, reporting bool) fact {
		out := cloneFacts(in)
		switch n := node.(type) {
		case *ast.GoStmt:
			for _, v := range goAppendTargets(n) {
				if _, ok := out[v]; !ok {
					out[v] = aliasFact{pos: int(n.Pos()), kind: aliasGoAppend}
				}
			}
		case *ast.AssignStmt:
			handled := make(map[*types.Var]bool)
			appendAssigns(n, func(dst *ast.Ident, call *ast.CallExpr) {
				base := baseVarOf(call)
				dstVar := p.useVar(dst)
				if base == nil {
					return
				}
				handled[base] = true
				if info, tracked := out[base]; tracked {
					if reporting {
						switch info.kind {
						case aliasGoAppend:
							report(int(call.Pos()),
								"append to %s races with the goroutine spawned at line %d, which also appends to it; synchronize or give it a copy",
								base.Name(), p.Fset.Position(token.Pos(info.pos)).Line)
						case aliasDiverged:
							report(int(call.Pos()),
								"second append from %s may overwrite the element placed by the append at line %d (shared backing array); copy before branching the slice",
								base.Name(), p.Fset.Position(token.Pos(info.pos)).Line)
						}
					}
					return
				}
				if dstVar != nil && dstVar != base {
					out[base] = aliasFact{pos: int(call.Pos()), kind: aliasDiverged}
				}
			})
			// A wholesale reassignment of a tracked base retires it.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v := p.useVar(id)
				if v == nil || handled[v] {
					continue
				}
				if i < len(n.Rhs) {
					if call, isCall := n.Rhs[i].(*ast.CallExpr); isCall {
						if fid, isIdent := call.Fun.(*ast.Ident); isIdent && fid.Name == "append" {
							continue
						}
					}
				}
				delete(out, v)
			}
		}
		return out
	}

	facts := Solve(g, FlowProblem[fact]{
		Boundary: func() fact { return fact{} },
		Init:     func() fact { return fact{} },
		Meet: func(a, b fact) fact {
			return unionFacts(a, b, func(x, y aliasFact) aliasFact {
				if y.pos < x.pos {
					return y
				}
				return x
			})
		},
		Equal: equalFacts[*types.Var, aliasFact],
		Transfer: func(b *Block, f fact) fact {
			for _, node := range b.Nodes {
				f = step(node, f, false)
			}
			return f
		},
	})

	for _, b := range g.Blocks {
		f := facts[b].In
		for _, node := range b.Nodes {
			f = step(node, f, true)
		}
	}
}
