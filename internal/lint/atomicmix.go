package lint

// AnalyzerAtomicMix flags struct fields accessed both through sync/atomic
// operations and with plain loads/stores anywhere in the module. Mixing
// the two voids every guarantee the atomic side was buying: the plain
// access races with the atomic one (the race detector reports exactly
// this pair), and on weakly ordered hardware the plain read can observe a
// torn or stale value even when the write looks "just a flag". The fix is
// one discipline per field — all accesses atomic, or all under one lock.
// Fields whose address escapes to non-atomic code are skipped: the graph
// cannot see the accesses behind the pointer.
var AnalyzerAtomicMix = &Analyzer{
	Name:       "atomic-mix",
	Doc:        "flags fields accessed both atomically and with plain loads/stores (data race)",
	Severity:   SeverityError,
	RunProgram: runAtomicMix,
}

func runAtomicMix(pp *ProgramPass) {
	conc := pp.Prog.Concurrency()
	for _, key := range conc.FieldKeys() {
		fi := conc.Fields[key]
		var atomics, plains []*FieldAccess
		escaped := false
		for _, a := range fi.Accesses {
			switch a.Mode {
			case AccessAtomic:
				atomics = append(atomics, a)
			case AccessEscape:
				escaped = true
			default:
				if !a.Confined {
					plains = append(plains, a)
				}
			}
		}
		if escaped || len(atomics) == 0 || len(plains) == 0 {
			continue
		}
		witness := pp.Prog.Fset.Position(atomics[0].Pos)
		for _, a := range plains {
			pp.Reportf(a.Pos, "field %s is accessed atomically (%s:%d) but %s here without sync/atomic; mixed access is a data race — use one discipline for every access",
				shortKeyName(fi.Key), baseName(witness.Filename), witness.Line, a.Mode)
		}
	}
}
