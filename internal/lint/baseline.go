package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
)

// BaselineEntry fingerprints one accepted finding. Line numbers are
// deliberately absent: a baseline should survive unrelated edits to the
// file, so entries match on (check, file, message). The message embeds
// the variable names involved, which keeps the fingerprint tight enough
// in practice.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	// Reason documents why the finding is accepted rather than fixed.
	// It is not part of the match fingerprint: rewording a justification
	// must never change what the baseline absorbs.
	Reason string `json:"reason,omitempty"`
}

// baselineKey is the match fingerprint of an entry (Reason excluded).
type baselineKey struct {
	Check   string
	File    string
	Message string
}

func (e BaselineEntry) key() baselineKey {
	return baselineKey{Check: e.Check, File: e.File, Message: e.Message}
}

// Baseline is the committed set of accepted findings gating CI: a run
// fails only on findings not absorbed here. Each entry is consumed by at
// most one finding per (check, file, message) occurrence count, so a
// regression that duplicates a baselined defect still fails.
type Baseline struct {
	Entries []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, not an error, so fresh checkouts and new tools work without
// ceremony.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write persists the baseline with stable ordering, so regenerating it
// produces minimal diffs.
func (b *Baseline) Write(path string) error {
	entries := append([]BaselineEntry{}, b.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		if a.Message != c.Message {
			return a.Message < c.Message
		}
		return a.Reason < c.Reason
	})
	out := Baseline{Entries: entries}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineFrom builds a baseline absorbing every unsuppressed finding of
// the run.
func BaselineFrom(r *Result) *Baseline {
	b := &Baseline{}
	for _, f := range r.Unsuppressed() {
		b.Entries = append(b.Entries, BaselineEntry{Check: f.Check, File: f.File, Message: f.Message})
	}
	return b
}

// ApplyBaseline marks findings absorbed by the baseline as Baselined.
// Each entry absorbs one finding occurrence; surplus findings with the
// same fingerprint stay gating.
func (r *Result) ApplyBaseline(b *Baseline) {
	if b == nil || len(b.Entries) == 0 {
		return
	}
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[e.key()]++
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		if f.Suppressed {
			continue
		}
		key := baselineKey{Check: f.Check, File: f.File, Message: f.Message}
		if budget[key] > 0 {
			budget[key]--
			f.Baselined = true
		}
	}
}

// StaleBaseline returns the entries of b that absorbed no finding in the
// run — debt that has since been fixed (or a fingerprint that rotted).
// Stale entries should be pruned: a dead entry is budget a regression
// could silently spend. Call after ApplyBaseline; with two entries
// sharing a fingerprint and one matching finding, one entry is stale.
func (r *Result) StaleBaseline(b *Baseline) []BaselineEntry {
	if b == nil || len(b.Entries) == 0 {
		return nil
	}
	consumed := make(map[baselineKey]int)
	for _, f := range r.Findings {
		if f.Baselined {
			consumed[baselineKey{Check: f.Check, File: f.File, Message: f.Message}]++
		}
	}
	var stale []BaselineEntry
	for _, e := range b.Entries {
		k := e.key()
		if consumed[k] > 0 {
			consumed[k]--
			continue
		}
		stale = append(stale, e)
	}
	return stale
}

// Prune returns a copy of b without the given entries (each removal
// consumes one occurrence, matched on the full entry including reason).
func (b *Baseline) Prune(remove []BaselineEntry) *Baseline {
	drop := make(map[BaselineEntry]int, len(remove))
	for _, e := range remove {
		drop[e]++
	}
	out := &Baseline{}
	for _, e := range b.Entries {
		if drop[e] > 0 {
			drop[e]--
			continue
		}
		out.Entries = append(out.Entries, e)
	}
	return out
}
