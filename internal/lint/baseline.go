package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
)

// BaselineEntry fingerprints one accepted finding. Line numbers are
// deliberately absent: a baseline should survive unrelated edits to the
// file, so entries match on (check, file, message). The message embeds
// the variable names involved, which keeps the fingerprint tight enough
// in practice.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// Baseline is the committed set of accepted findings gating CI: a run
// fails only on findings not absorbed here. Each entry is consumed by at
// most one finding per (check, file, message) occurrence count, so a
// regression that duplicates a baselined defect still fails.
type Baseline struct {
	Entries []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, not an error, so fresh checkouts and new tools work without
// ceremony.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write persists the baseline with stable ordering, so regenerating it
// produces minimal diffs.
func (b *Baseline) Write(path string) error {
	entries := append([]BaselineEntry{}, b.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	out := Baseline{Entries: entries}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineFrom builds a baseline absorbing every unsuppressed finding of
// the run.
func BaselineFrom(r *Result) *Baseline {
	b := &Baseline{}
	for _, f := range r.Unsuppressed() {
		b.Entries = append(b.Entries, BaselineEntry{Check: f.Check, File: f.File, Message: f.Message})
	}
	return b
}

// ApplyBaseline marks findings absorbed by the baseline as Baselined.
// Each entry absorbs one finding occurrence; surplus findings with the
// same fingerprint stay gating.
func (r *Result) ApplyBaseline(b *Baseline) {
	if b == nil || len(b.Entries) == 0 {
		return
	}
	budget := make(map[BaselineEntry]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[e]++
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		if f.Suppressed {
			continue
		}
		key := BaselineEntry{Check: f.Check, File: f.File, Message: f.Message}
		if budget[key] > 0 {
			budget[key]--
			f.Baselined = true
		}
	}
}
