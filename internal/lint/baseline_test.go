package lint

import (
	"path/filepath"
	"testing"
)

func bf(check, file, msg string) Finding {
	return Finding{Check: check, Severity: SeverityInfo, File: file, Line: 1, Message: msg}
}

// TestBaselineOccurrenceBudget: each entry absorbs exactly one finding
// occurrence; a duplicated defect overflows the budget and stays gating.
func TestBaselineOccurrenceBudget(t *testing.T) {
	res := &Result{Findings: []Finding{
		bf("hotpath-alloc", "a.go", "make on the hot path"),
		bf("hotpath-alloc", "a.go", "make on the hot path"),
	}}
	base := &Baseline{Entries: []BaselineEntry{
		{Check: "hotpath-alloc", File: "a.go", Message: "make on the hot path"},
	}}
	res.ApplyBaseline(base)
	if got := len(res.Gating(SeverityInfo)); got != 1 {
		t.Fatalf("gating findings = %d, want 1 (second occurrence overflows the budget)", got)
	}
	if stale := res.StaleBaseline(base); len(stale) != 0 {
		t.Fatalf("stale entries = %v, want none (the entry absorbed a finding)", stale)
	}

	// Two entries for the same fingerprint absorb two findings.
	res2 := &Result{Findings: []Finding{
		bf("hotpath-alloc", "a.go", "make on the hot path"),
		bf("hotpath-alloc", "a.go", "make on the hot path"),
	}}
	base2 := &Baseline{Entries: append(append([]BaselineEntry{}, base.Entries...), base.Entries...)}
	res2.ApplyBaseline(base2)
	if got := len(res2.Gating(SeverityInfo)); got != 0 {
		t.Fatalf("gating findings = %d, want 0 with a doubled budget", got)
	}
}

// TestBaselineStaleDetection: entries whose finding disappeared are
// reported, with per-entry granularity when fingerprints are shared.
func TestBaselineStaleDetection(t *testing.T) {
	res := &Result{Findings: []Finding{
		bf("hotpath-alloc", "a.go", "make on the hot path"),
	}}
	base := &Baseline{Entries: []BaselineEntry{
		{Check: "hotpath-alloc", File: "a.go", Message: "make on the hot path"},
		{Check: "hotpath-alloc", File: "a.go", Message: "make on the hot path", Reason: "second occurrence since fixed"},
		{Check: "float-eq", File: "gone.go", Message: "== on float64"},
	}}
	res.ApplyBaseline(base)
	stale := res.StaleBaseline(base)
	if len(stale) != 2 {
		t.Fatalf("stale entries = %d, want 2 (budget underflow + removed file)", len(stale))
	}

	pruned := base.Prune(stale)
	if len(pruned.Entries) != 1 {
		t.Fatalf("pruned baseline has %d entries, want 1", len(pruned.Entries))
	}
	if pruned.Entries[0].Check != "hotpath-alloc" || pruned.Entries[0].Reason != "" {
		t.Fatalf("prune removed the wrong entry: %+v", pruned.Entries[0])
	}
}

// TestBaselineReasonNotInFingerprint: rewording a justification must not
// change what the baseline absorbs.
func TestBaselineReasonNotInFingerprint(t *testing.T) {
	res := &Result{Findings: []Finding{
		bf("hotpath-alloc", "a.go", "make on the hot path"),
	}}
	base := &Baseline{Entries: []BaselineEntry{
		{Check: "hotpath-alloc", File: "a.go", Message: "make on the hot path", Reason: "the caller owns the row"},
	}}
	res.ApplyBaseline(base)
	if !res.Findings[0].Baselined {
		t.Fatal("reasoned entry failed to absorb the matching finding")
	}
}

// TestBaselineReasonRoundTrip: write, reload, and keep reasons intact
// with stable ordering.
func TestBaselineReasonRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	base := &Baseline{Entries: []BaselineEntry{
		{Check: "b-check", File: "b.go", Message: "m", Reason: "why"},
		{Check: "a-check", File: "a.go", Message: "m"},
	}}
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Entries[0].File != "a.go" || got.Entries[1].Reason != "why" {
		t.Fatalf("round trip mangled entries: %+v", got.Entries)
	}
}
