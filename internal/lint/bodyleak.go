package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerBodyLeak flags *http.Response bodies that are not closed on
// every path out of the function. A leaked body pins the underlying
// connection, so the service client's retry loops and the gateway's
// health prober slowly exhaust the transport's connection pool under the
// capacity experiments. The analysis is a forward may-be-open dataflow:
// acquiring a response opens it; Body.Close() (direct or deferred),
// returning the response, or handing it to another function releases it
// — except a handoff to a callee whose summary proves the argument is
// ignored, which cannot discharge the close obligation.
// Branch conditions refine the facts: on the `err != nil` edge of the
// acquiring call's error the response is nil, and likewise on explicit
// `resp == nil` tests, so the standard error-check idiom never trips it.
var AnalyzerBodyLeak = &Analyzer{
	Name:         "body-leak",
	Doc:          "flags http.Response bodies not closed on every path out of the function",
	Severity:     SeverityError,
	IncludeTests: true,
	NeedsProgram: true,
	Run:          runBodyLeak,
}

// openResp is the fact payload for one tracked response variable.
type openResp struct {
	pos  int        // acquisition site, for reporting
	errv *types.Var // the error variable paired at acquisition (nil if blank)
}

func runBodyLeak(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, fn := range p.functionBodies() {
		checkBodyLeak(p, fn)
	}
}

// respAcquisition recognizes `resp, err := <call>` where the call
// returns (*net/http.Response, error).
func respAcquisition(p *Pass, as *ast.AssignStmt) (respIdent, errIdent *ast.Ident, call *ast.CallExpr) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, nil, nil
	}
	c, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil, nil
	}
	tup, ok := p.TypeOf(c).(*types.Tuple)
	if !ok || tup.Len() != 2 {
		return nil, nil, nil
	}
	ptr, ok := tup.At(0).Type().(*types.Pointer)
	if !ok {
		return nil, nil, nil
	}
	if pkg, name := namedPath(ptr); pkg != "net/http" || name != "Response" {
		return nil, nil, nil
	}
	ri, _ := as.Lhs[0].(*ast.Ident)
	ei, _ := as.Lhs[1].(*ast.Ident)
	return ri, ei, c
}

func checkBodyLeak(p *Pass, fn fnBody) {
	g := p.BuildCFG(fn.Body)

	type fact = map[*types.Var]openResp

	// release deletes v when expr releases it: v.Body.Close(), v passed
	// whole to a call, v aliased by an assignment, or v returned.
	bodyCloseVar := func(call *ast.CallExpr) *types.Var {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return nil
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "Body" {
			return nil
		}
		return p.useVar(inner.X)
	}

	step := func(node ast.Node, in fact) fact {
		out := in
		copied := false
		mutate := func() {
			if !copied {
				copied = true
				out = cloneFacts(in)
			}
		}
		scan := func(n ast.Node, deep bool) {
			walk := inspectShallow
			if deep {
				walk = func(m ast.Node, f func(ast.Node) bool) { ast.Inspect(m, f) }
			}
			walk(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if v := bodyCloseVar(m); v != nil {
						if _, tracked := out[v]; tracked {
							mutate()
							delete(out, v)
						}
					}
					// The response handed off whole: the callee owns it —
					// unless its summary proves the argument is ignored, in
					// which case the callee cannot close the body either.
					for i, arg := range m.Args {
						if argIgnored(p, m, i) {
							continue
						}
						if v := p.useVar(arg); v != nil {
							if _, tracked := out[v]; tracked {
								mutate()
								delete(out, v)
							}
						}
					}
				case *ast.ReturnStmt:
					for _, res := range m.Results {
						if v := p.useVar(res); v != nil {
							if _, tracked := out[v]; tracked {
								mutate()
								delete(out, v)
							}
						}
					}
				}
				return true
			})
		}

		// A closure capturing the response takes over the obligation
		// (retry helpers close inside the closure they return).
		releaseCaptured(node, func(e ast.Expr) {
			if v := p.useVar(e); v != nil {
				if _, tracked := out[v]; tracked {
					mutate()
					delete(out, v)
				}
			}
		})

		switch n := node.(type) {
		case *ast.DeferStmt:
			// defer resp.Body.Close() (or a closure doing it) releases
			// on every exit after this point.
			scan(n, true)
		case *ast.AssignStmt:
			if ri, ei, call := respAcquisition(p, n); call != nil {
				if ri == nil || ri.Name == "_" {
					p.Reportf(call.Pos(), "response discarded without closing its Body; bind it and close on every path")
					return out
				}
				v := p.useVar(ri)
				if v == nil {
					return out
				}
				var ev *types.Var
				if ei != nil && ei.Name != "_" {
					ev = p.useVar(ei)
				}
				mutate()
				out[v] = openResp{pos: int(call.Pos()), errv: ev}
				return out
			}
			// An alias (x := resp) transfers ownership conservatively.
			for _, rhs := range n.Rhs {
				if v := p.useVar(rhs); v != nil {
					if _, tracked := out[v]; tracked {
						mutate()
						delete(out, v)
					}
				}
			}
			scan(n, false)
		default:
			scan(node, false)
		}
		return out
	}

	// nilRefine narrows facts along conditional edges using the
	// `err != nil` / `resp == nil` idioms.
	nilRefine := func(from, to *Block, f fact) fact {
		if from.Cond == nil || (to != from.TrueSucc && to != from.FalseSucc) {
			return f
		}
		bin, ok := from.Cond.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			return f
		}
		v, isNilCmp := nilComparand(p, bin)
		if v == nil || !isNilCmp {
			return f
		}
		// On which edge is v known to be nil?
		nilEdge := from.TrueSucc
		if bin.Op == token.NEQ {
			nilEdge = from.FalseSucc
		}
		var out fact
		remove := func(key *types.Var) {
			if _, tracked := f[key]; tracked {
				if out == nil {
					out = cloneFacts(f)
				}
				delete(out, key)
			}
		}
		for key, info := range f {
			if key == v && to == nilEdge {
				// resp itself known nil: nothing to close.
				remove(key)
			}
			if info.errv != nil && info.errv == v && to != nilEdge {
				// The paired error is non-nil, so resp is nil (the
				// http.Client contract) on this edge.
				remove(key)
			}
		}
		if out == nil {
			return f
		}
		return out
	}

	facts := Solve(g, FlowProblem[fact]{
		Boundary: func() fact { return fact{} },
		Init:     func() fact { return fact{} },
		Meet: func(a, b fact) fact {
			return unionFacts(a, b, func(x, y openResp) openResp {
				if y.pos < x.pos {
					return y
				}
				return x
			})
		},
		Equal: equalFacts[*types.Var, openResp],
		Transfer: func(b *Block, f fact) fact {
			for _, node := range b.Nodes {
				f = step(node, f)
			}
			return f
		},
		EdgeRefine: nilRefine,
	})

	for v, info := range facts[g.Exit].In {
		p.Reportf(token.Pos(info.pos),
			"%s.Body is not closed on every path out of %s; defer %s.Body.Close() after the error check",
			v.Name(), fn.Name, v.Name())
	}
}

// nilComparand matches `x <op> nil` / `nil <op> x` and returns x's
// variable.
func nilComparand(p *Pass, bin *ast.BinaryExpr) (*types.Var, bool) {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(bin.Y) {
		return p.useVar(bin.X), true
	}
	if isNil(bin.X) {
		return p.useVar(bin.Y), true
	}
	return nil, false
}
