package lint

import (
	"path/filepath"
	"strings"
)

// AnalyzerBoundsProvable proves (or refuses to prove) every slice and
// array index inside the hot set's data loops, using the SSA +
// value-range layer: an index is clean when some lower bound is a
// non-negative constant and some upper bound is at most len(base)-1 —
// the same obligation the compiler's bounds-check elimination
// discharges. Unproven affine indexes flag; indexes whose value comes
// from memory (tree node fields, lookup tables) are data, not
// induction, and are exempt — no loop restructuring would let the
// compiler elide those checks. internal/perfgate cross-validates the
// proofs against the compiler's isInBounds diagnostics and mints
// boundsProvable contracts from the same scan.
var AnalyzerBoundsProvable = &Analyzer{
	Name:       "bounds-provable",
	Doc:        "flags hot-loop slice indexes whose bounds the range analysis cannot prove",
	Severity:   SeverityError,
	RunProgram: runBoundsProvable,
}

func runBoundsProvable(pp *ProgramPass) {
	forEachKernelFunc(pp, "boundsprovable", func(pass *Pass, scan *kernelScan, entry string) {
		for _, ix := range scan.Indexes {
			if ix.Proven || ix.LoadDerived {
				continue
			}
			pp.Reportf(ix.Pos, "index %s into %s not provably within len (bounds check per data-loop iteration, reachable from %s); bound the loop by len or add a reslice hint", pass.ExprString(ix.Index), pass.ExprString(ix.Base), entry)
		}
	})
}

// forEachKernelFunc runs one kernel-shape scan per hot-set function and
// hands the classified result to report. Inside the golden corpus each
// analyzer sees only its own fixture directory, so the three checks'
// fixtures don't cross-contaminate each other's want files.
func forEachKernelFunc(pp *ProgramPass, corpusDir string, report func(pass *Pass, scan *kernelScan, entry string)) {
	hot := pp.Prog.HotSet(KernelCheckEntry)
	if len(hot.Entries) == 0 {
		return
	}
	for _, hf := range hot.Funcs() {
		n := hf.Node
		if n.Body() == nil {
			continue
		}
		if strings.Contains(filepath.ToSlash(n.Pkg.Dir), corpusMarker) && !pathHasAny(n.Pkg.Path, corpusDir) {
			continue
		}
		pass := pp.PassFor(n.Pkg)
		report(pass, scanKernelFunc(pass, n), hf.Entry.Name)
	}
}
