package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file builds the whole-module static call graph the interprocedural
// checks run on. Nodes are function declarations and function literals;
// edges are call sites. Static calls resolve through go/types; calls
// through interface values resolve by class-hierarchy analysis (CHA):
// every module type implementing the interface contributes its method as
// a possible callee. Function literals and method values passed as
// arguments become "callback" edges from the passing function — the
// conservative assumption that a registered callback runs in the
// registrant's context, which is what the lock-order and hot-path checks
// need. Strongly connected components (Tarjan) order the graph bottom-up
// so per-function summaries converge: callees are summarized before
// callers, and mutual recursion iterates inside its SCC to a fixpoint.

// CallKind classifies an edge for debugging and display.
type CallKind uint8

const (
	// CallStatic is a direct call to a known function.
	CallStatic CallKind = iota
	// CallInterface is a CHA-resolved call through an interface value.
	CallInterface
	// CallGo is a goroutine launch.
	CallGo
	// CallDefer is a deferred call.
	CallDefer
	// CallCallback is a function value passed as an argument (assumed
	// invoked by the receiver) or a literal escaping its function.
	CallCallback
)

func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallInterface:
		return "interface"
	case CallGo:
		return "go"
	case CallDefer:
		return "defer"
	default:
		return "callback"
	}
}

// CallSite is one edge of the call graph.
type CallSite struct {
	Caller *Node
	Callee *Node
	// Pos is the call expression (or the literal, for escape edges).
	Pos  token.Pos
	Kind CallKind
	// InLoop marks sites lexically inside any for/range statement of the
	// caller.
	InLoop bool
	// InDataLoop marks sites inside a data loop — a for with a
	// condition/post clause or a range over a non-channel value. Event
	// loops (bare `for {}`, `for range ch`) iterate per message, not per
	// element, and are excluded so server accept loops do not mark their
	// whole downstream call tree as per-iteration.
	InDataLoop bool
}

// Node is one function in the call graph: a declaration or a literal.
type Node struct {
	// Func is the type-checker object for declared functions; nil for
	// literals.
	Func *types.Func
	// Decl is the declaration syntax (nil for literals).
	Decl *ast.FuncDecl
	// Lit is the literal syntax (nil for declarations).
	Lit *ast.FuncLit
	// Pkg is the package the body lives in.
	Pkg *Package
	// Name is a short display name ("serving.(*Runtime).Predict",
	// "serving.(*Runtime).line$1" for the first literal inside line).
	Name string
	// full is the unique lookup key: types.Func.FullName for declarations,
	// the enclosing declaration's full name plus "$n" for literals.
	full string
	// Out and In are the call edges, in deterministic build order.
	Out []*CallSite
	In  []*CallSite
}

// Body returns the function's statement body (nil for body-less decls).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// FuncType returns the function's signature syntax.
func (n *Node) FuncType() *ast.FuncType {
	if n.Lit != nil {
		return n.Lit.Type
	}
	if n.Decl != nil {
		return n.Decl.Type
	}
	return nil
}

// Pos locates the function for diagnostics.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return token.NoPos
}

// Program is the whole-module view the interprocedural analyzers share:
// every non-test package, the call graph over them, and lazily computed
// per-function summaries. A Program is built once per driver run, before
// the parallel per-package phase, and is read-only afterwards.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the analyzed packages (non-test), in load order.
	Pkgs []*Package
	// Nodes lists every function, in deterministic build order.
	Nodes []*Node
	// SCCs are the strongly connected components in bottom-up order:
	// callees appear before callers, so summaries can be computed in one
	// forward sweep with a fixpoint inside each component.
	SCCs [][]*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	byFull map[string]*Node

	// implCache memoizes CHA resolution per (interface, method).
	implCache map[implKey][]*types.Func
	// allNamed are the module's named non-interface types, sorted, for
	// CHA enumeration.
	allNamed []*types.Named

	summaryOnce sync.Once
	summaries   map[*Node]*Summary
	// concOnce guards the lazily built goroutine topology graph
	// (concurrency.go) the shared-state checks run on.
	concOnce sync.Once
	conc     *Concurrency
	// computations counts summary computations (including fixpoint
	// re-runs), so tests can prove the cache makes repeat runs free.
	computations int
}

type implKey struct {
	iface *types.Interface
	name  string
}

// BuildProgram constructs the call graph over pkgs (test packages and
// file-less packages are skipped).
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{
		Fset:      fset,
		byFunc:    make(map[*types.Func]*Node),
		byLit:     make(map[*ast.FuncLit]*Node),
		byFull:    make(map[string]*Node),
		implCache: make(map[implKey][]*types.Func),
	}
	for _, pkg := range pkgs {
		if pkg.IsTest || pkg.Types == nil || len(pkg.Files) == 0 {
			continue
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	prog.collectNamed()
	// First pass: create a node per declaration so static calls resolve
	// regardless of declaration order across packages.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &Node{Func: obj, Decl: fd, Pkg: pkg, Name: shortFuncName(obj), full: obj.FullName()}
				prog.Nodes = append(prog.Nodes, n)
				prog.byFunc[obj] = n
				prog.byFull[n.full] = n
			}
		}
	}
	// Second pass: walk bodies, creating literal nodes and edges.
	decls := append([]*Node(nil), prog.Nodes...)
	for _, n := range decls {
		b := &graphBuilder{prog: prog, pkg: n.Pkg, litSeq: map[*Node]int{}}
		b.walkFn(n, n.Decl.Body)
	}
	// Literals that never gained a caller escaped (returned, stored in a
	// struct, sent on a channel, ...). Assume conservatively that they
	// run in their enclosing function's context.
	for _, n := range prog.Nodes {
		if n.Lit != nil && len(n.In) == 0 {
			if owner := prog.enclosingDecl(n); owner != nil {
				prog.addEdge(owner, n, n.Lit.Pos(), CallCallback, false, false)
			}
		}
	}
	prog.computeSCCs()
	return prog
}

// NodeOf resolves a type-checker function object to its node. Objects
// from a re-type-check of the same sources (the in-package test
// augmentation) resolve by full name.
func (p *Program) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	if n := p.byFunc[fn]; n != nil {
		return n
	}
	return p.byFull[fn.FullName()]
}

// NodeByName resolves a types.Func.FullName-style key.
func (p *Program) NodeByName(full string) *Node { return p.byFull[full] }

// enclosingDecl finds the declared function whose body lexically contains
// the literal node.
func (p *Program) enclosingDecl(lit *Node) *Node {
	var best *Node
	for _, n := range p.Nodes {
		if n.Decl == nil || n.Pkg != lit.Pkg {
			continue
		}
		if n.Decl.Pos() <= lit.Lit.Pos() && lit.Lit.End() <= n.Decl.End() {
			if best == nil || n.Decl.Pos() >= best.Decl.Pos() {
				best = n
			}
		}
	}
	return best
}

func (p *Program) addEdge(from, to *Node, pos token.Pos, kind CallKind, inLoop, inDataLoop bool) {
	if from == nil || to == nil {
		return
	}
	s := &CallSite{Caller: from, Callee: to, Pos: pos, Kind: kind, InLoop: inLoop, InDataLoop: inDataLoop}
	from.Out = append(from.Out, s)
	to.In = append(to.In, s)
}

// collectNamed gathers every named, non-interface module type for CHA.
func (p *Program) collectNamed() {
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			p.allNamed = append(p.allNamed, named)
		}
	}
}

// implementers resolves an interface method call by CHA: every module
// type implementing iface contributes its method named name.
func (p *Program) implementers(iface *types.Interface, name string) []*types.Func {
	key := implKey{iface, name}
	if fns, ok := p.implCache[key]; ok {
		return fns
	}
	var fns []*types.Func
	for _, named := range p.allNamed {
		var recv types.Type = named
		if !types.Implements(named, iface) {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			recv = types.NewPointer(named)
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			fns = append(fns, m)
		}
	}
	p.implCache[key] = fns
	return fns
}

// graphBuilder walks one declared function's body (and, recursively, its
// literals) recording edges.
type graphBuilder struct {
	prog *Program
	pkg  *Package
	// litSeq numbers literals per enclosing node for display names.
	litSeq map[*Node]int
	// localFns maps local variables single-assigned a function literal to
	// that literal's node; nil marks a poisoned (multiply assigned) var.
	localFns map[*types.Var]*Node
}

// walkFn records edges for the body owned by cur. Nested literals are
// separate nodes walked recursively.
func (b *graphBuilder) walkFn(cur *Node, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	if cur.Decl != nil {
		b.localFns = b.collectLocalFns(cur, body)
	}
	var stack []ast.Node
	ast.Inspect(body, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := m.(*ast.FuncLit); ok {
			ln := b.nodeForLit(cur, lit)
			b.walkFn(ln, lit.Body)
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			b.recordCall(cur, call, stack)
		}
		stack = append(stack, m)
		return true
	})
}

// collectLocalFns pre-scans for `f := func(...) {...}` bindings so calls
// through f (even ones textually before a reassignment) resolve. A
// variable assigned more than once is poisoned.
func (b *graphBuilder) collectLocalFns(cur *Node, body *ast.BlockStmt) map[*types.Var]*Node {
	out := make(map[*types.Var]*Node)
	assignments := make(map[*types.Var]int)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := b.pkg.Info.Defs[id]
		if obj == nil {
			obj = b.pkg.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		assignments[v]++
		if lit, ok := rhs.(*ast.FuncLit); ok {
			out[v] = b.nodeForLit(cur, lit)
		}
	}
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					record(m.Lhs[i], m.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(m.Names) == len(m.Values) {
				for i := range m.Names {
					record(m.Names[i], m.Values[i])
				}
			}
		}
		return true
	})
	for v, n := range assignments {
		if n > 1 {
			delete(out, v)
		}
	}
	return out
}

// nodeForLit returns (creating on demand) the node for a literal.
func (b *graphBuilder) nodeForLit(encl *Node, lit *ast.FuncLit) *Node {
	if n := b.prog.byLit[lit]; n != nil {
		return n
	}
	b.litSeq[encl]++
	n := &Node{
		Lit:  lit,
		Pkg:  b.pkg,
		Name: fmt.Sprintf("%s$%d", encl.Name, b.litSeq[encl]),
		full: fmt.Sprintf("%s$%d", encl.full, b.litSeq[encl]),
	}
	b.prog.Nodes = append(b.prog.Nodes, n)
	b.prog.byLit[lit] = n
	b.prog.byFull[n.full] = n
	return n
}

// recordCall resolves one call expression to zero or more edges, and
// records callback edges for function values among the arguments.
func (b *graphBuilder) recordCall(cur *Node, call *ast.CallExpr, stack []ast.Node) {
	kind := CallStatic
	if len(stack) > 0 {
		switch stack[len(stack)-1].(type) {
		case *ast.GoStmt:
			kind = CallGo
		case *ast.DeferStmt:
			kind = CallDefer
		}
	}
	inLoop, inDataLoop := loopContext(b.pkg, stack)

	for _, callee := range b.resolveCallees(cur, call) {
		k := kind
		if callee.viaInterface && kind == CallStatic {
			k = CallInterface
		}
		b.prog.addEdge(cur, callee.node, call.Pos(), k, inLoop, inDataLoop)
	}
	for _, arg := range call.Args {
		for _, t := range b.resolveFuncValue(cur, arg) {
			b.prog.addEdge(cur, t, arg.Pos(), CallCallback, inLoop, inDataLoop)
		}
	}
}

type calleeTarget struct {
	node         *Node
	viaInterface bool
}

// resolveCallees maps a call expression to its possible module callees.
func (b *graphBuilder) resolveCallees(cur *Node, call *ast.CallExpr) []calleeTarget {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations: f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	info := b.pkg.Info
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return []calleeTarget{{node: b.nodeForLit(cur, fun)}}
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			if n := b.prog.NodeOf(obj); n != nil {
				return []calleeTarget{{node: n}}
			}
		case *types.Var:
			if n := b.localFns[obj]; n != nil {
				return []calleeTarget{{node: n}}
			}
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			return b.resolveMethod(s)
		}
		// Package-qualified call: pkg.F(...).
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if n := b.prog.NodeOf(obj); n != nil {
				return []calleeTarget{{node: n}}
			}
		}
	}
	return nil
}

// resolveMethod maps a method-value selection to concrete callees: the
// method itself for concrete receivers, CHA candidates for interfaces.
func (b *graphBuilder) resolveMethod(s *types.Selection) []calleeTarget {
	recv := s.Recv()
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		var out []calleeTarget
		for _, m := range b.prog.implementers(iface, s.Obj().Name()) {
			if n := b.prog.NodeOf(m); n != nil {
				out = append(out, calleeTarget{node: n, viaInterface: true})
			}
		}
		return out
	}
	if m, ok := s.Obj().(*types.Func); ok {
		if n := b.prog.NodeOf(m); n != nil {
			return []calleeTarget{{node: n}}
		}
	}
	return nil
}

// resolveFuncValue maps an argument expression used as a function value
// (literal, function name, method value) to callback targets.
func (b *graphBuilder) resolveFuncValue(cur *Node, arg ast.Expr) []*Node {
	arg = ast.Unparen(arg)
	info := b.pkg.Info
	switch arg := arg.(type) {
	case *ast.FuncLit:
		return []*Node{b.nodeForLit(cur, arg)}
	case *ast.Ident:
		switch obj := info.Uses[arg].(type) {
		case *types.Func:
			if n := b.prog.NodeOf(obj); n != nil {
				return []*Node{n}
			}
		case *types.Var:
			if n := b.localFns[obj]; n != nil {
				return []*Node{n}
			}
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[arg]; ok && s.Kind() == types.MethodVal {
			var out []*Node
			for _, t := range b.resolveMethod(s) {
				out = append(out, t.node)
			}
			return out
		}
	}
	return nil
}

// loopContext reports whether the innermost statement is inside any loop
// and inside a data loop (see CallSite.InDataLoop).
func loopContext(pkg *Package, stack []ast.Node) (inLoop, inDataLoop bool) {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.ForStmt:
			inLoop = true
			if n.Cond != nil || n.Init != nil || n.Post != nil {
				inDataLoop = true
			}
		case *ast.RangeStmt:
			inLoop = true
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); !isChan {
					inDataLoop = true
				}
			}
		}
	}
	return inLoop, inDataLoop
}

// computeSCCs runs Tarjan's algorithm; components are emitted callees
// first, which is exactly the bottom-up summary order.
func (p *Program) computeSCCs() {
	index := make(map[*Node]int, len(p.Nodes))
	low := make(map[*Node]int, len(p.Nodes))
	onStack := make(map[*Node]bool, len(p.Nodes))
	var stack []*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Out {
			m := e.Callee
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			p.SCCs = append(p.SCCs, scc)
		}
	}
	for _, n := range p.Nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
}

// WriteDOT dumps the call graph in Graphviz DOT form (the CLI's -graph
// debug mode). Interface edges are dashed, callback edges dotted, go and
// defer edges labeled.
func (p *Program) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("\trankdir=LR;\n\tnode [shape=box, fontsize=10];\n")
	id := make(map[*Node]string, len(p.Nodes))
	for i, n := range p.Nodes {
		id[n] = fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "\t%s [label=%q];\n", id[n], n.Name)
	}
	for _, n := range p.Nodes {
		for _, e := range n.Out {
			attrs := ""
			switch e.Kind {
			case CallInterface:
				attrs = " [style=dashed]"
			case CallCallback:
				attrs = " [style=dotted]"
			case CallGo:
				attrs = ` [label="go"]`
			case CallDefer:
				attrs = ` [label="defer"]`
			}
			fmt.Fprintf(&b, "\t%s -> %s%s;\n", id[n], id[e.Callee], attrs)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// shortFuncName renders a compact display name: last package path
// segment, receiver without package qualifiers, method name.
func shortFuncName(fn *types.Func) string {
	pkgSeg := ""
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		pkgSeg = path[strings.LastIndex(path, "/")+1:]
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		return fmt.Sprintf("%s.(%s).%s", pkgSeg, recv, fn.Name())
	}
	if pkgSeg == "" {
		return fn.Name()
	}
	return pkgSeg + "." + fn.Name()
}

// shortKeyName compacts a fully qualified lock key ("repro/internal/
// serving.Runtime.mu") to its display form ("serving.Runtime.mu").
func shortKeyName(key string) string {
	return key[strings.LastIndex(key, "/")+1:]
}

// sortNodesByName orders nodes deterministically for reporting.
func sortNodesByName(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].full < ns[j].full })
}
