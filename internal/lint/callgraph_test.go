package lint

import (
	"strings"
	"testing"
	"time"
)

// loadGraphProgram builds the call graph over the dedicated fixture
// package (testdata/graph, outside the golden corpus).
func loadGraphProgram(t testing.TB) *Program {
	t.Helper()
	loader := &Loader{Dir: ".", Tests: false}
	pkgs, err := loader.Load([]string{"./testdata/graph/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return BuildProgram(loader.Fset(), pkgs)
}

// nodeByName finds a node by its display name.
func nodeByName(t testing.TB, prog *Program, name string) *Node {
	t.Helper()
	for _, n := range prog.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not in graph (have %d nodes)", name, len(prog.Nodes))
	return nil
}

// edgesTo returns caller's out-edges landing on the named callee.
func edgesTo(caller *Node, callee string) []*CallSite {
	var out []*CallSite
	for _, e := range caller.Out {
		if e.Callee.Name == callee {
			out = append(out, e)
		}
	}
	return out
}

// TestCallGraphInterfaceDispatch: a call through an interface value must
// fan out to every module implementation (CHA), marked as interface
// edges and carrying the data-loop context of the call site.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadGraphProgram(t)
	total := nodeByName(t, prog, "graph.total")
	for _, impl := range []string{"graph.(circle).area", "graph.(square).area"} {
		es := edgesTo(total, impl)
		if len(es) != 1 {
			t.Fatalf("edges total -> %s = %d, want 1", impl, len(es))
		}
		if es[0].Kind != CallInterface {
			t.Errorf("total -> %s kind = %s, want interface", impl, es[0].Kind)
		}
		if !es[0].InDataLoop {
			t.Errorf("total -> %s not marked in a data loop", impl)
		}
	}
}

// TestCallGraphMethodValue: a bound method passed as an argument becomes
// a callback edge from the passing function.
func TestCallGraphMethodValue(t *testing.T) {
	prog := loadGraphProgram(t)
	use := nodeByName(t, prog, "graph.useMethodValue")
	if es := edgesTo(use, "graph.each"); len(es) != 1 || es[0].Kind != CallStatic {
		t.Errorf("useMethodValue -> each: %v", es)
	}
	es := edgesTo(use, "graph.(circle).scale")
	if len(es) != 1 {
		t.Fatalf("edges useMethodValue -> scale = %d, want 1", len(es))
	}
	if es[0].Kind != CallCallback {
		t.Errorf("method-value edge kind = %s, want callback", es[0].Kind)
	}
}

// TestCallGraphClosures: a literal bound to a local and called yields a
// static edge; an escaping literal yields a callback edge from its
// enclosing function.
func TestCallGraphClosures(t *testing.T) {
	prog := loadGraphProgram(t)
	runs := nodeByName(t, prog, "graph.runsClosure")
	if es := edgesTo(runs, "graph.runsClosure$1"); len(es) != 1 || es[0].Kind != CallStatic {
		t.Errorf("runsClosure -> its literal: %v", es)
	}
	makes := nodeByName(t, prog, "graph.makesClosure")
	if es := edgesTo(makes, "graph.makesClosure$1"); len(es) != 1 || es[0].Kind != CallCallback {
		t.Errorf("makesClosure -> escaping literal: %v", es)
	}
}

// TestCallGraphSCCMutualRecursion: even/odd form one strongly connected
// component, and the bottom-up summary sweep converges over it.
func TestCallGraphSCCMutualRecursion(t *testing.T) {
	prog := loadGraphProgram(t)
	even := nodeByName(t, prog, "graph.even")
	odd := nodeByName(t, prog, "graph.odd")
	var home []*Node
	for _, scc := range prog.SCCs {
		for _, n := range scc {
			if n == even {
				home = scc
			}
		}
	}
	if len(home) != 2 {
		t.Fatalf("even's SCC has %d members, want 2 (even+odd)", len(home))
	}
	if home[0] != odd && home[1] != odd {
		t.Fatal("odd not in even's SCC")
	}
	prog.EnsureSummaries()
	if prog.summaries[even] == nil || prog.summaries[odd] == nil {
		t.Fatal("mutual-recursion SCC has no converged summaries")
	}
}

// TestSummaryLockAcquire: the may-acquire effect propagates from the
// direct acquirer into its callers with a via chain.
func TestSummaryLockAcquire(t *testing.T) {
	prog := loadGraphProgram(t)
	prog.EnsureSummaries()
	sum := prog.summaries[nodeByName(t, prog, "graph.pokesTwice")]
	if sum == nil {
		t.Fatal("no summary for pokesTwice")
	}
	found := false
	for key, acq := range sum.MayAcquire {
		if strings.HasSuffix(key, "graph.box.mu") {
			found = true
			if !strings.Contains(acq.Via, "poke") {
				t.Errorf("via chain %q does not name the acquiring callee", acq.Via)
			}
		}
	}
	if !found {
		t.Fatalf("pokesTwice summary lacks box.mu in MayAcquire: %v", sum.MayAcquire)
	}
}

// TestSummaryParamConsumed: proof of ignorance is direct for an empty
// body, transitive through a pure forwarder, and absent for a function
// that stores its argument.
func TestSummaryParamConsumed(t *testing.T) {
	prog := loadGraphProgram(t)
	prog.EnsureSummaries()
	for name, want := range map[string]bool{
		"graph.ignores":  false,
		"graph.forwards": false,
		"graph.consumes": true,
	} {
		sum := prog.summaries[nodeByName(t, prog, name)]
		if sum == nil || len(sum.ParamConsumed) != 1 {
			t.Fatalf("%s: bad summary %+v", name, sum)
		}
		if sum.ParamConsumed[0] != want {
			t.Errorf("%s.ParamConsumed[0] = %v, want %v", name, sum.ParamConsumed[0], want)
		}
	}
}

// TestSummaryCacheReuse: the second EnsureSummaries call must be a pure
// cache hit — zero recomputation, and nowhere near the cold cost.
func TestSummaryCacheReuse(t *testing.T) {
	prog := loadGraphProgram(t)
	coldStart := time.Now()
	prog.EnsureSummaries()
	cold := time.Since(coldStart)
	n := prog.computations
	if n == 0 {
		t.Fatal("cold run computed no summaries")
	}
	warmStart := time.Now()
	prog.EnsureSummaries()
	warm := time.Since(warmStart)
	if prog.computations != n {
		t.Errorf("warm run recomputed summaries: %d -> %d", n, prog.computations)
	}
	if warm > cold*2+time.Millisecond {
		t.Errorf("warm EnsureSummaries took %v, cold %v; cache not effective", warm, cold)
	}
}

// BenchmarkInterprocedural measures the whole interprocedural layer over
// the full module: graph construction plus the bottom-up summary sweep.
func BenchmarkInterprocedural(b *testing.B) {
	root, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	loader := &Loader{Dir: root, Tests: true}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := BuildProgram(loader.Fset(), pkgs)
		prog.EnsureSummaries()
	}
}
