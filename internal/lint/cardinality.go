package lint

import (
	"go/ast"
)

// AnalyzerTelemetryCardinality flags telemetry label values that are not
// compile-time constants. Each distinct label-value tuple materializes a
// new series in the registry forever (internal/telemetry never expires
// series), so labeling a metric with a request path, user input, or an
// error string turns a bounded /metrics page into an unbounded memory
// leak and breaks every dashboard aggregation — the blow-up the
// gateway's fixed route-prefix labels were designed to prevent. Label
// values drawn from a provably bounded set (a config-time route table, a
// fixed sensor registry) are suppressed at the call site with a reason.
var AnalyzerTelemetryCardinality = &Analyzer{
	Name: "telemetry-cardinality",
	Doc:  "flags non-constant label values passed to telemetry CounterVec/GaugeVec/HistogramVec.With",
	Run:  runTelemetryCardinality,
}

// telemetryPkgSuffix matches the repo's telemetry package path without
// hard-coding the module name.
const telemetryPkgSuffix = "internal/telemetry"

func runTelemetryCardinality(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := p.MethodCall(call)
			if !ok || name != "With" {
				return true
			}
			pkgPath, typeName := namedPath(recv)
			if !pathHasAny(pkgPath, telemetryPkgSuffix) {
				return true
			}
			switch typeName {
			case "CounterVec", "GaugeVec", "HistogramVec":
			default:
				return true
			}
			for _, arg := range call.Args {
				if p.ConstValue(arg) == nil {
					p.Reportf(arg.Pos(), "non-constant label value for %s.With may explode metric cardinality; use a value from a bounded set (and suppress with the bound as reason) or drop the label", typeName)
				}
			}
			return true
		})
	}
}
