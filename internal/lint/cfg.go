package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs from syntax. The
// graphs are intraprocedural: a node is one statement (function-literal
// bodies are opaque — each literal gets its own graph), edges follow
// branches, loops, switches, selects, labeled break/continue, and goto.
// Two distinguished blocks collect exits: Exit for normal returns and
// falling off the end, Panic for calls that terminate the goroutine
// (panic, os.Exit, log.Fatal*, runtime.Goexit, testing's Fatal/Skip
// family). Deferred statements stay in their block in execution order —
// a forward analysis that treats `defer release()` as releasing at the
// defer site computes exit states exactly, because the release is
// guaranteed on every path that executed the defer.

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, build order).
	Index int
	// Kind names the construct that created the block, for debugging and
	// tests: "entry", "exit", "panic", "if.then", "for.head", ...
	Kind string
	// Nodes are the statements (and the range/switch headers) executed in
	// this block, in order. Function literals inside a node are opaque.
	Nodes []ast.Node
	// Succs and Preds are the flow edges.
	Succs []*Block
	Preds []*Block
	// Cond is set when the block ends in a two-way conditional branch
	// (if, for-with-condition): TrueSucc is taken when Cond holds,
	// FalseSucc otherwise. Analyzers use this to refine facts along
	// edges (e.g. `err != nil` implies the paired response is nil).
	Cond      ast.Expr
	TrueSucc  *Block
	FalseSucc *Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	// Entry is the first executed block.
	Entry *Block
	// Exit collects normal terminations: every return statement and the
	// fall-off-the-end path.
	Exit *Block
	// Panic collects abnormal terminations (panic, os.Exit, log.Fatal,
	// t.Fatal, ...). Deferred calls still run on panic, but analyzers
	// that gate on resource release usually only examine Exit.
	Panic *Block
	// Defers lists every defer statement in source order (function
	// literals excluded).
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	p   *Pass
	g   *CFG
	cur *Block
	// breakTargets / continueTargets are stacks of enclosing loop or
	// switch targets; the label is "" for unlabeled constructs.
	breakTargets    []branchTarget
	continueTargets []branchTarget
	// labelBlocks maps label names to their statement's block for goto.
	labelBlocks map[string]*Block
	// pendingGotos are forward gotos resolved after the walk.
	pendingGotos []pendingGoto
	// curLabel is the label attached to the statement being lowered, so
	// `loop: for {...}` registers label-aware break/continue targets.
	curLabel string
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	name string
	from *Block
}

// BuildCFG constructs the control-flow graph of body. The pass supplies
// import resolution for recognizing terminating calls; it may have nil
// type info (the builder then degrades to syntactic matching).
func (p *Pass) BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		p:           p,
		g:           &CFG{},
		labelBlocks: make(map[string]*Block),
	}
	entry := b.newBlock("entry")
	b.g.Entry = entry
	b.g.Exit = b.newBlock("exit")
	b.g.Panic = b.newBlock("panic")
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end is a normal exit.
	b.edge(b.cur, b.g.Exit)
	for _, pg := range b.pendingGotos {
		if target, ok := b.labelBlocks[pg.name]; ok {
			b.edge(pg.from, target)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from -> to unless from already terminated into an exit.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock begins a new block and makes it current, linking from the
// previous current block when it has not terminated.
func (b *cfgBuilder) startBlock(kind string, linkFrom *Block) *Block {
	blk := b.newBlock(kind)
	if linkFrom != nil {
		b.edge(linkFrom, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock("unreachable")
	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Straight-line statement (assign, expr, decl, send, incdec, go).
		b.cur.Nodes = append(b.cur.Nodes, s)
		if b.terminates(s) {
			b.edge(b.cur, b.g.Panic)
			b.cur = b.newBlock("unreachable")
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	head.Nodes = append(head.Nodes, s.Cond)
	head.Cond = s.Cond

	then := b.startBlock("if.then", head)
	head.TrueSucc = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		els := b.startBlock("if.else", head)
		head.FalseSucc = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock("if.join")
	b.edge(thenEnd, join)
	if s.Else != nil {
		b.edge(elseEnd, join)
	} else {
		b.edge(head, join)
		head.FalseSucc = join
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startBlock("for.head", b.cur)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
	}
	after := b.newBlock("for.after")
	post := b.newBlock("for.post")
	label := b.pendingLabel(s)
	b.breakTargets = append(b.breakTargets, branchTarget{label, after})
	b.continueTargets = append(b.continueTargets, branchTarget{label, post})

	body := b.startBlock("for.body", nil)
	b.edge(head, body)
	if s.Cond != nil {
		head.TrueSucc = body
		head.FalseSucc = after
		b.edge(head, after)
	}
	b.stmtList(s.Body.List)
	b.edge(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(post, head)
	}

	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.startBlock("range.head", b.cur)
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock("range.after")
	label := b.pendingLabel(s)
	b.breakTargets = append(b.breakTargets, branchTarget{label, after})
	b.continueTargets = append(b.continueTargets, branchTarget{label, head})

	body := b.startBlock("range.body", nil)
	b.edge(head, body)
	b.edge(head, after)
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)

	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	if s.Tag != nil {
		head.Nodes = append(head.Nodes, s.Tag)
	}
	after := b.newBlock("switch.after")
	b.breakTargets = append(b.breakTargets, branchTarget{b.pendingLabel(s), after})
	b.caseClauses(head, after, s.Body.List)
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	head.Nodes = append(head.Nodes, s.Assign)
	after := b.newBlock("typeswitch.after")
	b.breakTargets = append(b.breakTargets, branchTarget{b.pendingLabel(s), after})
	b.caseClauses(head, after, s.Body.List)
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = after
}

// caseClauses wires switch/type-switch clause bodies: head fans out to
// every clause (and to after when there is no default); fallthrough
// chains to the next clause's body.
func (b *cfgBuilder) caseClauses(head, after *Block, clauses []ast.Stmt) {
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock("case.body")
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok || blocks[i] == nil {
			continue
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		// A fallthrough terminator flows into the next clause's body.
		fellThrough := false
		for _, st := range cc.Body {
			if br, isBr := st.(*ast.BranchStmt); isBr && br.Tok == token.FALLTHROUGH {
				if i+1 < len(blocks) && blocks[i+1] != nil {
					b.edge(b.cur, blocks[i+1])
					fellThrough = true
				}
				continue
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.edge(b.cur, after)
		} else {
			b.cur = b.newBlock("unreachable")
		}
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock("select.after")
	b.breakTargets = append(b.breakTargets, branchTarget{b.pendingLabel(s), after})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock("select.body")
		b.edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	// The labeled statement begins a new block so gotos can target it.
	target := b.startBlock("label."+s.Label.Name, b.cur)
	b.labelBlocks[s.Label.Name] = target
	b.curLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.curLabel = ""
}

// pendingLabel consumes the label attached to the enclosing LabeledStmt
// (set just before lowering the labeled statement itself).
func (b *cfgBuilder) pendingLabel(ast.Stmt) string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breakTargets, label); t != nil {
			b.edge(b.cur, t)
		}
	case token.CONTINUE:
		if t := findTarget(b.continueTargets, label); t != nil {
			b.edge(b.cur, t)
		}
	case token.GOTO:
		if t, ok := b.labelBlocks[label]; ok {
			b.edge(b.cur, t)
		} else {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{label, b.cur})
		}
	case token.FALLTHROUGH:
		// Handled inside caseClauses; a stray fallthrough is dead code.
	}
	b.cur = b.newBlock("unreachable")
}

// findTarget picks the innermost target matching label ("" matches the
// innermost of any label).
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// terminates reports whether the statement unconditionally ends the
// goroutine: panic, os.Exit, log.Fatal*/log.Panic*, runtime.Goexit, and
// the testing Fatal/Skip family.
func (b *cfgBuilder) terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
		// Guard against a local function shadowing the builtin: the
		// builtin's object carries no package.
		if b.p.Info != nil {
			if obj, found := b.p.Info.Uses[id]; found {
				return obj.Pkg() == nil
			}
		}
		return true
	}
	if path, name, ok := b.p.PkgFunc(call); ok {
		switch {
		case path == "os" && name == "Exit":
			return true
		case path == "runtime" && name == "Goexit":
			return true
		case path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
			name == "Panic" || name == "Panicf" || name == "Panicln"):
			return true
		}
	}
	if recv, name, ok := b.p.MethodCall(call); ok {
		switch name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			if pkgPath, _ := namedPath(recv); pkgPath == "testing" {
				return true
			}
		}
	}
	return false
}
