package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFG parses a function body and builds its CFG without type
// information (the builder degrades to syntactic matching, which these
// structural tests exercise deliberately).
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	p := &Pass{Fset: fset, Files: []*ast.File{f}}
	return p.BuildCFG(fn.Body)
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(t, "x := 1\n_ = x")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("entry does not reach exit")
	}
	if reaches(g.Entry, g.Panic) {
		t.Fatal("straight-line code must not reach the panic block")
	}
}

func TestCFGIfElse(t *testing.T) {
	g := buildCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	head := g.Entry
	if head.Cond == nil || head.TrueSucc == nil || head.FalseSucc == nil {
		t.Fatalf("if head missing cond/branch successors: %+v", head)
	}
	if head.TrueSucc == head.FalseSucc {
		t.Fatal("then and else arms collapsed into one block")
	}
	if !reaches(head.TrueSucc, g.Exit) || !reaches(head.FalseSucc, g.Exit) {
		t.Fatal("both arms must reach exit")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	head := g.Entry
	if head.FalseSucc == nil {
		t.Fatal("no-else if must set FalseSucc to the join block")
	}
	// The false edge skips the then block entirely.
	for _, n := range head.FalseSucc.Nodes {
		if _, ok := n.(*ast.AssignStmt); ok && head.FalseSucc.Kind == "if.then" {
			t.Fatal("false edge leads into the then arm")
		}
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := buildCFG(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x")
	// Two distinct paths into Exit: the early return and the fall-off.
	if len(g.Exit.Preds) < 2 {
		t.Fatalf("exit preds = %d, want >= 2 (early return + fall-off)", len(g.Exit.Preds))
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildCFG(t, "s := 0\nfor i := 0; i < 10; i++ {\n\ts += i\n}\n_ = s")
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	if head.Cond == nil || head.TrueSucc == nil || head.FalseSucc == nil {
		t.Fatal("loop head must be a conditional branch")
	}
	if !reaches(head.TrueSucc, head) {
		t.Fatal("loop body does not flow back to the head")
	}
	if !reaches(head.FalseSucc, g.Exit) {
		t.Fatal("loop exit edge does not reach function exit")
	}
}

func TestCFGPanicBlock(t *testing.T) {
	g := buildCFG(t, "x := 1\nif x > 0 {\n\tpanic(\"boom\")\n}\n_ = x")
	if !reaches(g.Entry, g.Panic) {
		t.Fatal("panic call does not reach the panic block")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("non-panicking path must still reach exit")
	}
	// The panic path must not fall through to exit.
	var panicPred *Block
	for _, b := range g.Panic.Preds {
		panicPred = b
	}
	if panicPred == nil {
		t.Fatal("panic block has no predecessors")
	}
	for _, s := range panicPred.Succs {
		if s == g.Exit {
			t.Fatal("panicking block also flows to normal exit")
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(t, "x := 1\nswitch x {\ncase 1:\n\tx = 10\n\tfallthrough\ncase 2:\n\tx = 20\ndefault:\n\tx = 30\n}\n_ = x")
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "case.body" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("case blocks = %d, want 3", len(cases))
	}
	// Fallthrough: case 1's body flows into case 2's body.
	found := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge from case 1 to case 2 missing")
	}
	// With a default clause, the head must not bypass to after.
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.after" {
			t.Fatal("switch with default must not edge head -> after")
		}
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildCFG(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\n_ = 1")
	// The labeled break must reach exit without passing the outer loop
	// head again: find the break's block and check its successor is the
	// outer after block.
	var breakBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK {
				breakBlock = b
			}
		}
	}
	if breakBlock == nil {
		t.Fatal("break statement not placed in any block")
	}
	foundAfter := false
	for _, s := range breakBlock.Succs {
		if s.Kind == "for.after" {
			foundAfter = true
		}
	}
	if !foundAfter {
		t.Fatalf("labeled break does not edge to a for.after block (succs: %v)", kinds(breakBlock.Succs))
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("function with labeled break does not reach exit")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(t, "ch := make(chan int)\nselect {\ncase <-ch:\n\t_ = 1\ndefault:\n\t_ = 2\n}\n_ = 3")
	bodies := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.body" {
			bodies++
			if !reaches(b, g.Exit) {
				t.Fatal("select arm does not reach exit")
			}
		}
	}
	if bodies != 2 {
		t.Fatalf("select bodies = %d, want 2", bodies)
	}
}

func TestCFGDefersCollected(t *testing.T) {
	g := buildCFG(t, "defer println(1)\nif true {\n\tdefer println(2)\n}")
	if len(g.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(g.Defers))
	}
}

func kinds(bs []*Block) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Kind
	}
	return out
}
