package lint

import "go/ast"

// AnalyzerChanDeadlock flags unbuffered-channel operations that can never
// complete given the module's spawn graph, plus busy-spin select loops.
// Three shapes:
//
//  1. A blocking send on an unbuffered channel that no function in the
//     module ever receives from (or a blocking receive nobody sends on or
//     closes): the goroutine parks forever — a leak at best, a deadlock
//     when anything joins on it.
//  2. All sends and receives of an unbuffered channel living in the same
//     function with no goroutine between them: a sequential rendezvous
//     with itself blocks on the first send.
//  3. `for { select { default: } }` (a select whose only case is
//     default, inside a loop): a 100%-CPU spin that starves the very
//     goroutines it is waiting for.
//
// Channels are tracked only while their identity is static — a visible
// make, every make unbuffered, and no escape (argument pass, return,
// store, rebind). Anything escaping is assumed correctly paired.
var AnalyzerChanDeadlock = &Analyzer{
	Name:         "chan-deadlock",
	Doc:          "flags unbuffered channel ops with no counterpart in the spawn graph and select-default spin loops",
	Severity:     SeverityWarn,
	IncludeTests: true,
	RunProgram:   runChanDeadlock,
}

func runChanDeadlock(pp *ProgramPass) {
	conc := pp.Prog.Concurrency()
	for _, n := range pp.Prog.Nodes {
		if body := n.Body(); body != nil {
			reportSpinLoops(pp, body)
		}
	}
	for _, key := range conc.ChanKeys() {
		ci := conc.Chans[key]
		var makes, sends, recvs, closes []*ChanEndpoint
		escaped, allUnbuffered := false, true
		for _, ep := range ci.Endpoints {
			switch ep.Op {
			case ChanMake:
				makes = append(makes, ep)
				if !ep.Unbuffered {
					allUnbuffered = false
				}
			case ChanSend:
				sends = append(sends, ep)
			case ChanRecv:
				recvs = append(recvs, ep)
			case ChanClose:
				closes = append(closes, ep)
			case ChanEscape:
				escaped = true
			}
		}
		if escaped || len(makes) == 0 || !allUnbuffered {
			continue
		}
		switch {
		case len(sends) > 0 && len(recvs) == 0:
			for _, s := range sends {
				if s.NonBlocking {
					continue
				}
				pp.Reportf(s.Pos, "send on unbuffered channel %s has no receive anywhere in the module; this send blocks its goroutine forever", ci.Display)
			}
		case len(recvs) > 0 && len(sends) == 0 && len(closes) == 0:
			for _, r := range recvs {
				if r.NonBlocking {
					continue
				}
				pp.Reportf(r.Pos, "receive on unbuffered channel %s has no send or close anywhere in the module; this receive blocks its goroutine forever", ci.Display)
			}
		case len(sends) > 0 && len(recvs) > 0:
			if rendezvous := sameNodeRendezvous(sends, recvs); rendezvous != nil {
				pp.Reportf(rendezvous.Pos, "unbuffered channel %s is sent and received only within %s; a sequential rendezvous with itself blocks on the first send — spawn the counterpart or buffer the channel", ci.Display, rendezvous.Node.Name)
			}
		}
	}
}

// sameNodeRendezvous reports the first blocking send when every send and
// receive of the channel lives in one function (so nothing can ever be on
// the other side), or nil.
func sameNodeRendezvous(sends, recvs []*ChanEndpoint) *ChanEndpoint {
	var node *Node
	var first *ChanEndpoint
	for _, ep := range append(append([]*ChanEndpoint(nil), sends...), recvs...) {
		if ep.NonBlocking {
			return nil
		}
		if node == nil {
			node = ep.Node
		} else if ep.Node != node {
			return nil
		}
	}
	for _, s := range sends {
		if first == nil || s.Pos < first.Pos {
			first = s
		}
	}
	return first
}

// reportSpinLoops flags `for { select { default: } }`: a loop whose body
// is exactly one select whose only clause is default.
func reportSpinLoops(pp *ProgramPass, body *ast.BlockStmt) {
	inspectShallow(body, func(m ast.Node) bool {
		loop, ok := m.(*ast.ForStmt)
		if !ok || len(loop.Body.List) != 1 {
			return true
		}
		sel, ok := loop.Body.List[0].(*ast.SelectStmt)
		if !ok || len(sel.Body.List) != 1 {
			return true
		}
		cc, ok := sel.Body.List[0].(*ast.CommClause)
		if !ok || cc.Comm != nil {
			return true
		}
		pp.Reportf(loop.For, "select with only a default case inside a loop busy-spins at 100%% CPU; add a blocking case, a ticker, or remove the select")
		return true
	})
}
