package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the goroutine topology graph the concurrency checks
// (atomic-mix, unguarded-field, chan-deadlock, wg-misuse) run on. It is a
// module-wide view layered on the call graph: which functions may execute
// on a spawned goroutine (go-reachability over call edges), every access
// to a shared struct field classified as plain read/write, atomic, or
// address escape — each tagged with the set of module-global locks held
// at the access site per the same canonicalization the lock-order check
// uses — and every endpoint of a statically identifiable channel (make,
// send, receive, close) so pairing can be checked across the spawn graph.
//
// Lock context is computed per function by the held-locks forward
// dataflow from lockorder.go (deferred unlocks do not release
// mid-function; callee summaries contribute HeldAtExit/ReleasedAtExit),
// then replayed in deterministic block order to tag each access. Function
// literals invoked synchronously (direct call, callback registration)
// inherit the held set at their creation site; go-spawned literals start
// with no locks, like the goroutines they become.

// AccessMode classifies one access to a shared struct field.
type AccessMode uint8

const (
	// AccessRead is a plain (non-atomic) load of the field.
	AccessRead AccessMode = iota
	// AccessWrite is a plain store, compound assignment, or element write
	// through the field (map/slice element writes race like field writes).
	AccessWrite
	// AccessAtomic is an access through sync/atomic functions taking the
	// field's address (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.f)).
	AccessAtomic
	// AccessEscape is the field's address taken in any non-atomic context:
	// the analysis loses track of subsequent accesses, so escaped fields
	// are excluded from the race checks.
	AccessEscape
)

// String renders the mode for diagnostics.
func (m AccessMode) String() string {
	switch m {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "written"
	case AccessAtomic:
		return "accessed atomically"
	default:
		return "address-taken"
	}
}

// FieldAccess is one access to a shared struct field.
type FieldAccess struct {
	// Node is the function the access occurs in.
	Node *Node
	// Pos locates the access.
	Pos token.Pos
	// Mode classifies the access.
	Mode AccessMode
	// Held is the set of module-global lock keys held at the access, per
	// the held-locks dataflow (may-held: a lock acquired on some path to
	// the access counts).
	Held map[string]bool
	// Confined marks accesses through a value allocated in the accessing
	// function (`m := &member{...}; m.x = 1`): constructor-confined state
	// is not shared yet and is excluded from the race checks.
	Confined bool
}

// HoldsLock reports whether the given lock key is held at the access.
func (a *FieldAccess) HoldsLock(key string) bool { return a.Held[key] }

// FieldInfo aggregates every observed access to one struct field, keyed
// "pkgpath.Type.field" like the lock canonicalization.
type FieldInfo struct {
	// Key is the canonical field identity.
	Key string
	// Accesses lists every access in deterministic (node build, block
	// replay) order.
	Accesses []*FieldAccess
}

// ChanOp classifies a channel endpoint.
type ChanOp uint8

const (
	// ChanMake is a `make(chan T[, n])` creating the channel.
	ChanMake ChanOp = iota
	// ChanSend is a send statement (including select send clauses).
	ChanSend
	// ChanRecv is a receive: unary <-, range over the channel, or a select
	// receive clause.
	ChanRecv
	// ChanClose is a close(ch) call.
	ChanClose
	// ChanEscape is any other use — passed as an argument, returned,
	// stored, or rebound — after which pairing cannot be tracked.
	ChanEscape
)

// ChanEndpoint is one channel operation site.
type ChanEndpoint struct {
	// Node is the function the operation occurs in.
	Node *Node
	// Pos locates the operation.
	Pos token.Pos
	// Op classifies the operation.
	Op ChanOp
	// NonBlocking marks sends/receives in a select that has a default
	// clause: they cannot block forever.
	NonBlocking bool
	// Unbuffered is set on make endpoints whose capacity is statically
	// zero (omitted or the constant 0).
	Unbuffered bool
}

// ChanInfo aggregates every endpoint of one statically identified
// channel: a struct field, a package-level variable, or a function-local
// variable (which closures share by capture).
type ChanInfo struct {
	// Key is the canonical channel identity.
	Key string
	// Display is the short name used in diagnostics ("cluster.Cluster.stop",
	// "jobs").
	Display string
	// Endpoints lists every operation in deterministic order.
	Endpoints []*ChanEndpoint
}

// Concurrency is the goroutine topology view shared by the concurrency
// checks. Build it once per Program via Program.Concurrency.
type Concurrency struct {
	prog *Program
	// SpawnSites are the `go` edges of the call graph, in build order.
	SpawnSites []*CallSite
	// Fields maps canonical field keys to their accesses.
	Fields map[string]*FieldInfo
	// Chans maps canonical channel keys to their endpoints.
	Chans map[string]*ChanInfo

	goReachable map[*Node]bool
	// onceConfined marks function literals passed to sync.Once.Do: the
	// Do barrier publishes their writes, so accesses inside are
	// initialization, not racing shared state.
	onceConfined map[*Node]bool
}

// GoReachable reports whether n may execute on a spawned goroutine:
// it is the callee of a go statement or transitively reachable from one.
func (c *Concurrency) GoReachable(n *Node) bool { return c.goReachable[n] }

// FieldKeys returns the field keys in sorted order, for deterministic
// iteration.
func (c *Concurrency) FieldKeys() []string {
	keys := make([]string, 0, len(c.Fields))
	for k := range c.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ChanKeys returns the channel keys in sorted order.
func (c *Concurrency) ChanKeys() []string {
	keys := make([]string, 0, len(c.Chans))
	for k := range c.Chans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Concurrency builds (once) and returns the goroutine topology graph.
func (p *Program) Concurrency() *Concurrency {
	p.concOnce.Do(func() {
		p.EnsureSummaries()
		c := &Concurrency{
			prog:         p,
			Fields:       make(map[string]*FieldInfo),
			Chans:        make(map[string]*ChanInfo),
			goReachable:  make(map[*Node]bool),
			onceConfined: make(map[*Node]bool),
		}
		var frontier []*Node
		for _, n := range p.Nodes {
			for _, e := range n.Out {
				if e.Kind != CallGo {
					continue
				}
				c.SpawnSites = append(c.SpawnSites, e)
				if !c.goReachable[e.Callee] {
					c.goReachable[e.Callee] = true
					frontier = append(frontier, e.Callee)
				}
			}
		}
		for len(frontier) > 0 {
			n := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, e := range n.Out {
				if !c.goReachable[e.Callee] {
					c.goReachable[e.Callee] = true
					frontier = append(frontier, e.Callee)
				}
			}
		}
		module := make(map[string]bool, len(p.Pkgs))
		for _, pkg := range p.Pkgs {
			module[pkg.Path] = true
		}
		// Walk every body in node order: declarations precede their
		// literals, so a literal's inherited lock context is recorded
		// before the literal itself is scanned.
		entryHeld := make(map[*Node]map[string]bool)
		for _, n := range p.Nodes {
			if n.Body() == nil {
				continue
			}
			w := &concWalker{
				prog:      p,
				conc:      c,
				n:         n,
				module:    module,
				entryHeld: entryHeld,
			}
			w.run()
		}
		p.conc = c
	})
	return p.conc
}

// concWalker collects field accesses and channel endpoints for one
// function, replaying the held-locks dataflow to tag lock context.
type concWalker struct {
	prog   *Program
	conc   *Concurrency
	n      *Node
	module map[string]bool
	// entryHeld accumulates, per literal node, the lock context at its
	// synchronous creation sites (shared across walkers).
	entryHeld map[*Node]map[string]bool

	pass *Pass
	// sites maps call positions to resolved call-graph edges, for callee
	// lock-summary effects and literal context inheritance.
	sites map[token.Pos][]*CallSite
	// nonBlocking marks select communication statements whose select has
	// a default clause.
	nonBlocking map[ast.Node]bool
	// confined are local variables allocated (and only assigned) in this
	// function: accesses through them are constructor-confined.
	confined map[*types.Var]bool

	// held is the current lock context, mutated during a scan.
	held map[string]bool
	// emit gates recording: false during the dataflow solve, true during
	// the deterministic replay.
	emit bool
	// goDepth is positive while scanning the call expression of a go
	// statement: argument evaluation happens in the current goroutine but
	// the callee runs concurrently, without our locks.
	goDepth int
	// curNonBlocking is set while scanning a select comm statement whose
	// select has a default.
	curNonBlocking bool
}

func (w *concWalker) run() {
	pkg := w.n.Pkg
	w.pass = &Pass{Fset: w.prog.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, Path: pkg.Path, Prog: w.prog}
	w.sites = make(map[token.Pos][]*CallSite, len(w.n.Out))
	for _, e := range w.n.Out {
		w.sites[e.Pos] = append(w.sites[e.Pos], e)
	}
	w.collectNonBlocking()
	w.collectConfined()

	body := w.n.Body()
	g := w.pass.BuildCFG(body)
	boundary := w.entryHeld[w.n]
	if boundary == nil {
		boundary = map[string]bool{}
	}
	facts := Solve(g, FlowProblem[map[string]bool]{
		Boundary: func() map[string]bool { return cloneFacts(boundary) },
		Init:     func() map[string]bool { return map[string]bool{} },
		Meet: func(a, b map[string]bool) map[string]bool {
			return unionFacts(a, b, nil)
		},
		Equal: equalFacts[string, bool],
		Transfer: func(b *Block, f map[string]bool) map[string]bool {
			w.held = cloneFacts(f)
			w.emit = false
			for _, node := range b.Nodes {
				w.scanNode(node)
			}
			return w.held
		},
	})
	// Deterministic replay: revisit blocks in build order with solved
	// entry facts, recording accesses and endpoints this time.
	for _, b := range g.Blocks {
		w.held = cloneFacts(facts[b].In)
		w.emit = true
		for _, node := range b.Nodes {
			w.scanNode(node)
		}
	}
}

// collectNonBlocking marks the comm statements of selects that have a
// default clause: their sends and receives cannot block forever.
func (w *concWalker) collectNonBlocking() {
	w.nonBlocking = make(map[ast.Node]bool)
	inspectShallow(w.n.Body(), func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm != nil {
				w.nonBlocking[cc.Comm] = true
			}
		}
		return true
	})
}

// collectConfined finds local variables whose only assignment allocates a
// fresh value (`v := &T{...}`, `v := T{...}`, `v := new(T)`): field
// accesses through them are constructor-confined until publication, which
// the checks treat as not-yet-shared.
func (w *concWalker) collectConfined() {
	w.confined = make(map[*types.Var]bool)
	assignments := make(map[*types.Var]int)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v := lookupVar(w.n.Pkg, id)
		if v == nil {
			return
		}
		assignments[v]++
		if rhs != nil && allocExpr(rhs) {
			w.confined[v] = true
		}
	}
	inspectShallow(w.n.Body(), func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					record(m.Lhs[i], m.Rhs[i])
				}
			} else {
				for _, lhs := range m.Lhs {
					record(lhs, nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range m.Names {
				var rhs ast.Expr
				if i < len(m.Values) {
					rhs = m.Values[i]
				}
				record(name, rhs)
			}
		}
		return true
	})
	for v, n := range assignments {
		if n > 1 {
			delete(w.confined, v)
		}
	}
}

// allocExpr reports whether e allocates a fresh value.
func allocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// scanNode processes one CFG node (a statement, a condition expression,
// or a range header) in AST order, updating the lock context and — when
// emitting — recording accesses and endpoints.
func (w *concWalker) scanNode(node ast.Node) {
	switch s := node.(type) {
	case *ast.DeferStmt:
		// Deferred calls run at function exit; consistent with the
		// lock-order dataflow they neither release locks mid-function nor
		// contribute accesses at this point. A deferred close(ch) is the
		// idiomatic guaranteed-close, though: record it for pairing.
		if id, ok := s.Call.Fun.(*ast.Ident); ok && id.Name == "close" && len(s.Call.Args) == 1 {
			if obj, found := w.n.Pkg.Info.Uses[id]; !found || obj.Pkg() == nil {
				w.chanEndpoint(s.Call.Args[0], ChanClose, s.Call.Pos())
				w.valueUse(s.Call.Args[0])
			}
		}
	case *ast.GoStmt:
		w.goDepth++
		w.call(s.Call)
		w.goDepth--
	case *ast.AssignStmt:
		w.curNonBlocking = w.nonBlocking[s]
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				w.assignPair(s.Lhs[i], s.Rhs[i], s.Tok)
			}
		} else {
			for _, rhs := range s.Rhs {
				w.expr(rhs)
			}
			for _, lhs := range s.Lhs {
				w.lhs(lhs)
				w.chanRebind(lhs)
			}
		}
		w.curNonBlocking = false
	case *ast.IncDecStmt:
		w.lhs(s.X)
	case *ast.SendStmt:
		w.curNonBlocking = w.nonBlocking[s]
		w.chanEndpoint(s.Chan, ChanSend, s.Arrow)
		w.valueUse(s.Chan)
		w.curNonBlocking = false
		w.expr(s.Value)
	case *ast.ExprStmt:
		w.curNonBlocking = w.nonBlocking[s]
		w.expr(s.X)
		w.curNonBlocking = false
	case *ast.RangeStmt:
		// Only the header: the body statements live in their own blocks.
		if t := w.pass.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.chanEndpoint(s.X, ChanRecv, s.X.Pos())
				w.valueUse(s.X)
				return
			}
		}
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, isVS := spec.(*ast.ValueSpec)
				if !isVS {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assignPair(name, vs.Values[i], token.DEFINE)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.expr(res)
		}
	case ast.Expr:
		w.expr(s)
	case ast.Stmt:
		// Remaining straight-line statements (branch, empty, labeled
		// residue) carry no scannable expressions.
	}
}

// assignPair handles one lhs = rhs pair: channel makes and rebinds are
// intercepted before the generic scans.
func (w *concWalker) assignPair(lhs, rhs ast.Expr, tok token.Token) {
	if mk, unbuf, isMake := chanMakeExpr(w.pass, rhs); isMake {
		if key, disp, ok := w.chanKey(lhs); ok {
			w.recordChan(key, disp, &ChanEndpoint{Node: w.n, Pos: mk.Pos(), Op: ChanMake, Unbuffered: unbuf})
		}
		w.lhs(lhs)
		return
	}
	w.expr(rhs)
	if tok != token.DEFINE {
		w.chanRebind(lhs)
	}
	w.lhs(lhs)
}

// chanRebind poisons a channel identity that is reassigned from an
// arbitrary value: pairing can no longer be tracked.
func (w *concWalker) chanRebind(lhs ast.Expr) {
	if key, disp, ok := w.chanKey(lhs); ok {
		w.recordChan(key, disp, &ChanEndpoint{Node: w.n, Pos: lhs.Pos(), Op: ChanEscape})
	}
}

// chanMakeExpr recognizes make(chan T) / make(chan T, n), reporting
// whether the capacity is statically zero.
func chanMakeExpr(pass *Pass, e ast.Expr) (*ast.CallExpr, bool, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return nil, false, false
	}
	if t := pass.TypeOf(call); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return nil, false, false
		}
	} else if _, isChanType := call.Args[0].(*ast.ChanType); !isChanType {
		return nil, false, false
	}
	unbuffered := len(call.Args) == 1
	if len(call.Args) == 2 {
		if cv := pass.ConstValue(call.Args[1]); cv != nil && cv.String() == "0" {
			unbuffered = true
		}
	}
	return call, unbuffered, true
}

// lhs classifies an assignment target: field selectors are writes,
// element writes count against the container field, everything else
// degrades to a generic scan of the base.
func (w *concWalker) lhs(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		w.fieldAccess(e, AccessWrite)
		w.expr(e.X)
	case *ast.IndexExpr:
		// Element write through a field (m.conns[id] = x): the container
		// races like the field itself.
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			w.fieldAccess(sel, AccessWrite)
			w.expr(sel.X)
		} else {
			w.expr(e.X)
		}
		w.expr(e.Index)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.Ident:
		// Local/global scalar writes carry no field identity.
	default:
		w.expr(e)
	}
}

// expr scans a general expression position: plain reads, channel escapes,
// calls, and address-taking.
func (w *concWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.chanEndpoint(e.X, ChanRecv, e.Pos())
			w.valueUse(e.X)
			return
		}
		if e.Op == token.AND {
			w.addrOf(e.X, false)
			return
		}
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.fieldAccess(e, AccessRead)
		if key, disp, ok := w.chanKey(e); ok {
			w.recordChan(key, disp, &ChanEndpoint{Node: w.n, Pos: e.Pos(), Op: ChanEscape})
		}
		w.expr(e.X)
	case *ast.Ident:
		if key, disp, ok := w.chanKey(e); ok {
			w.recordChan(key, disp, &ChanEndpoint{Node: w.n, Pos: e.Pos(), Op: ChanEscape})
		}
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		// A separate node: record the lock context it inherits when
		// created synchronously (go-spawned literals start lock-free).
		if w.goDepth == 0 {
			if ln := w.prog.byLit[e]; ln != nil {
				w.entryHeld[ln] = unionFacts(w.entryHeld[ln], w.held, nil)
			}
		}
	case *ast.CompositeLit:
		w.compositeLit(e)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	}
}

// compositeLit scans a composite literal: keyed field initialization is
// construction, not a shared access, but `stop: make(chan struct{})`
// still records the channel make against the field identity.
func (w *concWalker) compositeLit(lit *ast.CompositeLit) {
	pkgPath, typeName := "", ""
	if t := w.pass.TypeOf(lit); t != nil {
		pkgPath, typeName = namedPath(t)
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			w.expr(elt)
			continue
		}
		if id, isIdent := kv.Key.(*ast.Ident); isIdent && pkgPath != "" && w.module[pkgPath] {
			if mk, unbuf, isMake := chanMakeExpr(w.pass, kv.Value); isMake {
				key := pkgPath + "." + typeName + "." + id.Name
				w.recordChan(key, shortKeyName(key), &ChanEndpoint{Node: w.n, Pos: mk.Pos(), Op: ChanMake, Unbuffered: unbuf})
				continue
			}
		}
		w.expr(kv.Value)
	}
}

// call handles lock operations, channel closes, atomic operations, and
// generic calls (argument scans plus callee lock-summary effects).
func (w *concWalker) call(call *ast.CallExpr) {
	// Mutex operations update the lock context.
	if op, isLock := globalLockOp(w.n.Pkg, call); isLock {
		if w.goDepth > 0 {
			return
		}
		if op.acquire {
			w.held[op.key] = true
		} else {
			delete(w.held, op.key)
		}
		return
	}
	// close(ch) pairs like a final send.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if obj, found := w.n.Pkg.Info.Uses[id]; !found || obj.Pkg() == nil {
			w.chanEndpoint(call.Args[0], ChanClose, call.Pos())
			w.valueUse(call.Args[0])
			return
		}
	}
	// sync.Once.Do(func(){...}): the literal runs under the Once barrier,
	// so its accesses are initialization-confined.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Do" {
		if s, found := w.n.Pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
			if obj := s.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				for _, arg := range call.Args {
					if lit, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
						if ln := w.prog.byLit[lit]; ln != nil {
							w.conc.onceConfined[ln] = true
						}
					}
				}
			}
		}
	}
	// sync/atomic package functions: &s.f arguments are atomic accesses.
	if path, _, ok := w.pass.PkgFunc(call); ok && path == "sync/atomic" {
		for _, arg := range call.Args {
			if u, isAddr := ast.Unparen(arg).(*ast.UnaryExpr); isAddr && u.Op == token.AND {
				w.addrOf(u.X, true)
			} else {
				w.expr(arg)
			}
		}
		return
	}
	// Method calls on sync/atomic-typed values (x.n.Add(1)): the receiver
	// chain is scanned but the atomic-typed field itself is not a plain
	// access.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	} else {
		w.expr(call.Fun)
	}
	for _, arg := range call.Args {
		w.expr(arg)
	}
	if w.goDepth > 0 {
		return
	}
	// Callee lock effects from summaries (go edges excluded: the callee
	// runs concurrently, not under our locks).
	for _, e := range w.sites[call.Pos()] {
		if e.Kind == CallGo {
			continue
		}
		sum := w.prog.summaries[e.Callee]
		if sum == nil {
			continue
		}
		for key := range sum.ReleasedAtExit {
			delete(w.held, key)
		}
		for key := range sum.HeldAtExit {
			w.held[key] = true
		}
	}
}

// addrOf classifies &x.f: an atomic access when the address feeds a
// sync/atomic function, an escape otherwise.
func (w *concWalker) addrOf(x ast.Expr, atomic bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		mode := AccessEscape
		if atomic {
			mode = AccessAtomic
		}
		w.fieldAccess(x, mode)
		w.expr(x.X)
	case *ast.Ident:
		if key, disp, ok := w.chanKey(x); ok {
			w.recordChan(key, disp, &ChanEndpoint{Node: w.n, Pos: x.Pos(), Op: ChanEscape})
		}
	default:
		w.expr(x)
	}
}

// valueUse records the field read implied by using a field-held channel
// (send, receive, close) without treating it as a channel escape.
func (w *concWalker) valueUse(e ast.Expr) {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		w.fieldAccess(sel, AccessRead)
		w.expr(sel.X)
	}
}

// fieldAccess records one classified access to a module struct field.
// Fields of sync and sync/atomic types are excluded: their methods are
// the synchronization itself, tracked separately.
func (w *concWalker) fieldAccess(sel *ast.SelectorExpr, mode AccessMode) {
	if !w.emit {
		return
	}
	s, found := w.n.Pkg.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return
	}
	ownerPath, ownerType := namedPath(s.Recv())
	if ownerPath == "" || !w.module[ownerPath] {
		return
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	if tp, _ := namedPath(fieldVar.Type()); tp == "sync" || tp == "sync/atomic" {
		return
	}
	key := ownerPath + "." + ownerType + "." + fieldVar.Name()
	fi := w.conc.Fields[key]
	if fi == nil {
		fi = &FieldInfo{Key: key}
		w.conc.Fields[key] = fi
	}
	fi.Accesses = append(fi.Accesses, &FieldAccess{
		Node:     w.n,
		Pos:      sel.Sel.Pos(),
		Mode:     mode,
		Held:     cloneFacts(w.held),
		Confined: w.confinedBase(sel) || w.conc.onceConfined[w.n],
	})
}

// confinedBase reports whether the access chain is rooted at a
// function-local allocation.
func (w *concWalker) confinedBase(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v := lookupVar(w.n.Pkg, x)
			return v != nil && w.confined[v]
		default:
			return false
		}
	}
}

// chanEndpoint records a send/receive/close on a trackable channel.
func (w *concWalker) chanEndpoint(e ast.Expr, op ChanOp, pos token.Pos) {
	key, disp, ok := w.chanKey(e)
	if !ok {
		return
	}
	w.recordChan(key, disp, &ChanEndpoint{Node: w.n, Pos: pos, Op: op, NonBlocking: w.curNonBlocking})
}

func (w *concWalker) recordChan(key, display string, ep *ChanEndpoint) {
	if !w.emit {
		return
	}
	ci := w.conc.Chans[key]
	if ci == nil {
		ci = &ChanInfo{Key: key, Display: display}
		w.conc.Chans[key] = ci
	}
	ci.Endpoints = append(ci.Endpoints, ep)
}

// chanKey canonicalizes a channel expression to a module-wide identity:
// "pkgpath.Type.field" for struct fields, "pkgpath.var" for package-level
// variables, and a position-qualified local name for function-local
// channels (closures capture the same *types.Var, so literal nodes agree
// on the key).
func (w *concWalker) chanKey(e ast.Expr) (key, display string, ok bool) {
	e = ast.Unparen(e)
	t := w.pass.TypeOf(e)
	if t == nil {
		// The LHS ident of a := has no Types entry; its type lives on the
		// defined object.
		if id, isIdent := e.(*ast.Ident); isIdent {
			if v := lookupVar(w.n.Pkg, id); v != nil {
				t = v.Type()
			}
		}
	}
	if t == nil {
		return "", "", false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return "", "", false
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, found := w.n.Pkg.Info.Selections[e]; found && s.Kind() == types.FieldVal {
			ownerPath, ownerType := namedPath(s.Recv())
			if ownerPath == "" || !w.module[ownerPath] {
				return "", "", false
			}
			k := ownerPath + "." + ownerType + "." + e.Sel.Name
			return k, shortKeyName(k), true
		}
		if id, isIdent := e.X.(*ast.Ident); isIdent {
			if pn, isPkg := w.n.Pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if !w.module[pn.Imported().Path()] {
					return "", "", false
				}
				k := pn.Imported().Path() + "." + e.Sel.Name
				return k, shortKeyName(k), true
			}
		}
	case *ast.Ident:
		v := lookupVar(w.n.Pkg, e)
		if v == nil {
			return "", "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			k := v.Pkg().Path() + "." + v.Name()
			return k, shortKeyName(k), true
		}
		pos := w.prog.Fset.Position(v.Pos())
		k := fmt.Sprintf("%s.%s@%s:%d", w.n.Pkg.Path, v.Name(), baseName(pos.Filename), pos.Line)
		return k, v.Name(), true
	}
	return "", "", false
}

// baseName is filepath.Base without importing path/filepath here.
func baseName(p string) string {
	if i := strings.LastIndexAny(p, `/\`); i >= 0 {
		return p[i+1:]
	}
	return p
}
