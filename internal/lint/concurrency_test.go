package lint

import (
	"strings"
	"testing"
)

// loadConcProgram builds the topology graph over the dedicated fixture
// package (testdata/conc, outside the golden corpus).
func loadConcProgram(t testing.TB) (*Program, *Concurrency) {
	t.Helper()
	loader := &Loader{Dir: ".", Tests: false}
	pkgs, err := loader.Load([]string{"./testdata/conc/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	prog := BuildProgram(loader.Fset(), pkgs)
	return prog, prog.Concurrency()
}

// fieldBySuffix finds the tracked field whose key ends in suffix.
func fieldBySuffix(t testing.TB, conc *Concurrency, suffix string) *FieldInfo {
	t.Helper()
	for _, key := range conc.FieldKeys() {
		if strings.HasSuffix(key, suffix) {
			return conc.Fields[key]
		}
	}
	t.Fatalf("no tracked field matches %q (have %v)", suffix, conc.FieldKeys())
	return nil
}

// chanBySuffix finds the tracked channel whose key ends in suffix (local
// keys are position-qualified, so match on the prefix before the @).
func chanBySuffix(t testing.TB, conc *Concurrency, suffix string) *ChanInfo {
	t.Helper()
	for _, key := range conc.ChanKeys() {
		base, _, _ := strings.Cut(key, "@")
		if strings.HasSuffix(base, suffix) {
			return conc.Chans[key]
		}
	}
	t.Fatalf("no tracked channel matches %q (have %v)", suffix, conc.ChanKeys())
	return nil
}

// TestConcurrencySpawnSites: every go statement must appear as a spawn
// site — the named-function spawn and both literals.
func TestConcurrencySpawnSites(t *testing.T) {
	_, conc := loadConcProgram(t)
	got := make(map[string]bool)
	for _, site := range conc.SpawnSites {
		got[site.Callee.Name] = true
	}
	for _, want := range []string{"conc.worker", "conc.launch$1", "conc.pipe$1"} {
		if !got[want] {
			t.Errorf("spawn sites missing callee %s (have %v)", want, got)
		}
	}
	if len(conc.SpawnSites) != 3 {
		t.Errorf("spawn sites = %d, want 3 (%v)", len(conc.SpawnSites), got)
	}
}

// TestConcurrencyGoReachable: functions called (transitively) from a
// spawned goroutine are go-reachable; the spawning caller is not.
func TestConcurrencyGoReachable(t *testing.T) {
	prog, conc := loadConcProgram(t)
	wantReachable := map[string]bool{
		"conc.worker":    true,
		"conc.(*S).set":  true,
		"conc.(*S).peek": true,
		"conc.(*S).bump": true,
		"conc.launch":    false,
		"conc.pipe":      false,
		"conc.New":       false,
	}
	for name, want := range wantReachable {
		n := nodeByName(t, prog, name)
		if got := conc.GoReachable(n); got != want {
			t.Errorf("GoReachable(%s) = %v, want %v", name, got, want)
		}
	}
}

// TestConcurrencyMutexOwnership: the guarded field's write under mu
// carries the lock in its held set, the unguarded read does not, and the
// constructor write is confined.
func TestConcurrencyMutexOwnership(t *testing.T) {
	_, conc := loadConcProgram(t)
	fi := fieldBySuffix(t, conc, "conc.S.guarded")
	if len(fi.Accesses) != 3 {
		t.Fatalf("guarded accesses = %d, want 3", len(fi.Accesses))
	}
	for _, a := range fi.Accesses {
		switch {
		case strings.HasSuffix(a.Node.Name, ".set"):
			if a.Mode != AccessWrite {
				t.Errorf("set access mode = %s, want written", a.Mode)
			}
			held := false
			for k := range a.Held {
				if strings.HasSuffix(k, "conc.S.mu") {
					held = true
				}
			}
			if !held {
				t.Errorf("write in set does not hold mu (held %v)", a.Held)
			}
		case strings.HasSuffix(a.Node.Name, ".peek"):
			if a.Mode != AccessRead || len(a.Held) != 0 {
				t.Errorf("peek access = %s holding %v, want bare read", a.Mode, a.Held)
			}
		case a.Node.Name == "conc.New":
			if !a.Confined {
				t.Error("constructor write not marked confined")
			}
		default:
			t.Errorf("unexpected access in %s", a.Node.Name)
		}
	}
}

// TestConcurrencyMixedAccess: the count field records the atomic bump
// and the plain read as distinct modes — the atomic-mix evidence.
func TestConcurrencyMixedAccess(t *testing.T) {
	_, conc := loadConcProgram(t)
	fi := fieldBySuffix(t, conc, "conc.S.count")
	var atomics, plains int
	for _, a := range fi.Accesses {
		switch a.Mode {
		case AccessAtomic:
			atomics++
		case AccessRead:
			if !a.Confined {
				plains++
			}
		}
	}
	if atomics != 1 || plains != 1 {
		t.Errorf("count accesses: %d atomic, %d plain reads; want 1 and 1", atomics, plains)
	}
}

// TestConcurrencyChanPairing: the local pipe channel records its make
// (unbuffered), the send from the spawned literal, and the receive in
// the creating function; the stop field channel records its
// composite-literal make and the literal's receive.
func TestConcurrencyChanPairing(t *testing.T) {
	_, conc := loadConcProgram(t)
	ci := chanBySuffix(t, conc, ".ch")
	ops := make(map[ChanOp]string)
	for _, ep := range ci.Endpoints {
		ops[ep.Op] = ep.Node.Name
		if ep.Op == ChanMake && !ep.Unbuffered {
			t.Error("pipe make not marked unbuffered")
		}
	}
	if len(ci.Endpoints) != 3 {
		t.Fatalf("pipe endpoints = %d, want 3 (%v)", len(ci.Endpoints), ops)
	}
	if ops[ChanMake] != "conc.pipe" || ops[ChanSend] != "conc.pipe$1" || ops[ChanRecv] != "conc.pipe" {
		t.Errorf("pipe endpoints misattributed: %v", ops)
	}

	stop := fieldChan(t, conc, "conc.S.stop")
	sops := make(map[ChanOp]bool)
	for _, ep := range stop.Endpoints {
		sops[ep.Op] = true
	}
	if !sops[ChanMake] || !sops[ChanRecv] {
		t.Errorf("stop endpoints missing make or recv: %v", sops)
	}
}

// fieldChan finds a channel tracked under a struct-field key.
func fieldChan(t testing.TB, conc *Concurrency, suffix string) *ChanInfo {
	t.Helper()
	for _, key := range conc.ChanKeys() {
		if strings.HasSuffix(key, suffix) {
			return conc.Chans[key]
		}
	}
	t.Fatalf("no tracked channel matches %q (have %v)", suffix, conc.ChanKeys())
	return nil
}
