package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerCtxLeak flags context.WithCancel/WithTimeout/WithDeadline
// calls whose cancel function is not called on every path out of the
// function. An uncanceled context pins its timer and its parent's child
// list until the parent is canceled — in the gateway and service tiers
// the parent is a server-lifetime context, so each miss is a slow leak
// under sustained traffic. Forward may-be-live dataflow: the assignment
// tracks the cancel variable; calling it, deferring it, passing it,
// storing it, or returning it releases the obligation. A cancel bound to
// the blank identifier is reported immediately. With the whole-program
// view, handing cancel to a helper whose summary proves it ignores the
// argument does not discharge the obligation. The finding carries a
// mechanical fix: insert `defer cancel()` right after the acquisition
// (context.CancelFunc is idempotent, so the insertion is always safe).
var AnalyzerCtxLeak = &Analyzer{
	Name:         "ctx-leak",
	Doc:          "flags context cancel functions not called on every path out of the function",
	Severity:     SeverityError,
	IncludeTests: true,
	NeedsProgram: true,
	Run:          runCtxLeak,
}

// cancelSources are the context constructors returning a cancel func.
var cancelSources = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

func runCtxLeak(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, fn := range p.functionBodies() {
		checkCtxLeak(p, fn)
	}
}

// cancelAcquisition recognizes `ctx, cancel := context.With*(...)`.
// stored reports a non-identifier cancel destination (a struct field,
// map entry, ...): the owner object takes over the obligation, so such
// acquisitions are neither tracked nor reported.
func cancelAcquisition(p *Pass, as *ast.AssignStmt) (cancelIdent *ast.Ident, call *ast.CallExpr, stored bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, nil, false
	}
	c, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil, false
	}
	path, name, ok := p.PkgFunc(c)
	if !ok || path != "context" || !cancelSources[name] {
		return nil, nil, false
	}
	ci, isIdent := as.Lhs[1].(*ast.Ident)
	return ci, c, !isIdent
}

func checkCtxLeak(p *Pass, fn fnBody) {
	g := p.BuildCFG(fn.Body)

	type fact = map[*types.Var]int

	// acquisitions maps each tracked cancel var to its acquiring
	// statement, for the defer-insertion fix.
	acquisitions := make(map[*types.Var]*ast.AssignStmt)

	step := func(node ast.Node, in fact) fact {
		out := in
		copied := false
		mutate := func() {
			if !copied {
				copied = true
				out = cloneFacts(in)
			}
		}
		release := func(e ast.Expr) {
			if v := p.useVar(e); v != nil {
				if _, tracked := out[v]; tracked {
					mutate()
					delete(out, v)
				}
			}
		}
		if as, ok := node.(*ast.AssignStmt); ok {
			if ci, call, stored := cancelAcquisition(p, as); call != nil {
				if stored {
					return out
				}
				if ci == nil || ci.Name == "_" {
					p.Reportf(call.Pos(), "cancel function discarded; the context leaks until its parent is canceled — bind it and defer cancel()")
					return out
				}
				if v := p.useVar(ci); v != nil {
					mutate()
					out[v] = int(call.Pos())
					acquisitions[v] = as
				}
				return out
			}
		}
		// A closure capturing the cancel variable takes over the
		// obligation (it may run after this function returns).
		releaseCaptured(node, release)
		deep := false
		if _, isDefer := node.(*ast.DeferStmt); isDefer {
			deep = true // defer cancel() or defer func(){ cancel() }()
		}
		walk := inspectShallow
		if deep {
			walk = func(m ast.Node, f func(ast.Node) bool) { ast.Inspect(m, f) }
		}
		walk(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				// cancel() called, or cancel passed along — unless the
				// callee's summary proves it ignores the argument, in which
				// case the handoff cannot discharge the obligation.
				release(m.Fun)
				for i, arg := range m.Args {
					if argIgnored(p, m, i) {
						continue
					}
					release(arg)
				}
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					release(res)
				}
			case *ast.AssignStmt:
				// cancel stored (s.cancel = cancel, other = cancel).
				for _, rhs := range m.Rhs {
					release(rhs)
				}
			case *ast.GoStmt:
				// go cancelLater(cancel) — arguments are evaluated here;
				// the spawned goroutine owns the obligation, unless it
				// provably never touches the argument.
				release(m.Call.Fun)
				for i, arg := range m.Call.Args {
					if argIgnored(p, m.Call, i) {
						continue
					}
					release(arg)
				}
			}
			return true
		})
		return out
	}

	facts := Solve(g, FlowProblem[fact]{
		Boundary: func() fact { return fact{} },
		Init:     func() fact { return fact{} },
		Meet:     func(a, b fact) fact { return unionFacts(a, b, keepEarlier) },
		Equal:    equalFacts[*types.Var, int],
		Transfer: func(b *Block, f fact) fact {
			for _, node := range b.Nodes {
				f = step(node, f)
			}
			return f
		},
	})

	for v, pos := range facts[g.Exit].In {
		var edits []Edit
		if as := acquisitions[v]; as != nil {
			if at := p.Offset(as.End()); at >= 0 {
				edits = []Edit{{
					Start: at,
					End:   at,
					New:   "\n" + p.lineIndent(as.Pos()) + "defer " + v.Name() + "()",
				}}
			}
		}
		p.ReportEditsf(token.Pos(pos), edits,
			"%s is not called on every path out of %s; defer %s() right after the context is created",
			v.Name(), fn.Name, v.Name())
	}
}
