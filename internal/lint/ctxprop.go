package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerCtxPropagation flags exported functions in the serving tiers
// (gateway, service, sensor, dashboard) that perform HTTP calls without
// accepting a context.Context (or an *http.Request to derive one from).
// A context-less hop drops the X-Trace-Id/X-Span-Id pair telemetry
// propagates, so the downstream span detaches from its trace and the
// dashboard's cross-tier latency joins silently lose data. It also flags
// http.NewRequest, which builds a context-less request even when a
// context is in scope — use http.NewRequestWithContext.
var AnalyzerCtxPropagation = &Analyzer{
	Name: "ctx-propagation",
	Doc:  "flags exported serving-tier functions doing HTTP without a context, and http.NewRequest",
	AppliesTo: func(path string) bool {
		return pathHasAny(path, "internal/gateway", "internal/service", "internal/serving", "internal/sensor", "internal/dashboard")
	},
	Run: runCtxPropagation,
}

func runCtxPropagation(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkNewRequest(p, fn)
			if !fn.Name.IsExported() {
				continue
			}
			if hasContextAccess(p, fn.Type) {
				continue
			}
			if pos, desc, found := findHTTPCall(p, fn.Body); found {
				p.Reportf(pos, "exported %s performs an HTTP call (%s) without accepting a context.Context; the X-Trace-Id span chain breaks here", fn.Name.Name, desc)
			}
		}
	}
}

// checkNewRequest flags http.NewRequest anywhere (exported or not): the
// context-less constructor is never right in the serving tiers.
func checkNewRequest(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := p.PkgFunc(call); ok && path == "net/http" && name == "NewRequest" {
			p.Reportf(call.Pos(), "http.NewRequest builds a context-less request; use http.NewRequestWithContext so trace headers and cancellation propagate")
		}
		return true
	})
}

// hasContextAccess reports whether the signature provides a context:
// either a context.Context parameter or an *http.Request (whose
// .Context() carries the inbound trace).
func hasContextAccess(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := p.TypeOf(field.Type)
		if t != nil {
			pkg, name := namedPath(t)
			if (pkg == "context" && name == "Context") || (pkg == "net/http" && name == "Request") {
				return true
			}
			continue
		}
		// Syntactic fallback for partially type-checked corpus code.
		if sel, ok := unwrapStar(field.Type).(*ast.SelectorExpr); ok {
			if x, isIdent := sel.X.(*ast.Ident); isIdent {
				if x.Name == "context" && sel.Sel.Name == "Context" {
					return true
				}
				if x.Name == "http" && sel.Sel.Name == "Request" {
					return true
				}
			}
		}
	}
	return false
}

func unwrapStar(e ast.Expr) ast.Expr {
	if star, ok := e.(*ast.StarExpr); ok {
		return star.X
	}
	return e
}

// findHTTPCall locates the first HTTP-performing call in the body:
// package-level http.Get/Head/Post/PostForm, or Do/Get/Post/PostForm/
// Head methods on *http.Client.
func findHTTPCall(p *Pass, body *ast.BlockStmt) (pos token.Pos, desc string, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := p.PkgFunc(call); ok && path == "net/http" {
			switch name {
			case "Get", "Head", "Post", "PostForm":
				pos, desc, found = call.Pos(), "http."+name, true
				return false
			}
		}
		if recv, name, ok := p.MethodCall(call); ok {
			pkg, typeName := namedPath(recv)
			if pkg == "net/http" && typeName == "Client" {
				switch name {
				case "Do", "Get", "Head", "Post", "PostForm":
					pos, desc, found = call.Pos(), "http.Client."+name, true
					return false
				}
			}
		}
		return true
	})
	return pos, desc, found
}
