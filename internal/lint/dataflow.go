package lint

// This file implements the generic dataflow half of the engine: a
// forward/backward worklist solver over the CFGs built in cfg.go.
// Analyzers describe their lattice through a FlowProblem — the fact
// type, the meet (join) operator, the per-block transfer function, and
// an optional per-edge refinement (used to narrow facts along the true
// and false edges of a conditional, e.g. "err != nil implies resp is
// nil"). The solver iterates to a fixpoint; the lattices used by the
// analyzers in this package are finite powersets, so termination is
// guaranteed as long as Transfer and Meet are monotone.

// FlowProblem describes one dataflow analysis over a CFG.
type FlowProblem[F any] struct {
	// Backward selects analysis direction: false = forward (facts flow
	// entry -> exit), true = backward (facts flow exit -> entry, and
	// Transfer sees each block's nodes in reverse).
	Backward bool
	// Boundary is the fact at the boundary block: Entry for forward
	// analyses, Exit (and Panic) for backward ones.
	Boundary func() F
	// Init produces the optimistic initial fact (bottom) for every other
	// block.
	Init func() F
	// Meet combines facts flowing in from multiple edges. It must not
	// mutate its arguments; return a fresh value (or one of the inputs
	// when unchanged).
	Meet func(a, b F) F
	// Equal reports fact equality, used to detect the fixpoint.
	Equal func(a, b F) bool
	// Transfer applies the block's effect to a fact. It must not mutate
	// the input.
	Transfer func(b *Block, f F) F
	// EdgeRefine, when non-nil, narrows the fact flowing across the
	// from -> to edge (called with execution-order from/to even in
	// backward mode). It must not mutate the input.
	EdgeRefine func(from, to *Block, f F) F
}

// BlockFacts holds the solved facts at a block's boundaries, in
// execution order: In is the fact before the block's nodes run, Out the
// fact after.
type BlockFacts[F any] struct {
	In, Out F
}

// Solve runs the worklist algorithm to a fixpoint and returns per-block
// facts. Unreachable blocks keep their Init facts.
func Solve[F any](g *CFG, p FlowProblem[F]) map[*Block]*BlockFacts[F] {
	facts := make(map[*Block]*BlockFacts[F], len(g.Blocks))
	for _, b := range g.Blocks {
		facts[b] = &BlockFacts[F]{In: p.Init(), Out: p.Init()}
	}
	boundary := g.Entry
	if p.Backward {
		boundary = g.Exit
	}

	// Seed the worklist in rough execution order (build order is close
	// to it); the worklist then handles the rest.
	work := make([]*Block, 0, len(g.Blocks))
	inWork := make(map[*Block]bool, len(g.Blocks))
	push := func(b *Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	if p.Backward {
		// Reverse the seed so predecessors of Exit stabilize first.
		for i, j := 0, len(work)-1; i < j; i, j = i+1, j-1 {
			work[i], work[j] = work[j], work[i]
		}
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		f := facts[b]
		if !p.Backward {
			in := p.Init()
			if b == boundary {
				in = p.Boundary()
			}
			for _, pred := range b.Preds {
				e := facts[pred].Out
				if p.EdgeRefine != nil {
					e = p.EdgeRefine(pred, b, e)
				}
				in = p.Meet(in, e)
			}
			out := p.Transfer(b, in)
			changed := !p.Equal(out, f.Out)
			f.In, f.Out = in, out
			if changed {
				for _, s := range b.Succs {
					push(s)
				}
			}
		} else {
			out := p.Init()
			if b == boundary || b == g.Panic {
				out = p.Meet(out, p.Boundary())
			}
			for _, succ := range b.Succs {
				e := facts[succ].In
				if p.EdgeRefine != nil {
					e = p.EdgeRefine(b, succ, e)
				}
				out = p.Meet(out, e)
			}
			in := p.Transfer(b, out)
			changed := !p.Equal(in, f.In)
			f.In, f.Out = in, out
			if changed {
				for _, pr := range b.Preds {
					push(pr)
				}
			}
		}
	}
	return facts
}

// --- small fact helpers shared by the flow-sensitive analyzers ---
//
// The analyzers' facts are all finite maps from a tracked key (a lock
// expression, a variable) to a small comparable payload. These helpers
// implement the copy-on-write set algebra the solver contract requires.

// cloneFacts copies m.
func cloneFacts[K, V comparable](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// unionFacts merges b into a copy of a; on key conflicts, keep resolves
// (keep(a-value, b-value)). keep == nil keeps a's value.
func unionFacts[K, V comparable](a, b map[K]V, keep func(V, V) V) map[K]V {
	if len(b) == 0 {
		return a
	}
	out := cloneFacts(a)
	for k, v := range b {
		if old, ok := out[k]; ok {
			if keep != nil {
				out[k] = keep(old, v)
			}
		} else {
			out[k] = v
		}
	}
	return out
}

// equalFacts reports whether the two maps hold the same entries.
func equalFacts[K, V comparable](a, b map[K]V) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// keepEarlier is the common conflict policy: report at the first
// acquisition site.
func keepEarlier(a, b int) int {
	if b < a {
		return b
	}
	return a
}
