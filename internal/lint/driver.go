package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzers returns the full registered suite, sorted by name.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		AnalyzerCtxPropagation,
		AnalyzerFloatEq,
		AnalyzerGoroutineLeak,
		AnalyzerNondeterminism,
		AnalyzerTelemetryCardinality,
		AnalyzerUncheckedErr,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// corpusMarker identifies the golden-file corpus; every analyzer runs on
// packages under it regardless of its AppliesTo scoping, so the corpus
// can exercise subsystem-scoped checks.
const corpusMarker = "/lint/testdata/"

// Result is the outcome of one driver run.
type Result struct {
	// Findings holds every diagnostic, suppressed or not, sorted by
	// file, line, column, and check.
	Findings []Finding
	// Packages counts the packages analyzed.
	Packages int
}

// Unsuppressed returns the findings not matched by an ignore directive.
func (r *Result) Unsuppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Run loads the packages matched by patterns (resolved against dir) and
// runs the given analyzers (the full suite when nil). File paths in
// findings are reported relative to dir when possible.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	fullSuite := analyzers == nil
	if fullSuite {
		analyzers = Analyzers()
	}
	loader := &Loader{Dir: dir}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		res.Findings = append(res.Findings, analyzePackage(loader, pkg, analyzers, fullSuite)...)
	}
	for i := range res.Findings {
		if rel, err := filepath.Rel(loader.Dir, res.Findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			res.Findings[i].File = rel
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

// analyzePackage runs the applicable analyzers over one package and
// resolves suppression directives. Stale-directive detection only runs
// with the full suite: a subset run cannot tell a stale directive from
// one covering a disabled check.
func analyzePackage(loader *Loader, pkg *Package, analyzers []*Analyzer, fullSuite bool) []Finding {
	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }

	inCorpus := strings.Contains(filepath.ToSlash(pkg.Dir), corpusMarker)
	for _, a := range analyzers {
		if !inCorpus && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset(),
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			findings: &findings,
		}
		a.Run(pass)
	}

	var directives []directive
	for _, f := range pkg.Files {
		directives = append(directives, collectDirectives(loader.Fset(), f, report)...)
	}
	staleReport := report
	if !fullSuite || inCorpus {
		staleReport = nil
	}
	applyDirectives(findings, directives, staleReport)
	return findings
}

// sortFindings orders findings for stable output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// SelectAnalyzers filters the suite down to the named checks.
func SelectAnalyzers(names string) ([]*Analyzer, error) {
	if names == "" {
		return nil, nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
