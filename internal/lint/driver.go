package lint

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzers returns the full registered suite, sorted by name.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		AnalyzerAppendAlias,
		AnalyzerAtomicMix,
		AnalyzerBodyLeak,
		AnalyzerBoundsProvable,
		AnalyzerChanDeadlock,
		AnalyzerUnguardedField,
		AnalyzerWgMisuse,
		AnalyzerCtxLeak,
		AnalyzerCtxPropagation,
		AnalyzerFloatEq,
		AnalyzerGoroutineLeak,
		AnalyzerHotIndirect,
		AnalyzerHotPathAlloc,
		AnalyzerLockBalance,
		AnalyzerLockOrder,
		AnalyzerMapOrderLeak,
		AnalyzerNondeterminism,
		AnalyzerPointerChase,
		AnalyzerTaintPath,
		AnalyzerTelemetryCardinality,
		AnalyzerUncheckedErr,
		AnalyzerWallClock,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// corpusMarker identifies the golden-file corpus; every analyzer runs on
// packages under it regardless of its AppliesTo scoping, so the corpus
// can exercise subsystem-scoped checks.
const corpusMarker = "/lint/testdata/"

// Result is the outcome of one driver run.
type Result struct {
	// Findings holds every diagnostic, suppressed or not, sorted by
	// file, line, column, and check.
	Findings []Finding
	// Packages counts the packages analyzed.
	Packages int
}

// Unsuppressed returns the findings not matched by an ignore directive.
func (r *Result) Unsuppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Gating returns the findings that should fail a run: unsuppressed, not
// absorbed by the baseline, and at least min severe.
func (r *Result) Gating(min Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Suppressed || f.Baselined {
			continue
		}
		if !f.Severity.AtLeast(min) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Options configures a driver run.
type Options struct {
	// Patterns are package patterns resolved against the run directory
	// ("./..." when empty).
	Patterns []string
	// Analyzers restricts the run to a subset (nil runs the full suite).
	Analyzers []*Analyzer
	// Tests loads and analyzes test packages too. Analyzers opt in per
	// check via Analyzer.IncludeTests.
	Tests bool
	// Graph, when non-nil, receives the whole-module call graph in DOT
	// form (the -graph debug mode).
	Graph io.Writer
}

// Run loads the packages matched by patterns (resolved against dir) and
// runs the given analyzers (the full suite when nil) with test packages
// included. File paths in findings are reported relative to dir when
// possible.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	return RunOpts(dir, Options{Patterns: patterns, Analyzers: analyzers, Tests: true})
}

// RunOpts is Run with full control over loading and analyzer selection.
// Packages are analyzed in parallel, one goroutine per package over the
// loader's shared type-check cache.
func RunOpts(dir string, opts Options) (*Result, error) {
	fullSuite := opts.Analyzers == nil
	analyzers := opts.Analyzers
	if fullSuite {
		analyzers = Analyzers()
	}
	loader := &Loader{Dir: dir, Tests: opts.Tests}
	pkgs, err := loader.Load(opts.Patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}

	// Build the whole-module view once when any selected analyzer is
	// interprocedural (or the caller wants the call graph). Summaries are
	// forced here, before the parallel phase, so per-package analyzers
	// read them without synchronization.
	var prog *Program
	needsProgram := opts.Graph != nil
	for _, a := range analyzers {
		if a.Run == nil || a.NeedsProgram {
			needsProgram = true
		}
	}
	if needsProgram {
		prog = BuildProgram(loader.Fset(), pkgs)
		prog.EnsureSummaries()
		if opts.Graph != nil {
			if err := prog.WriteDOT(opts.Graph); err != nil {
				return nil, err
			}
		}
	}

	// Program analyzers run once, sequentially; their findings are routed
	// to the owning package so suppression directives apply uniformly.
	extra := make(map[*Package][]Finding)
	if prog != nil {
		fileOwner := make(map[string]*Package)
		for _, pkg := range pkgs {
			if pkg.IsTest {
				continue
			}
			for _, f := range pkg.Files {
				fileOwner[loader.Fset().Position(f.Pos()).Filename] = pkg
			}
		}
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			var programFindings []Finding
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, findings: &programFindings})
			for _, f := range programFindings {
				if owner := fileOwner[f.File]; owner != nil {
					extra[owner] = append(extra[owner], f)
				} else {
					res.Findings = append(res.Findings, f)
				}
			}
		}
	}

	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = analyzePackage(loader, pkg, analyzers, fullSuite, prog, extra[pkg])
		}(i, pkg)
	}
	wg.Wait()
	for _, fs := range perPkg {
		res.Findings = append(res.Findings, fs...)
	}

	for i := range res.Findings {
		if rel, err := filepath.Rel(loader.Dir, res.Findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			res.Findings[i].File = rel
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

// analyzePackage runs the applicable analyzers over one package and
// resolves suppression directives. Stale-directive detection only runs
// with the full suite: a subset run cannot tell a stale directive from
// one covering a disabled check. Test packages only see analyzers that
// opted in via IncludeTests.
func analyzePackage(loader *Loader, pkg *Package, analyzers []*Analyzer, fullSuite bool, prog *Program, extra []Finding) []Finding {
	findings := append([]Finding(nil), extra...)
	report := func(f Finding) { findings = append(findings, f) }

	inCorpus := strings.Contains(filepath.ToSlash(pkg.Dir), corpusMarker)
	ranAll := true
	for _, a := range analyzers {
		if a.Run == nil {
			// Program analyzers already ran globally; their findings for
			// this package arrived via extra. They skip test packages.
			if pkg.IsTest || prog == nil {
				ranAll = false
			}
			continue
		}
		if pkg.IsTest && !a.IncludeTests {
			ranAll = false
			continue
		}
		if !inCorpus && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset(),
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			Prog:     prog,
			findings: &findings,
		}
		a.Run(pass)
	}

	var directives []directive
	for _, f := range pkg.Files {
		directives = append(directives, collectDirectives(loader.Fset(), f, report)...)
	}
	staleReport := report
	if !fullSuite || inCorpus || !ranAll {
		staleReport = nil
	}
	applyDirectives(findings, directives, staleReport)
	return findings
}

// sortFindings orders findings for stable output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// SelectAnalyzers filters the suite down to the named checks.
func SelectAnalyzers(names string) ([]*Analyzer, error) {
	if names == "" {
		return nil, nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
