package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTypeCheckOncePerPackage loads the whole module — root directories
// in parallel over the shared cache — and asserts no package was
// type-checked more than once. Without the cache's wait-on-in-flight
// entries, a popular dependency (telemetry, clock) would be re-checked
// by every importer and full-repo runs would be quadratic-ish.
func TestTypeCheckOncePerPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{Dir: root, Tests: true}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	counts := loader.CheckCounts()
	if len(counts) == 0 {
		t.Fatal("no type-checks recorded")
	}
	for key, n := range counts {
		if n > 1 {
			t.Errorf("package %s type-checked %d times, want 1", key, n)
		}
	}
	// Spot-check that shared dependencies were actually demanded.
	for _, dep := range []string{"repro/internal/telemetry", "repro/internal/clock"} {
		if counts[dep] != 1 {
			t.Errorf("dependency %s checked %d times, want exactly 1", dep, counts[dep])
		}
	}
}

// TestLoadsExternalTestPackages pins the satellite fix: the repo root
// holds only an external benchmark package (bench_ext_test.go, package
// repro), which the loader used to skip entirely.
func TestLoadsExternalTestPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{Dir: root, Tests: true}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawRootBench, sawInPackageTest bool
	for _, p := range pkgs {
		if p.Path == "repro" && p.IsTest {
			sawRootBench = true
		}
		if p.IsTest && strings.HasPrefix(p.Path, "repro/internal/") {
			sawInPackageTest = true
		}
	}
	if !sawRootBench {
		t.Error("root external benchmark package (repro, test) not loaded")
	}
	if !sawInPackageTest {
		t.Error("no in-package test packages loaded under repro/internal")
	}
}

// BenchmarkFullRepoRun measures the parallel driver end to end: load,
// type-check, and analyze the whole module with all analyzers.
func BenchmarkFullRepoRun(b *testing.B) {
	root, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(root, []string{"./..."}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeOnly isolates the analysis half: one load, then
// repeated analyzer passes over the cached packages.
func BenchmarkAnalyzeOnly(b *testing.B) {
	root, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	loader := &Loader{Dir: root, Tests: true}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	analyzers := Analyzers()
	prog := BuildProgram(loader.Fset(), pkgs)
	prog.EnsureSummaries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			analyzePackage(loader, pkg, analyzers, true, prog, nil)
		}
	}
}

// TestRepeatedRunsByteIdentical pins emission determinism end to end:
// two independent loads and runs over the corpus must serialize to the
// same bytes, JSON and SARIF both. Parallel package analysis, map-keyed
// caches, and analyzer registration order all feed this — any of them
// leaking iteration order shows up here as a diff.
func TestRepeatedRunsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two module loads are slow; run without -short")
	}
	emit := func() (jsonBytes, sarifBytes []byte) {
		t.Helper()
		res, err := Run(".", []string{"./testdata/src/..."}, nil)
		if err != nil {
			t.Fatal(err)
		}
		jsonBytes, err = json.MarshalIndent(res.Findings, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteSARIF(&buf); err != nil {
			t.Fatal(err)
		}
		return jsonBytes, buf.Bytes()
	}
	j1, s1 := emit()
	j2, s2 := emit()
	if !bytes.Equal(j1, j2) {
		t.Error("JSON output differs between identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("SARIF output differs between identical runs")
	}
}
