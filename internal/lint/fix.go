package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FilePatch is the set of edits to apply to one file, with the original
// and patched contents materialized for diffing.
type FilePatch struct {
	// Path is the file path as reported in the findings (usually
	// relative to the run directory).
	Path string
	// Abs is the absolute on-disk path.
	Abs string
	// Before and After are the file contents around the edits.
	Before, After string
	// Applied counts the edits folded in; Skipped counts edits dropped
	// because they overlapped an earlier (later-in-file) edit.
	Applied, Skipped int
}

// BuildPatches folds the Edits carried by findings into per-file
// patches. dir anchors relative finding paths. Suppressed and baselined
// findings keep their defects by choice, so their edits are not applied.
// Overlapping edits are applied last-position-first; a later edit
// overlapping one already applied is skipped rather than guessed at.
func BuildPatches(dir string, findings []Finding) ([]*FilePatch, error) {
	type edit struct {
		Edit
		check string
	}
	byFile := make(map[string][]edit)
	for _, f := range findings {
		if f.Suppressed || f.Baselined || len(f.Edits) == 0 {
			continue
		}
		for _, e := range f.Edits {
			byFile[f.File] = append(byFile[f.File], edit{Edit: e, check: f.Check})
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var patches []*FilePatch
	for _, file := range files {
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, file)
		}
		data, err := os.ReadFile(abs)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: %w", file, err)
		}
		src := string(data)
		edits := byFile[file]
		// Apply from the end of the file backwards so earlier offsets
		// stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		p := &FilePatch{Path: file, Abs: abs, Before: src}
		out := src
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) || e.End > lastStart {
				p.Skipped++
				continue
			}
			out = out[:e.Start] + e.New + out[e.End:]
			lastStart = e.Start
			p.Applied++
		}
		p.After = out
		if p.Applied > 0 {
			patches = append(patches, p)
		}
	}
	return patches, nil
}

// WritePatches applies the patches in place.
func WritePatches(patches []*FilePatch) error {
	for _, p := range patches {
		info, err := os.Stat(p.Abs)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(p.Abs, []byte(p.After), mode); err != nil {
			return fmt.Errorf("lint: fix %s: %w", p.Path, err)
		}
	}
	return nil
}

// Diff renders the patch as a unified-style line diff (plain line-based
// comparison: shared prefix and suffix lines, then the changed middle as
// one hunk — edits here are local insertions and swaps, which this shape
// presents faithfully).
func (p *FilePatch) Diff() string {
	a := strings.Split(p.Before, "\n")
	b := strings.Split(p.After, "\n")
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	post := 0
	for post < len(a)-pre && post < len(b)-pre && a[len(a)-1-post] == b[len(b)-1-post] {
		post++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", p.Path, p.Path)
	fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", pre+1, len(a)-pre-post, pre+1, len(b)-pre-post)
	// One line of leading context when available.
	if pre > 0 {
		fmt.Fprintf(&sb, " %s\n", a[pre-1])
	}
	for _, line := range a[pre : len(a)-post] {
		fmt.Fprintf(&sb, "-%s\n", line)
	}
	for _, line := range b[pre : len(b)-post] {
		fmt.Fprintf(&sb, "+%s\n", line)
	}
	if post > 0 {
		fmt.Fprintf(&sb, " %s\n", a[len(a)-post])
	}
	return sb.String()
}
