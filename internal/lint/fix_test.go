package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixRoundTrip copies the fix fixtures into a scratch package,
// applies every mechanical fix the analyzers propose, re-runs the suite,
// and requires the patched package to be completely clean. This is the
// contract of -fix: applying it must never leave (or introduce) a
// finding.
func TestFixRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two module loads are slow; run without -short")
	}
	// The scratch directory lives under testdata (so the loader resolves
	// it inside the module and the corpus bypass applies every analyzer)
	// but is dot-prefixed, so ./... expansion never picks it up.
	tmp, err := os.MkdirTemp("testdata", ".fixscratch-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	fixtures, err := filepath.Glob(filepath.Join("testdata", "fix", "*.go"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no fixtures under testdata/fix: %v", err)
	}
	for _, src := range fixtures {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pattern := "./" + filepath.ToSlash(tmp)
	res, err := RunOpts(".", Options{Patterns: []string{pattern}})
	if err != nil {
		t.Fatal(err)
	}

	// Every fixable check must propose at least one edit on the fixtures.
	edited := make(map[string]bool)
	for _, f := range res.Findings {
		if len(f.Edits) > 0 {
			edited[f.Check] = true
		}
	}
	for _, check := range []string{"ctx-leak", "wall-clock", "lock-balance"} {
		if !edited[check] {
			t.Errorf("fixtures produced no fixable %s finding", check)
		}
	}

	patches, err := BuildPatches(".", res.Findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) == 0 {
		t.Fatal("no patches built")
	}
	for _, p := range patches {
		if p.Skipped > 0 {
			t.Errorf("%s: %d overlapping edits skipped", p.Path, p.Skipped)
		}
		if d := p.Diff(); !strings.HasPrefix(d, "--- ") {
			t.Errorf("%s: malformed diff header:\n%s", p.Path, d)
		}
	}
	if err := WritePatches(patches); err != nil {
		t.Fatal(err)
	}

	res2, err := RunOpts(".", Options{Patterns: []string{pattern}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res2.Unsuppressed() {
		t.Errorf("finding survives -fix: %s", f.String())
	}
}

// TestBaselineRoundTrip writes a baseline from a dirty result and checks
// it absorbs exactly those findings on the next run, entry for entry.
func TestBaselineRoundTrip(t *testing.T) {
	res := &Result{Findings: []Finding{
		{Check: "body-leak", Severity: SeverityError, File: "a.go", Line: 10, Message: "m1"},
		{Check: "body-leak", Severity: SeverityError, File: "a.go", Line: 30, Message: "m1"},
		{Check: "wall-clock", Severity: SeverityWarn, File: "b.go", Line: 5, Message: "m2", Suppressed: true},
	}}
	b := BaselineFrom(res)
	if len(b.Entries) != 2 {
		t.Fatalf("baseline entries = %d, want 2 (suppressed excluded)", len(b.Entries))
	}

	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 2 {
		t.Fatalf("loaded entries = %d, want 2", len(loaded.Entries))
	}

	// Same findings: all absorbed, nothing gates.
	res.ApplyBaseline(loaded)
	if g := res.Gating(SeverityWarn); len(g) != 0 {
		t.Fatalf("gating after baseline = %v, want none", g)
	}

	// A third occurrence of the same fingerprint exceeds the budget and
	// gates again.
	res2 := &Result{Findings: []Finding{
		{Check: "body-leak", Severity: SeverityError, File: "a.go", Line: 10, Message: "m1"},
		{Check: "body-leak", Severity: SeverityError, File: "a.go", Line: 30, Message: "m1"},
		{Check: "body-leak", Severity: SeverityError, File: "a.go", Line: 50, Message: "m1"},
	}}
	res2.ApplyBaseline(loaded)
	if g := res2.Gating(SeverityWarn); len(g) != 1 {
		t.Fatalf("gating with surplus finding = %d, want 1", len(g))
	}

	// Missing baseline file is an empty baseline, not an error.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Entries) != 0 {
		t.Fatalf("missing baseline loaded %d entries", len(empty.Entries))
	}
}

// TestSeverityGating pins the severity lattice the -fail-on flag selects
// from.
func TestSeverityGating(t *testing.T) {
	res := &Result{Findings: []Finding{
		{Check: "a", Severity: SeverityError, File: "x.go", Message: "e"},
		{Check: "b", Severity: SeverityWarn, File: "x.go", Message: "w"},
		{Check: "c", Severity: SeverityInfo, File: "x.go", Message: "i"},
	}}
	if n := len(res.Gating(SeverityInfo)); n != 3 {
		t.Errorf("fail-on=info gates %d, want 3", n)
	}
	if n := len(res.Gating(SeverityWarn)); n != 2 {
		t.Errorf("fail-on=warn gates %d, want 2", n)
	}
	if n := len(res.Gating(SeverityError)); n != 1 {
		t.Errorf("fail-on=error gates %d, want 1", n)
	}
	// Unknown severities rank as error: a typo cannot soften a check.
	if !Severity("banana").AtLeast(SeverityError) {
		t.Error("unknown severity must gate like error")
	}
}
