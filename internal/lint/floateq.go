package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// AnalyzerFloatEq flags == / != between floating-point operands in the
// numeric kernels (ml, mat). After any arithmetic, two mathematically
// equal floats rarely compare equal bit-for-bit, so such comparisons
// make convergence checks and split selection depend on rounding and —
// worse — on compiler fusion choices, destroying cross-machine
// reproducibility of the paper's tables. Comparisons against an exact
// zero constant are exempt (0 is exactly representable and the dominant
// guard-against-division idiom); comparing exactly-stored sentinel
// values is legitimate but must be suppressed with a reason.
var AnalyzerFloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "flags ==/!= between floats in ml/mat (exact-zero comparisons exempt)",
	AppliesTo: func(path string) bool {
		return pathHasAny(path, "internal/ml", "internal/mat")
	},
	Run: runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(bin.X)) && !isFloat(p.TypeOf(bin.Y)) {
				return true
			}
			if isExactZero(p, bin.X) || isExactZero(p, bin.Y) {
				return true
			}
			p.Reportf(bin.Pos(), "floating-point %s comparison; use an epsilon (math.Abs(a-b) <= eps) or suppress with why exact equality holds", bin.Op)
			return true
		})
	}
}

// isExactZero reports whether e is a compile-time constant equal to 0.
func isExactZero(p *Pass, e ast.Expr) bool {
	v := p.ConstValue(e)
	if v == nil {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}
