package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation parsed from a corpus `// want "regexp"`
// comment: the named line must produce a finding whose message matches.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantQuoted captures each quoted regexp after a `// want` marker.
var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every corpus .go file for want comments. Multiple
// quoted regexps on one line are multiple expectations for that line.
func collectWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, m := range wantQuoted.FindAllStringSubmatch(marker, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &want{file: path, line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments under %s", root)
	}
	return wants
}

// TestCorpusGolden runs the full suite over the known-bad corpus and
// requires an exact match between findings and want comments: every
// want must be hit, and every unsuppressed finding must be wanted.
func TestCorpusGolden(t *testing.T) {
	res, err := Run(".", []string{"./testdata/src/..."}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, filepath.Join("testdata", "src"))

	var directiveFindings []Finding
	for _, f := range res.Unsuppressed() {
		if f.Check == "lint-directive" {
			// Malformed-directive findings land on comment lines, which
			// cannot carry a want comment of their own; asserted below.
			directiveFindings = append(directiveFindings, f)
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}

	// The corpus contains exactly one malformed directive (directives.go),
	// which must be reported and must not suppress its neighbor.
	if len(directiveFindings) != 1 {
		t.Fatalf("lint-directive findings = %d, want 1: %v", len(directiveFindings), directiveFindings)
	}
	if d := directiveFindings[0]; !strings.HasSuffix(d.File, filepath.Join("directives", "directives.go")) {
		t.Fatalf("lint-directive finding in %s, want directives.go", d.File)
	}

	// Every corpus suppression must carry its reason through.
	suppressed := 0
	for _, f := range res.Findings {
		if f.Suppressed {
			suppressed++
			if f.SuppressReason == "" {
				t.Errorf("suppressed finding without a reason: %s", f.String())
			}
		}
	}
	if suppressed == 0 {
		t.Error("corpus exercised no suppressions")
	}
}

// TestCorpusPerCheck re-runs each analyzer alone over the corpus and
// requires it to produce at least one finding, so an analyzer that
// silently dies cannot hide behind the others.
func TestCorpusPerCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("six separate module loads are slow; run without -short")
	}
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res, err := Run(".", []string{"./testdata/src/..."}, []*Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			// Count only this analyzer's findings: the malformed-directive
			// finding fires on every run and would hide a dead analyzer.
			own := 0
			for _, f := range res.Findings {
				if f.Check == a.Name {
					own++
				}
			}
			if own == 0 {
				t.Fatalf("analyzer %s found nothing in the corpus", a.Name)
			}
		})
	}
}

// TestRepoTreeIsLintClean is the self-check gate: the real tree must
// have zero unsuppressed findings, i.e. `make lint` passes. Skipped in
// -short mode because it type-checks the whole module from source.
func TestRepoTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, []string{"./..."}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(filepath.Join(root, ".lint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	res.ApplyBaseline(base)
	for _, f := range res.Gating(SeverityInfo) {
		t.Errorf("unsuppressed finding: %s", f.String())
	}
	// Every baseline entry must still absorb a live finding: stale
	// entries are budget a regression could silently spend.
	for _, e := range res.StaleBaseline(base) {
		t.Errorf("stale baseline entry: %s %s %q", e.Check, e.File, e.Message)
	}
	// The baseline is for justified info-level debt only; error- and
	// warn-severity findings must be fixed, not absorbed.
	for _, f := range res.Findings {
		if f.Baselined && f.Severity != SeverityInfo {
			t.Errorf("baseline absorbs a %s-severity finding (only info may be waived): %s", f.Severity, f.String())
		}
	}
	if res.Packages < 20 {
		t.Errorf("analyzed %d packages, expected the whole module (>= 20)", res.Packages)
	}
}

// TestSelectAnalyzers covers the -checks flag plumbing.
func TestSelectAnalyzers(t *testing.T) {
	sel, err := SelectAnalyzers("float-eq,nondeterminism")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "float-eq" || sel[1].Name != "nondeterminism" {
		t.Fatalf("selected %v", sel)
	}
	if _, err := SelectAnalyzers("no-such-check"); err == nil {
		t.Fatal("unknown check name accepted")
	}
	if sel, err := SelectAnalyzers(""); err != nil || sel != nil {
		t.Fatalf("empty selection: %v %v", sel, err)
	}
}
