package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroutineLeak flags `go func(){...}()` literals whose body
// shows no lifecycle signal at all: no sync.WaitGroup Done, no
// ctx.Done()/done-channel receive, no channel send/close handing a
// result back, no select. Under the ROADMAP's heavy-traffic goal an
// unaccounted goroutine per request is a leak that only shows up as
// creeping memory and lost work on shutdown; every goroutine must be
// joinable or cancellable. Fire-and-forget goroutines that are
// intentionally unbounded (rare) get a suppression with the reason.
var AnalyzerGoroutineLeak = &Analyzer{
	Name: "goroutine-leak",
	Doc:  "flags go func literals with no WaitGroup, done-channel, context, or result-channel reference",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
			if !ok {
				// `go m.run(ctx, s)` — the callee's body is checked
				// where it is defined; only literals are analyzable
				// here.
				return true
			}
			if hasLifecycleSignal(p, lit.Body) {
				return true
			}
			p.Reportf(gostmt.Pos(), "goroutine has no lifecycle signal (WaitGroup.Done, context/done-channel, or result channel); it cannot be joined or cancelled")
			return true
		})
	}
}

// hasLifecycleSignal scans a goroutine body for any evidence that the
// goroutine is tracked: a .Done(...) call (WaitGroup or context), any
// channel operation (send, receive, close, select, range-over-channel),
// or a reference to a sync.WaitGroup value.
func hasLifecycleSignal(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				found = true
			}
			if ident, ok := n.Fun.(*ast.Ident); ok && ident.Name == "close" {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if t := p.TypeOf(n); t != nil {
				if pkg, name := namedPath(t); pkg == "sync" && name == "WaitGroup" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
