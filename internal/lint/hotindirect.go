package lint

// AnalyzerHotIndirect flags dynamically dispatched calls inside the
// hot set's data loops: interface method calls and calls through
// func-typed values (closures, callback fields). Each such call is an
// indirect branch per served instance that blocks inlining and, with
// it, every downstream optimization the perf contracts gate on.
// Severity is warn, not error: some dispatch is the design (the
// batcher's model indirection) and a reasoned //lint:ignore is the
// documented escape hatch.
var AnalyzerHotIndirect = &Analyzer{
	Name:       "hot-indirect",
	Doc:        "flags interface dispatch and func-value calls per data-loop iteration on the hot set",
	Severity:   SeverityWarn,
	RunProgram: runHotIndirect,
}

func runHotIndirect(pp *ProgramPass) {
	forEachKernelFunc(pp, "hotindirect", func(pass *Pass, scan *kernelScan, entry string) {
		for _, ind := range scan.Indirects {
			switch ind.Kind {
			case "interface-method":
				pp.Reportf(ind.Pos, "interface call %s per data-loop iteration (dynamic dispatch on the hot set, reachable from %s); devirtualize or hoist the dispatch out of the loop", ind.Detail, entry)
			case "func-value":
				pp.Reportf(ind.Pos, "indirect call through %s per data-loop iteration (reachable from %s); devirtualize or hoist the dispatch out of the loop", ind.Detail, entry)
			}
		}
	})
}
