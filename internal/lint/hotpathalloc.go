package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotPathAlloc walks the call graph from the serving entry
// points (exported Predict* functions in serving-tier packages) and
// flags per-call heap allocations on the reachable hot path. An
// allocation counts when it executes once per served instance: either
// it sits lexically inside a data loop, or the whole function is
// invoked per iteration of some data loop upstream (interface dispatch
// from the batch kernels included, via CHA). Event loops — bare `for`
// and `for range ch` worker loops — do not mark their callees
// per-iteration: work done once per batch is the design, not a leak.
// Appends into slices pre-sized with an explicit capacity in the same
// function are exempt (the slab pattern the serving tier already uses).
var AnalyzerHotPathAlloc = &Analyzer{
	Name:       "hotpath-alloc",
	Doc:        "flags per-call allocations reachable from serving predict entry points",
	Severity:   SeverityInfo,
	RunProgram: runHotPathAlloc,
}

func runHotPathAlloc(pp *ProgramPass) {
	// Reachability closure from exported Predict* declarations in the
	// serving tier (and the check's own corpus). Only the discovery entry
	// goes into the message — a full call chain would make baseline
	// fingerprints break on every unrelated rename along the path (the
	// -graph DOT dump serves the debugging need instead).
	hot := pp.Prog.HotSet(ServingEntry)
	if len(hot.Entries) == 0 {
		return
	}
	seen := make(map[token.Pos]bool)
	for _, hf := range hot.Funcs() {
		if hf.Node.Body() == nil {
			continue
		}
		scanHotAllocs(pp, hf.Node, hf.PerIter, hf.Entry.Name, seen)
	}
}

// scanHotAllocs walks one hot-path function body and reports each
// allocation that executes per served instance.
func scanHotAllocs(pp *ProgramPass, n *Node, fnPerIter bool, entry string, seen map[token.Pos]bool) {
	pkg := n.Pkg
	capped := cappedSlices(pkg, n.Body())

	report := func(pos token.Pos, what string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		where := "this function runs once per served instance"
		if !fnPerIter {
			where = "inside a per-instance loop"
		}
		pp.Reportf(pos, "%s on the serving hot path (%s, reachable from %s); hoist the buffer or preallocate with capacity", what, where, entry)
	}

	// Explicit ancestor walk so each node knows whether it is inside a
	// data loop of this function (event loops deliberately excluded).
	var stack []ast.Node
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			if m == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if lit, isLit := m.(*ast.FuncLit); isLit && lit != n.Lit {
				return false // literals are their own graph nodes
			}
			inLoop := fnPerIter || inDataLoop(pkg, stack)
			switch m := m.(type) {
			case *ast.CallExpr:
				// panic arguments only execute on the failure path, which
				// is cold however hot the function is.
				if fn, isIdent := ast.Unparen(m.Fun).(*ast.Ident); isIdent && fn.Name == "panic" && pkg.Info.Uses[fn] == types.Universe.Lookup("panic") {
					return false
				}
				if kind, isAlloc := allocKind(pkg, m, capped); isAlloc && inLoop {
					report(m.Pos(), kind)
				}
			case *ast.CompositeLit:
				if inLoop && compositeAllocates(pkg, m) {
					report(m.Pos(), "composite literal allocation")
				}
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					if _, isLit := ast.Unparen(m.X).(*ast.CompositeLit); isLit && inLoop {
						report(m.Pos(), "heap-escaping &struct literal")
					}
				}
			case *ast.BinaryExpr:
				if m.Op == token.ADD && inLoop && isStringExpr(pkg, m.X) {
					report(m.Pos(), "string concatenation")
				}
			}
			stack = append(stack, m)
			return true
		})
	}
	walk(n.Body())
}

// cappedSlices collects variables initialized with an explicit-capacity
// make in this function; appends to them are amortized-free by design.
func cappedSlices(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	capped := make(map[*types.Var]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pkg.Info.ObjectOf(id).(*types.Var)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		// The slab idiom `batch := append(make([]T, 0, cap), first)` also
		// pre-sizes: look through one append to its destination.
		if fn, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && fn.Name == "append" && len(call.Args) > 0 {
			if inner, isCall := ast.Unparen(call.Args[0]).(*ast.CallExpr); isCall {
				call = inner
			}
		}
		if fn, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && fn.Name == "make" && len(call.Args) == 3 {
			capped[v] = true
		}
	}
	ast.Inspect(body, func(m ast.Node) bool {
		if assign, ok := m.(*ast.AssignStmt); ok && len(assign.Lhs) == len(assign.Rhs) {
			for i := range assign.Lhs {
				mark(assign.Lhs[i], assign.Rhs[i])
			}
		}
		return true
	})
	return capped
}

// allocKind classifies a call expression as a per-call allocation.
func allocKind(pkg *Package, call *ast.CallExpr, capped map[*types.Var]bool) (string, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if pkg.Info.Uses[fn] == types.Universe.Lookup(fn.Name) {
			switch fn.Name {
			case "make":
				return "make", true
			case "new":
				return "new", true
			case "append":
				if len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, isVar := pkg.Info.ObjectOf(id).(*types.Var); isVar && capped[v] {
							return "", false
						}
					}
				}
				return "append into uncapped slice", true
			}
		}
	case *ast.SelectorExpr:
		if pkgName, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			// Errorf is deliberately absent: error construction happens on
			// the exceptional path, which is not the serving hot path.
			if pn, isPkg := pkg.Info.Uses[pkgName].(*types.PkgName); isPkg && pn.Imported().Path() == "fmt" {
				switch fn.Sel.Name {
				case "Sprintf", "Sprint", "Sprintln":
					return "fmt." + fn.Sel.Name, true
				}
			}
		}
	}
	return "", false
}

// compositeAllocates reports whether a bare composite literal heads a
// heap allocation: slice and map literals do, value struct literals
// don't (they may live on the stack).
func compositeAllocates(pkg *Package, lit *ast.CompositeLit) bool {
	t := pkg.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// isStringExpr reports whether e has string type.
func isStringExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// inDataLoop reports whether the innermost enclosing loop on the
// ancestor stack is a data loop: a for statement with a condition or
// range over anything but a channel. Bare `for {}` event loops and
// channel-receive loops are the serving tier's dispatch structure, not
// per-instance work.
func inDataLoop(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			if s.Cond != nil || s.Init != nil || s.Post != nil {
				return true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					continue
				}
			}
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}
