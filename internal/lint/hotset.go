package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the exported hot-set surface of the call graph. The
// hotpath-alloc check was its first consumer; internal/perfgate is the
// second: it maps the compiler's optimization diagnostics (escape
// analysis, inlining, bounds-check elimination) onto the functions that
// actually run per served instance, so performance contracts gate only
// where regressions cost throughput.

// HotSet is the serving-reachability closure of the call graph: every
// function reachable from a set of entry points, with per-iteration
// context (does the function run once per served instance, or once per
// batch/request?) and the entry each function was discovered from.
type HotSet struct {
	// Entries are the roots, in deterministic graph order.
	Entries []*Node
	// prog is the graph the set was computed over.
	prog *Program
	// nodes maps each reachable function to its hot-set record.
	nodes map[*Node]*HotFunc
}

// HotFunc is one reachable function's hot-set record.
type HotFunc struct {
	Node *Node
	// PerIter reports that the function executes once per data-loop
	// iteration somewhere upstream — i.e. once per served instance, not
	// once per batch.
	PerIter bool
	// Entry is the entry point this function was first discovered from.
	Entry *Node
}

// Contains reports whether n is in the hot set.
func (h *HotSet) Contains(n *Node) bool { return h.nodes[n] != nil }

// Lookup returns n's hot-set record, nil when n is not reachable.
func (h *HotSet) Lookup(n *Node) *HotFunc { return h.nodes[n] }

// Funcs returns every reachable function's record in deterministic
// (graph build) order.
func (h *HotSet) Funcs() []*HotFunc {
	out := make([]*HotFunc, 0, len(h.nodes))
	for _, n := range h.prog.Nodes {
		if hf := h.nodes[n]; hf != nil {
			out = append(out, hf)
		}
	}
	return out
}

// HotSet computes the reachability closure from the entry points
// selected by isEntry. Per-iteration context propagates along edges that
// sit inside a data loop (see CallSite.InDataLoop) and stays on
// downstream; `go` edges do not inherit it — a loop spawning N workers
// runs each worker body once per worker lifetime, not once per served
// instance.
func (p *Program) HotSet(isEntry func(*Node) bool) *HotSet {
	h := &HotSet{prog: p, nodes: make(map[*Node]*HotFunc)}
	var queue []*Node
	for _, n := range p.Nodes {
		if n.Body() == nil || !isEntry(n) {
			continue
		}
		h.Entries = append(h.Entries, n)
		h.nodes[n] = &HotFunc{Node: n, Entry: n}
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		uRec := h.nodes[u]
		for _, e := range u.Out {
			v := e.Callee
			iter := (uRec.PerIter || e.InDataLoop) && e.Kind != CallGo
			rec := h.nodes[v]
			if rec == nil {
				h.nodes[v] = &HotFunc{Node: v, PerIter: iter, Entry: uRec.Entry}
				queue = append(queue, v)
			} else if iter && !rec.PerIter {
				rec.PerIter = true
				queue = append(queue, v)
			}
		}
	}
	return h
}

// FullName returns the node's unique key: types.Func.FullName for
// declarations, the enclosing declaration's full name plus "$n" for
// literals. Keys are deterministic across runs, so external consumers
// (internal/perfgate's manifest) can use them as stable identifiers.
func (n *Node) FullName() string { return n.full }

// ServingEntry is the default entry-point predicate: exported Predict*
// declarations in serving-tier packages (and the hotpath-alloc corpus).
func ServingEntry(n *Node) bool {
	if n.Decl == nil {
		return false
	}
	if !pathHasAny(n.Pkg.Path, "serving", "hotpathalloc") {
		return false
	}
	name := n.Decl.Name.Name
	return strings.HasPrefix(name, "Predict") && ast.IsExported(name)
}

// ClusterEntry selects the cluster tier's data-plane roots: predict
// routing and ring lookups in internal/cluster. These run once per
// proxied request, so the perf gate watches their diagnostics (the pick
// path is reached from Predict through the call graph).
func ClusterEntry(n *Node) bool {
	if n.Decl == nil || !pathHasAny(n.Pkg.Path, "internal/cluster") {
		return false
	}
	name := n.Decl.Name.Name
	if !ast.IsExported(name) {
		return false
	}
	return strings.HasPrefix(name, "Predict") || strings.HasPrefix(name, "Owner") || name == "Walk"
}

// KernelEntry selects the batch-prediction kernels themselves (Predict*
// methods in internal/ml), so callers gauging compiler optimizations see
// the kernels even when interface dispatch would hide an edge.
func KernelEntry(n *Node) bool {
	if n.Decl == nil || !pathHasAny(n.Pkg.Path, "internal/ml") {
		return false
	}
	return strings.HasPrefix(n.Decl.Name.Name, "Predict") && ast.IsExported(n.Decl.Name.Name)
}

// Span is a line range within one file, 1-based and inclusive.
type Span struct {
	File      string
	StartLine int
	EndLine   int
}

// DataLoopSpans returns the source spans of n's data loops — for
// statements with an init/cond/post clause and ranges over non-channel
// values, the loops that iterate per data element rather than per
// message. Nested function literals are excluded: they are their own
// graph nodes. Spans of nested loops overlap their parents'.
func (p *Program) DataLoopSpans(n *Node) []Span {
	body := n.Body()
	if body == nil {
		return nil
	}
	var out []Span
	add := func(m ast.Node) {
		start := p.Fset.Position(m.Pos())
		end := p.Fset.Position(m.End())
		out = append(out, Span{File: start.Filename, StartLine: start.Line, EndLine: end.Line})
	}
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			if m != n.Lit {
				return false
			}
		case *ast.ForStmt:
			if m.Cond != nil || m.Init != nil || m.Post != nil {
				add(m)
			}
		case *ast.RangeStmt:
			if t := n.Pkg.Info.Types[m.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); !isChan {
					add(m)
				}
			}
		}
		return true
	})
	return out
}
