package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore comment.
type directive struct {
	// checks are the comma-separated analyzer names being suppressed.
	checks []string
	// reason is the mandatory justification.
	reason string
	// line is the line the comment ends on; the directive covers
	// findings on this line and the one directly below it.
	line int
	file string
	pos  token.Pos
}

// matches reports whether the directive suppresses a finding of the
// given check on the given line.
func (d directive) matches(check string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

const ignorePrefix = "lint:ignore"

// collectDirectives scans a file's comments for lint:ignore directives.
// Malformed directives (no check name, or no reason) are reported as
// findings of the synthetic "lint-directive" check so a typo cannot
// silently disable a gate.
func collectDirectives(fset *token.FileSet, f *ast.File, report func(Finding)) []directive {
	var out []directive
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			pos := fset.Position(c.Pos())
			end := fset.Position(c.End())
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if name == "" || reason == "" {
				report(Finding{
					Check:    "lint-directive",
					Severity: SeverityError,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  "malformed lint:ignore directive: want //lint:ignore check-name reason",
				})
				continue
			}
			out = append(out, directive{
				checks: strings.Split(name, ","),
				reason: reason,
				line:   end.Line,
				file:   pos.Filename,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// applyDirectives marks findings matched by a directive as suppressed
// and reports directives that suppressed nothing (stale ignores rot into
// blanket waivers otherwise). Findings and directives must belong to the
// same file set.
func applyDirectives(findings []Finding, directives []directive, report func(Finding)) {
	used := make([]bool, len(directives))
	for i := range findings {
		f := &findings[i]
		if f.Check == "lint-directive" {
			continue
		}
		// Same-line directives take priority over line-above ones so
		// consecutive annotated lines each consume their own directive.
		best := -1
		for di, d := range directives {
			if d.file != f.File || !d.matches(f.Check, f.Line) {
				continue
			}
			if d.line == f.Line {
				best = di
				break
			}
			if best == -1 {
				best = di
			}
		}
		if best >= 0 {
			f.Suppressed = true
			f.SuppressReason = directives[best].reason
			used[best] = true
		}
	}
	if report == nil {
		return
	}
	for di, d := range directives {
		if !used[di] {
			// Stale ignores rot into blanket waivers; flag them so they
			// get cleaned up. The driver only enables this when every
			// analyzer ran (a subset run cannot tell stale from dormant).
			report(Finding{
				Check:    "lint-directive",
				Severity: SeverityError,
				File:     d.file,
				Line:     d.line,
				Message:  "lint:ignore directive suppresses nothing (stale or misplaced)",
			})
		}
	}
}
