package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared machinery behind the kernel-shape checks
// (bounds-provable, pointer-chase, hot-indirect): one SSA + value-range
// scan per hot function, classified into the machine-level shapes that
// decide whether a data loop is kernel-grade — indexes the compiler can
// prove in bounds, no load-dependent loads, no dynamic dispatch per
// iteration. internal/perfgate consumes the same scan through
// Program.KernelReport to mint boundsProvable/chaseFree contracts.

// KernelCheckEntry is the entry predicate for the kernel-shape checks:
// the serving, kernel and cluster roots the perf gate already watches,
// plus exported functions in the checks' own corpus directories.
func KernelCheckEntry(n *Node) bool {
	if ServingEntry(n) || KernelEntry(n) || ClusterEntry(n) {
		return true
	}
	if n.Decl == nil || !ast.IsExported(n.Decl.Name.Name) {
		return false
	}
	return pathHasAny(n.Pkg.Path, "boundsprovable", "pointerchase", "hotindirect")
}

// kernelIndex is one index expression in a data loop.
type kernelIndex struct {
	Base, Index ast.Expr
	Pos         token.Pos
	// Proven: the range analysis established 0 <= Index < len(Base) on
	// every path reaching the expression.
	Proven bool
	// LoadDerived: the index's def chain passes through memory (a field
	// load, an element load, an opaque call). Such indexes are data, not
	// induction, and the bounds-provable check leaves them alone.
	LoadDerived bool
}

// kernelChase is one load-dependent load in a data loop.
type kernelChase struct {
	Pos    token.Pos
	Kind   string // "linked-traversal" | "double-index"
	Detail string
}

// kernelIndirect is one dynamically dispatched call in a data loop.
type kernelIndirect struct {
	Pos    token.Pos
	Kind   string // "interface-method" | "func-value"
	Detail string
}

// kernelScan is the classified result of scanning one function.
type kernelScan struct {
	Indexes   []kernelIndex
	Chases    []kernelChase
	Indirects []kernelIndirect
}

// KernelFacts summarizes a function's kernel shape for external
// consumers (internal/perfgate's contract generator).
type KernelFacts struct {
	// LoopIndexes counts slice/array index expressions inside data loops.
	LoopIndexes int
	// UnprovenIndexes counts those whose bounds the range analysis could
	// not prove, excluding load-derived indexes (which are data).
	UnprovenIndexes int
	// PointerChases counts load-dependent loads (linked traversals and
	// nested-slice element loads) inside data loops.
	PointerChases int
}

// KernelReport scans n's data loops and summarizes their kernel shape.
// The scan is intraprocedural; n must belong to this program.
func (p *Program) KernelReport(n *Node) KernelFacts {
	if n == nil || n.Body() == nil {
		return KernelFacts{}
	}
	pass := &Pass{
		Fset:  p.Fset,
		Files: n.Pkg.Files,
		Pkg:   n.Pkg.Types,
		Info:  n.Pkg.Info,
		Path:  n.Pkg.Path,
		Prog:  p,
	}
	scan := scanKernelFunc(pass, n)
	facts := KernelFacts{PointerChases: len(scan.Chases)}
	for _, ix := range scan.Indexes {
		facts.LoopIndexes++
		if !ix.Proven && !ix.LoadDerived {
			facts.UnprovenIndexes++
		}
	}
	return facts
}

// scanKernelFunc runs the SSA + range analysis over one function and
// classifies every kernel-shape event inside its data loops.
func scanKernelFunc(pass *Pass, n *Node) *kernelScan {
	body := n.Body()
	if body == nil || pass.Info == nil {
		return &kernelScan{}
	}
	s := pass.BuildSSA(n.Decl, n.Lit)
	r := NewRanges(s, pass)
	scan := &kernelScan{}

	scan.linkedTraversals(pass, s)

	var stack []ast.Node
	ast.Inspect(body, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, isLit := m.(*ast.FuncLit); isLit && lit != n.Lit {
			return false // literals are their own graph nodes
		}
		if inDataLoop(n.Pkg, stack) {
			switch m := m.(type) {
			case *ast.IndexExpr:
				scan.classifyIndex(pass, s, r, m, stack)
			case *ast.CallExpr:
				scan.classifyCall(pass, m)
			}
		}
		stack = append(stack, m)
		return true
	})
	return scan
}

// classifyIndex records a slice/array index event and, when the indexed
// base is a slice of slices loaded per iteration, a double-index chase.
func (sc *kernelScan) classifyIndex(pass *Pass, s *SSA, r *Ranges, ix *ast.IndexExpr, stack []ast.Node) {
	if !sliceOrArray(pass, ix.X) {
		return
	}
	b := s.BlockOf(ix.Index)
	if b == nil {
		b = s.BlockOf(ix.X)
	}
	proven := false
	if b != nil {
		proven = r.ProveIndex(ix.X, ix.Index, b)
	}
	sc.Indexes = append(sc.Indexes, kernelIndex{
		Base:        ix.X,
		Index:       ix.Index,
		Pos:         ix.Index.Pos(),
		Proven:      proven,
		LoadDerived: loadDerivedExpr(s, ix.Index),
	})

	// Double-index load: s[a][b] with s a slice of slices walks a row
	// pointer per iteration where one flat backing array would not.
	// Pure stores (out[i][c] = v) keep the row in a register and are
	// exempt; compound assignments read first and are not.
	inner, ok := ast.Unparen(ix.X).(*ast.IndexExpr)
	if !ok || !isSliceOfSlices(pass, inner.X) {
		return
	}
	if isPlainStoreTarget(ix, stack) {
		return
	}
	sc.Chases = append(sc.Chases, kernelChase{
		Pos:    ix.Pos(),
		Kind:   "double-index",
		Detail: pass.ExprString(ix),
	})
}

// isSliceOfSlices reports whether e's type is a slice whose element is
// itself a slice (the [][]T row-pointer layout; arrays are flat and do
// not count).
func isSliceOfSlices(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, elemSlice := sl.Elem().Underlying().(*types.Slice)
	return elemSlice
}

// isPlainStoreTarget reports whether e appears directly as an LHS of a
// plain (non-compound) assignment.
func isPlainStoreTarget(e ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || (assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE) {
		return false
	}
	for _, l := range assign.Lhs {
		if ast.Unparen(l) == e {
			return true
		}
	}
	return false
}

// classifyCall records dynamically dispatched calls: interface method
// calls and calls through func-typed values (closures included).
func (sc *kernelScan) classifyCall(pass *Pass, call *ast.CallExpr) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fn]; ok {
			if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				sc.Indirects = append(sc.Indirects, kernelIndirect{
					Pos:    call.Pos(),
					Kind:   "interface-method",
					Detail: pass.ExprString(fn),
				})
			}
			return
		}
		// Not a method selection: a package-qualified function (static)
		// or a func-typed struct field (dynamic).
		if obj := pass.Info.Uses[fn.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				return
			}
		}
		if isFuncValue(pass, fn) {
			sc.Indirects = append(sc.Indirects, kernelIndirect{
				Pos:    call.Pos(),
				Kind:   "func-value",
				Detail: pass.ExprString(fn),
			})
		}
	case *ast.Ident:
		obj := pass.Info.Uses[fn]
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return // direct call, builtin, or conversion
		}
		if isFuncValue(pass, fn) {
			sc.Indirects = append(sc.Indirects, kernelIndirect{
				Pos:    call.Pos(),
				Kind:   "func-value",
				Detail: fn.Name,
			})
		}
	}
}

func isFuncValue(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// linkedTraversals finds loop-carried pointer phis advanced through a
// field load of themselves — `p = p.Next` — the linked-list walk whose
// every iteration is a dependent load. Advancing through `&slice[i]`
// is already the flat layout and does not flag.
func (sc *kernelScan) linkedTraversals(pass *Pass, s *SSA) {
	for _, phi := range s.Values {
		if phi.Kind != ValPhi || !isPointerVar(phi.Var) {
			continue
		}
		for j, arg := range phi.Args {
			if !phi.ArgBack[j] || arg == nil {
				continue
			}
			def := chaseCopies(s, arg, 0)
			if def == nil || def.Kind != ValDef {
				continue
			}
			base, path := selectorChain(def.Expr)
			if base == nil || path == "" {
				continue
			}
			if use := s.UseOf(base); use != nil && chaseCopies(s, use, 0) == chaseCopies(s, phi, 0) {
				sc.Chases = append(sc.Chases, kernelChase{
					Pos:    def.Expr.Pos(),
					Kind:   "linked-traversal",
					Detail: base.Name + "." + path,
				})
			}
		}
	}
}

func isPointerVar(v *types.Var) bool {
	if v == nil {
		return false
	}
	_, ok := v.Type().Underlying().(*types.Pointer)
	return ok
}

// selectorChain decomposes p.Next.Next into (p, "Next.Next"); any other
// shape returns nils.
func selectorChain(e ast.Expr) (*ast.Ident, string) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			e = x.X
		case *ast.Ident:
			if len(parts) == 0 {
				return nil, ""
			}
			return x, strings.Join(parts, ".")
		default:
			return nil, ""
		}
	}
}

// chaseCopies follows plain copies (x := y) to the originating value,
// so `q := p; p = q.Next` still closes the traversal cycle.
func chaseCopies(s *SSA, v *Value, depth int) *Value {
	for depth < 16 && v != nil && v.Kind == ValDef {
		id, ok := ast.Unparen(v.Expr).(*ast.Ident)
		if !ok {
			return v
		}
		next := s.UseOf(id)
		if next == nil {
			return v
		}
		v = next
		depth++
	}
	return v
}

// loadDerivedExpr reports whether e's value passes through memory: an
// element or field load, an opaque call, an untracked variable. Such
// indexes are data-dependent; the bounds-provable check exempts them
// (the compiler cannot eliminate those checks either, and no loop
// restructuring would change that).
func loadDerivedExpr(s *SSA, e ast.Expr) bool {
	visited := make(map[*Value]bool)
	var exprLoads func(e ast.Expr, depth int) bool
	var valueLoads func(v *Value, depth int) bool

	exprLoads = func(e ast.Expr, depth int) bool {
		if depth > 32 || e == nil {
			return true
		}
		e = ast.Unparen(e)
		if cv := s.pass.ConstValue(e); cv != nil {
			return false
		}
		switch e := e.(type) {
		case *ast.Ident:
			return valueLoads(s.UseOf(e), depth+1)
		case *ast.BinaryExpr:
			return exprLoads(e.X, depth+1) || exprLoads(e.Y, depth+1)
		case *ast.UnaryExpr:
			if e.Op == token.ADD || e.Op == token.SUB || e.Op == token.XOR {
				return exprLoads(e.X, depth+1)
			}
			return true
		case *ast.CallExpr:
			if isBuiltinCall(s.pass, e, "len") || isBuiltinCall(s.pass, e, "cap") {
				return false
			}
			if s.pass.Info != nil {
				if tv, ok := s.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
					return exprLoads(e.Args[0], depth+1)
				}
			}
			return true
		}
		return true
	}
	valueLoads = func(v *Value, depth int) bool {
		if v == nil || depth > 32 {
			return true
		}
		if visited[v] {
			return false // cycle through a phi: no load on this path
		}
		visited[v] = true
		switch v.Kind {
		case ValParam, ValZero, ValRangeKey:
			return false
		case ValDef:
			return exprLoads(v.Expr, depth+1)
		case ValOpAssign:
			return valueLoads(v.Prev, depth+1) || exprLoads(v.Expr, depth+1)
		case ValIncDec:
			return valueLoads(v.Prev, depth+1)
		case ValPhi:
			for _, a := range v.Args {
				if valueLoads(a, depth+1) {
					return true
				}
			}
			return false
		}
		// ValRangeVal, ValOpaque, ValUnknown: memory or unmodelable.
		return true
	}
	return exprLoads(e, 0)
}
