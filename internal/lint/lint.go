// Package lint is SPATIAL's project-specific static-analysis suite. It
// enforces, at review time, the invariants the paper's evaluation depends
// on but no compiler checks: reproducibility of fixed-seed experiments
// (Tables IV-VII), bounded metric-label cardinality in the telemetry
// plane, X-Trace-Id context propagation across the micro-service tiers,
// exact-float comparison discipline in the numeric kernels, goroutine
// lifecycle hygiene under heavy concurrent traffic, and error-checking on
// the server tiers' I/O edges.
//
// The framework is built from scratch on the standard library's go/ast,
// go/parser, and go/types packages — the repository stays free of
// external dependencies. Analyzers implement the Analyzer interface and
// run over fully type-checked packages; findings can be suppressed inline
// with a justified directive:
//
//	//lint:ignore check-name reason for suppressing
//
// placed on the offending line or on the line directly above it. A
// directive without a reason is itself reported.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Severity ranks a finding's gate weight: error findings always fail the
// build, warn findings fail at the default gate, info findings are
// advisory.
type Severity string

const (
	SeverityError Severity = "error"
	SeverityWarn  Severity = "warn"
	SeverityInfo  Severity = "info"
)

// rank orders severities for gating; unknown severities gate like error
// so a typo cannot silently soften a check.
func (s Severity) rank() int {
	switch s {
	case SeverityInfo:
		return 0
	case SeverityWarn:
		return 1
	default:
		return 2
	}
}

// AtLeast reports whether s gates at or above min.
func (s Severity) AtLeast(min Severity) bool { return s.rank() >= min.rank() }

// Edit is one textual replacement inside a finding's file: the byte
// range [Start, End) is replaced by New. Offsets are relative to the
// file's content at analysis time.
type Edit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Check is the analyzer name, e.g. "float-eq".
	Check string `json:"check"`
	// Severity is the analyzer's gate weight ("error", "warn", "info").
	Severity Severity `json:"severity"`
	// File is the path of the offending file (module-root relative when
	// produced by the driver).
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the violation and how to fix it.
	Message string `json:"message"`
	// Suppressed marks findings matched by a lint:ignore directive;
	// SuppressReason carries the directive's justification.
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppressReason,omitempty"`
	// Baselined marks findings matched by the committed baseline file:
	// known legacy debt that is tracked but does not gate CI.
	Baselined bool `json:"baselined,omitempty"`
	// Edits, when non-empty, is a mechanical fix applied by `-fix`.
	Edits []Edit `json:"edits,omitempty"`
}

// String renders the canonical "file:line:col: severity [check] message"
// form (severity omitted when unset, for findings built outside a pass).
func (f Finding) String() string {
	if f.Severity == "" {
		return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s] %s", f.File, f.Line, f.Col, f.Severity, f.Check, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the check in findings and ignore directives.
	Name string
	// Doc is a one-line description shown by `spatial-lint -list`.
	Doc string
	// Severity is the gate weight of this analyzer's findings;
	// SeverityError when empty.
	Severity Severity
	// AppliesTo reports whether the analyzer runs on the given import
	// path; nil means every package. The driver additionally runs every
	// analyzer on packages under the lint testdata corpus so golden
	// files exercise scoped checks.
	AppliesTo func(pkgPath string) bool
	// IncludeTests opts the analyzer into test packages (in-package
	// _test.go files and external package foo_test files). Resource- and
	// concurrency-safety checks set it; style/scope checks whose failure
	// modes only matter in production code leave it false.
	IncludeTests bool
	// Run inspects the package and reports findings through the pass.
	// Nil for whole-program analyzers, which set RunProgram instead.
	Run func(*Pass)
	// RunProgram, when set, runs once over the whole-module Program
	// (call graph + summaries) instead of per package. The driver maps
	// its findings back into the owning packages so suppression
	// directives and baselines apply uniformly.
	RunProgram func(*ProgramPass)
	// NeedsProgram requests that the driver build the Program and expose
	// it as Pass.Prog even for per-package analyzers (ctx-leak and
	// body-leak consult callee summaries for ownership transfer).
	NeedsProgram bool
}

// EffectiveSeverity resolves the analyzer's gate weight, defaulting to
// error.
func (a *Analyzer) EffectiveSeverity() Severity {
	if a.Severity == "" {
		return SeverityError
	}
	return a.Severity
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package import path.
	Path string
	// Prog is the whole-module view (call graph + summaries), set when
	// the run built one; nil otherwise. Analyzers consulting it must
	// degrade gracefully to their conservative intraprocedural behavior.
	Prog *Program

	findings *[]Finding
}

// ProgramPass carries one whole-program analyzer's run.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	findings *[]Finding
}

// Reportf records a program-level finding at pos.
func (pp *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := pp.Prog.Fset.Position(pos)
	*pp.findings = append(*pp.findings, Finding{
		Check:    pp.Analyzer.Name,
		Severity: pp.Analyzer.EffectiveSeverity(),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PassFor adapts the program pass to one package, so program analyzers
// can reuse the per-package helper surface (CFGs, expression printing).
func (pp *ProgramPass) PassFor(pkg *Package) *Pass {
	return &Pass{
		Analyzer: pp.Analyzer,
		Fset:     pp.Prog.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		Prog:     pp.Prog,
		findings: pp.findings,
	}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportEditsf(pos, nil, format, args...)
}

// ReportEditsf records a finding at pos carrying a mechanical fix that
// `-fix` can apply.
func (p *Pass) ReportEditsf(pos token.Pos, edits []Edit, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Check:    p.Analyzer.Name,
		Severity: p.Analyzer.EffectiveSeverity(),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Edits:    edits,
	})
}

// fileFor returns the syntax file containing pos.
func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// TypeOf returns the type of e, or nil when type information is
// unavailable (tolerant type-checking keeps analyzers running on
// partially broken code).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ConstValue returns the constant value of e, or nil when e is not a
// compile-time constant.
func (p *Pass) ConstValue(e ast.Expr) constant.Value {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// PkgFunc resolves a call to a package-level function and reports its
// package import path and function name (e.g. "time", "Now"). It prefers
// type information and falls back to matching the file's imports so the
// testdata corpus keeps working even when type-checking is incomplete.
func (p *Pass) PkgFunc(call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if p.Info != nil {
		if obj, found := p.Info.Uses[ident]; found {
			if pn, isPkg := obj.(*types.PkgName); isPkg {
				return pn.Imported().Path(), sel.Sel.Name, true
			}
			return "", "", false // a variable or type, not a package qualifier
		}
	}
	// Syntactic fallback: does any import of the enclosing file bind this
	// name?
	f := p.fileFor(call.Pos())
	if f == nil {
		return "", "", false
	}
	for _, imp := range f.Imports {
		ipath := strings.Trim(imp.Path.Value, `"`)
		local := ipath[strings.LastIndex(ipath, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == ident.Name {
			return ipath, sel.Sel.Name, true
		}
	}
	return "", "", false
}

// MethodCall resolves a call to a method invocation, reporting the
// receiver type and the method name. ok is false for plain function
// calls and package-qualified calls.
func (p *Pass) MethodCall(call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if p.Info != nil {
		if s, found := p.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
			return s.Recv(), sel.Sel.Name, true
		}
	}
	return nil, "", false
}

// namedPath reports the package path and type name of t, unwrapping one
// pointer level. It returns "" paths for unnamed or builtin types.
func namedPath(t types.Type) (pkgPath, typeName string) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t has a floating-point underlying kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsFloat != 0
}

// pathHasAny reports whether the import path contains one of the given
// segments, used by analyzers to scope themselves to subsystems.
func pathHasAny(path string, segments ...string) bool {
	for _, s := range segments {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

// ExprString renders an expression to canonical source text, used as a
// stable intraprocedural key (two syntactically identical receiver
// expressions in one function denote the same lock).
func (p *Pass) ExprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return fmt.Sprintf("%T@%d", e, e.Pos())
	}
	return buf.String()
}

// Offset maps pos to its byte offset within its file, for building
// Edits. It returns -1 when the position is unknown.
func (p *Pass) Offset(pos token.Pos) int {
	if !pos.IsValid() {
		return -1
	}
	return p.Fset.Position(pos).Offset
}

// lineIndent returns the leading whitespace of the line containing pos
// (for splicing new statements that match the surrounding indentation).
// gofmt indents with tabs, so the column count minus one is the depth.
func (p *Pass) lineIndent(pos token.Pos) string {
	position := p.Fset.Position(pos)
	if position.Column < 1 {
		return ""
	}
	return strings.Repeat("\t", position.Column-1)
}

// fnBody is one analyzable function: a declaration or a function
// literal. Flow-sensitive analyzers treat each independently; literal
// bodies are opaque statements in their enclosing function's CFG.
type fnBody struct {
	// Name is the declared name, or "func literal" for literals.
	Name string
	// Decl is non-nil for declared functions.
	Decl *ast.FuncDecl
	// Lit is non-nil for function literals.
	Lit *ast.FuncLit
	// Type is the signature syntax.
	Type *ast.FuncType
	// Body is the statement list analyzed.
	Body *ast.BlockStmt
}

// functionBodies collects every function declaration and function
// literal in the package, each as an independently analyzable unit.
func (p *Pass) functionBodies() []fnBody {
	var out []fnBody
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, fnBody{Name: n.Name.Name, Decl: n, Type: n.Type, Body: n.Body})
				}
			case *ast.FuncLit:
				out = append(out, fnBody{Name: "func literal", Lit: n, Type: n.Type, Body: n.Body})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n like ast.Inspect but does not descend into
// function literals, which are separate functions to the flow-sensitive
// analyzers. When n itself is a *ast.FuncLit it is skipped entirely.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}

// releaseCaptured invokes release on every identifier referenced inside
// any function literal under n. Flow-sensitive resource analyzers use it
// to hand the tracked obligation to closures, which may run after the
// enclosing function returns.
func releaseCaptured(n ast.Node, release func(ast.Expr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(k ast.Node) bool {
			if id, isIdent := k.(*ast.Ident); isIdent {
				release(id)
			}
			return true
		})
		return false
	})
}

// useVar resolves an identifier expression to the variable it names, or
// nil for non-identifiers and non-variables.
func (p *Pass) useVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || p.Info == nil {
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}
