// Package lint is SPATIAL's project-specific static-analysis suite. It
// enforces, at review time, the invariants the paper's evaluation depends
// on but no compiler checks: reproducibility of fixed-seed experiments
// (Tables IV-VII), bounded metric-label cardinality in the telemetry
// plane, X-Trace-Id context propagation across the micro-service tiers,
// exact-float comparison discipline in the numeric kernels, goroutine
// lifecycle hygiene under heavy concurrent traffic, and error-checking on
// the server tiers' I/O edges.
//
// The framework is built from scratch on the standard library's go/ast,
// go/parser, and go/types packages — the repository stays free of
// external dependencies. Analyzers implement the Analyzer interface and
// run over fully type-checked packages; findings can be suppressed inline
// with a justified directive:
//
//	//lint:ignore check-name reason for suppressing
//
// placed on the offending line or on the line directly above it. A
// directive without a reason is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Check is the analyzer name, e.g. "float-eq".
	Check string `json:"check"`
	// File is the path of the offending file (module-root relative when
	// produced by the driver).
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the violation and how to fix it.
	Message string `json:"message"`
	// Suppressed marks findings matched by a lint:ignore directive;
	// SuppressReason carries the directive's justification.
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppressReason,omitempty"`
}

// String renders the canonical "file:line:col: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the check in findings and ignore directives.
	Name string
	// Doc is a one-line description shown by `spatial-lint -list`.
	Doc string
	// AppliesTo reports whether the analyzer runs on the given import
	// path; nil means every package. The driver additionally runs every
	// analyzer on packages under the lint testdata corpus so golden
	// files exercise scoped checks.
	AppliesTo func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package import path.
	Path string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// fileFor returns the syntax file containing pos.
func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// TypeOf returns the type of e, or nil when type information is
// unavailable (tolerant type-checking keeps analyzers running on
// partially broken code).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ConstValue returns the constant value of e, or nil when e is not a
// compile-time constant.
func (p *Pass) ConstValue(e ast.Expr) constant.Value {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// PkgFunc resolves a call to a package-level function and reports its
// package import path and function name (e.g. "time", "Now"). It prefers
// type information and falls back to matching the file's imports so the
// testdata corpus keeps working even when type-checking is incomplete.
func (p *Pass) PkgFunc(call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if p.Info != nil {
		if obj, found := p.Info.Uses[ident]; found {
			if pn, isPkg := obj.(*types.PkgName); isPkg {
				return pn.Imported().Path(), sel.Sel.Name, true
			}
			return "", "", false // a variable or type, not a package qualifier
		}
	}
	// Syntactic fallback: does any import of the enclosing file bind this
	// name?
	f := p.fileFor(call.Pos())
	if f == nil {
		return "", "", false
	}
	for _, imp := range f.Imports {
		ipath := strings.Trim(imp.Path.Value, `"`)
		local := ipath[strings.LastIndex(ipath, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == ident.Name {
			return ipath, sel.Sel.Name, true
		}
	}
	return "", "", false
}

// MethodCall resolves a call to a method invocation, reporting the
// receiver type and the method name. ok is false for plain function
// calls and package-qualified calls.
func (p *Pass) MethodCall(call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if p.Info != nil {
		if s, found := p.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
			return s.Recv(), sel.Sel.Name, true
		}
	}
	return nil, "", false
}

// namedPath reports the package path and type name of t, unwrapping one
// pointer level. It returns "" paths for unnamed or builtin types.
func namedPath(t types.Type) (pkgPath, typeName string) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t has a floating-point underlying kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsFloat != 0
}

// pathHasAny reports whether the import path contains one of the given
// segments, used by analyzers to scope themselves to subsystems.
func pathHasAny(path string, segments ...string) bool {
	for _, s := range segments {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}
