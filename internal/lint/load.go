package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/ml"). External test
	// packages carry the compiler's convention ("repro/internal/ml_test").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files are the parsed sources to analyze, sorted by file name. For
	// test packages these are the _test.go files only, even though
	// in-package tests are type-checked together with the base sources.
	Files []*ast.File
	// IsTest marks in-package and external test packages.
	IsTest bool
	// Types and Info carry the (tolerant) type-check results; Info maps
	// are always non-nil, but entries may be missing for code that did
	// not type-check.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics. Analysis proceeds
	// regardless: the analyzers degrade to syntactic matching where type
	// information is absent.
	TypeErrors []error
}

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports are type-checked recursively from
// source, everything else (the standard library) is delegated to
// go/importer's source importer. A Loader is safe for concurrent use;
// each package is type-checked exactly once no matter how many
// goroutines request it.
type Loader struct {
	// Dir is the directory patterns are resolved against; the module
	// root is discovered from it. Defaults to the working directory.
	Dir string
	// Tests additionally loads each matched directory's test packages:
	// the in-package augmentation (foo + foo's _test.go files) and the
	// external test package (package foo_test). Directories holding only
	// test files — skipped entirely before — are matched too.
	Tests bool

	fset    *token.FileSet
	modPath string
	modRoot string

	initOnce sync.Once
	initErr  error

	std   types.Importer
	stdMu sync.Mutex // go/importer's source importer is not documented as concurrency-safe

	// entries caches package loads by import path. The first goroutine to
	// request a path installs an entry and loads; later ones wait on done.
	mu      sync.Mutex
	entries map[string]*loadEntry
	// checks counts types.Config.Check invocations per cache key, so
	// tests can assert shared dependencies are type-checked once.
	checks map[string]int
}

// loadEntry is one in-flight or completed package load.
type loadEntry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// init prepares the loader on first use.
func (l *Loader) init() error {
	l.initOnce.Do(func() {
		dir := l.Dir
		if dir == "" {
			dir = "."
		}
		root, err := ModuleRoot(dir)
		if err != nil {
			l.initErr = err
			return
		}
		mod, err := modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			l.initErr = err
			return
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			l.initErr = err
			return
		}
		l.Dir = abs
		l.modRoot = root
		l.modPath = mod
		l.fset = token.NewFileSet()
		l.std = importer.ForCompiler(l.fset, "source", nil)
		l.entries = make(map[string]*loadEntry)
		l.checks = make(map[string]int)
	})
	return l.initErr
}

// Fset exposes the loader's file set for rendering positions.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// CheckCounts reports how many times each cache key was type-checked
// since the loader was created. Base packages are keyed by import path;
// test augmentations carry a " [test]" or "_test" suffix.
func (l *Loader) CheckCounts() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.checks))
	for k, v := range l.checks {
		out[k] = v
	}
	return out
}

func (l *Loader) countCheck(key string) {
	l.mu.Lock()
	l.checks[key]++
	l.mu.Unlock()
}

// Load resolves patterns ("./...", "./internal/ml", absolute or relative
// directories) into parsed, type-checked packages. Directories named
// "testdata" or starting with "." or "_" are skipped during "..."
// expansion but honored when named directly. With Tests set, each
// directory may yield up to three packages: the base package, the
// in-package test augmentation, and the external _test package.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	// Load root directories in parallel: the per-path cache guarantees
	// each package is still type-checked once, and shared dependencies
	// are awaited rather than redone.
	perDir := make([][]*Package, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			base, err := l.loadDir(dir)
			if err != nil {
				errs[i] = err
				return
			}
			if base != nil && len(base.Files) > 0 {
				perDir[i] = append(perDir[i], base)
			}
			if l.Tests {
				tests, err := l.loadTestPackages(dir, base)
				if err != nil {
					errs[i] = err
					return
				}
				perDir[i] = append(perDir[i], tests...)
			}
		}(i, dir)
	}
	wg.Wait()
	var pkgs []*Package
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pkgs = append(pkgs, perDir[i]...)
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		return !pkgs[i].IsTest && pkgs[j].IsTest
	})
	return pkgs, nil
}

// expand turns patterns into a sorted, de-duplicated list of absolute
// package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.Dir
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.Dir, pat)
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err = filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			matches, _ := filepath.Glob(filepath.Join(p, "*.go"))
			for _, m := range matches {
				// A directory with only _test.go files is still a package
				// worth analyzing when tests are in scope (the repo root's
				// external benchmark package is exactly this shape).
				if l.Tests || !strings.HasSuffix(m, "_test.go") {
					add(p)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (Files is empty when
// the directory holds no non-test Go files).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir, nil)
}

// loadPath is the cached, concurrency-safe package load; the importer
// below funnels module-internal imports through it so every package is
// type-checked exactly once per loader. chain carries the import path
// stack of the requesting type-check for cycle detection.
func (l *Loader) loadPath(path, dir string, chain []string) (*Package, error) {
	for _, p := range chain {
		if p == path {
			return nil, fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), path)
		}
	}
	l.mu.Lock()
	if e, ok := l.entries[path]; ok {
		l.mu.Unlock()
		// Wait for a concurrent load of the same path. Valid Go import
		// graphs are DAGs, so waiting cannot deadlock across goroutines;
		// same-goroutine cycles were caught by the chain check above.
		<-e.done
		return e.pkg, e.err
	}
	e := &loadEntry{done: make(chan struct{})}
	l.entries[path] = e
	l.mu.Unlock()

	e.pkg, e.err = l.doLoad(path, dir, chain)
	close(e.done)
	return e.pkg, e.err
}

// doLoad performs the uncached parse + type-check for one package.
func (l *Loader) doLoad(path, dir string, chain []string) (*Package, error) {
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	if len(files) == 0 {
		return pkg, nil
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: &moduleImporter{l: l, chain: append(chain, path)},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Tolerant check: Check returns the (possibly incomplete) package
	// even on error; analyzers fall back to syntax where Info is sparse.
	l.countCheck(path)
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// loadTestPackages loads the test packages for dir: the in-package
// augmentation (base sources + same-package _test.go files, with
// findings reported only for the test files) and the external
// package_test package. base may be nil or file-less for directories
// holding only tests.
func (l *Loader) loadTestPackages(dir string, base *Package) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	testFiles, err := l.parseDir(dir, func(name string) bool {
		return strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(testFiles) == 0 {
		return nil, nil
	}
	var inPkg, extPkg []*ast.File
	for _, f := range testFiles {
		if strings.HasSuffix(f.Name.Name, "_test") {
			extPkg = append(extPkg, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var out []*Package
	if len(inPkg) > 0 {
		// Type-check base and test sources together so test files see the
		// package's unexported declarations, but analyze only the tests —
		// the base package already had its own pass.
		all := inPkg
		if base != nil {
			all = append(append([]*ast.File{}, base.Files...), inPkg...)
		}
		pkg, err := l.checkFiles(path, path+" [test]", dir, all)
		if err != nil {
			return nil, err
		}
		pkg.Files = inPkg
		pkg.IsTest = true
		out = append(out, pkg)
	}
	if len(extPkg) > 0 {
		pkg, err := l.checkFiles(path+"_test", path+"_test", dir, extPkg)
		if err != nil {
			return nil, err
		}
		pkg.IsTest = true
		out = append(out, pkg)
	}
	return out, nil
}

// checkFiles type-checks an ad-hoc file list under the given import path
// (test packages are never imported, so they bypass the cache).
func (l *Loader) checkFiles(path, key, dir string, files []*ast.File) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer: &moduleImporter{l: l, chain: []string{key}},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	l.countCheck(key)
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// parseDir parses the Go files in dir matching keep, sorted by name.
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || !keep(name) {
			continue
		}
		// token.FileSet and the parser are safe for concurrent use with a
		// shared fset.
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// moduleImporter resolves module-internal import paths from source via
// the loader and delegates everything else to the standard library's
// source importer. chain records the import stack of the type-check it
// serves, for cycle reporting.
type moduleImporter struct {
	l     *Loader
	chain []string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.loadPath(path, dir, m.chain)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	//lint:ignore lock-order l.std is the stdlib source importer, never a moduleImporter; CHA over-approximates the interface call
	return l.std.Import(path)
}
