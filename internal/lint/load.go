package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/ml").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the (tolerant) type-check results; Info maps
	// are always non-nil, but entries may be missing for code that did
	// not type-check.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics. Analysis proceeds
	// regardless: the analyzers degrade to syntactic matching where type
	// information is absent.
	TypeErrors []error
}

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports are type-checked recursively from
// source, everything else (the standard library) is delegated to
// go/importer's source importer.
type Loader struct {
	// Dir is the directory patterns are resolved against; the module
	// root is discovered from it. Defaults to the working directory.
	Dir string

	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	// loaded caches fully processed packages by import path; loading
	// guards against import cycles (which the compiler rejects anyway).
	loaded  map[string]*Package
	loading map[string]bool
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// init prepares the loader on first use.
func (l *Loader) init() error {
	if l.fset != nil {
		return nil
	}
	dir := l.Dir
	if dir == "" {
		dir = "."
	}
	root, err := ModuleRoot(dir)
	if err != nil {
		return err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	l.Dir = abs
	l.modRoot = root
	l.modPath = mod
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil)
	l.loaded = make(map[string]*Package)
	l.loading = make(map[string]bool)
	return nil
}

// Fset exposes the loader's file set for rendering positions.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns ("./...", "./internal/ml", absolute or relative
// directories) into parsed, type-checked packages. Directories named
// "testdata" or starting with "." or "_" are skipped during "..."
// expansion but honored when named directly.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil && len(pkg.Files) > 0 {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand turns patterns into a sorted, de-duplicated list of absolute
// package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.Dir
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.Dir, pat)
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err = filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			matches, _ := filepath.Glob(filepath.Join(p, "*.go"))
			for _, m := range matches {
				if !strings.HasSuffix(m, "_test.go") {
					add(p)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (nil when the
// directory holds no non-test Go files).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

// loadPath is the cached package load; the importer below funnels
// module-internal imports through it so every package is type-checked
// exactly once per loader.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	if len(files) == 0 {
		l.loaded[path] = pkg
		return pkg, nil
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Tolerant check: Check returns the (possibly incomplete) package
	// even on error; analyzers fall back to syntax where Info is sparse.
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.loaded[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal import paths from source via
// the loader and delegates everything else to the standard library's
// source importer.
type moduleImporter struct{ l *Loader }

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
