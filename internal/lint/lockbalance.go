package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerLockBalance flags a sync.Mutex/RWMutex Lock (or RLock) that is
// not paired with an Unlock on every path out of the function — the
// mutex-held-across-early-return bug that deadlocks the serving worker
// pools and the registry under load, which AST-level checks cannot see.
// The analysis is a forward may-held dataflow over the function's CFG:
// Lock adds the receiver to the held set, Unlock (direct or deferred)
// removes it, and any lock still held at the normal exit is reported at
// its acquisition site. Functions that are themselves lock wrappers
// (named Lock/Unlock/...) or that use TryLock are skipped.
var AnalyzerLockBalance = &Analyzer{
	Name:         "lock-balance",
	Doc:          "flags sync mutex locks without a matching unlock on some path out of the function",
	Severity:     SeverityError,
	IncludeTests: true,
	Run:          runLockBalance,
}

// lockVerbs are function names exempted from the balance requirement:
// a type wrapping a mutex legitimately returns holding it.
var lockVerbs = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true, "lock": true, "unlock": true,
}

func runLockBalance(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, fn := range p.functionBodies() {
		if lockVerbs[fn.Name] {
			continue
		}
		checkLockBalance(p, fn)
	}
}

// lockOp classifies one mutex call inside a function.
type lockOp struct {
	key     string // receiver expression text, ":r"-suffixed for RLock/RUnlock
	acquire bool
	call    *ast.CallExpr
}

// resolveLockOp recognizes calls to the sync package's lock methods
// (including through embedded mutexes and sync.Locker values).
func resolveLockOp(p *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	var acquire, read bool
	switch name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	s, found := p.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	key := p.ExprString(sel.X)
	if read {
		key += ":r"
	}
	return lockOp{key: key, acquire: acquire, call: call}, true
}

func checkLockBalance(p *Pass, fn fnBody) {
	// A function using TryLock acquires conditionally; the textual-key
	// model cannot prove balance there, so stay silent.
	usesTry := false
	inspectShallow(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "TryLock" || sel.Sel.Name == "TryRLock" {
				usesTry = true
			}
		}
		return !usesTry
	})
	if usesTry {
		return
	}

	g := p.BuildCFG(fn.Body)

	// Prepass for the autofix decision: how many releases does each key
	// have anywhere in the function (deferred closures included)?
	releases := make(map[string]int)
	lockStmts := make(map[string]ast.Stmt) // key -> the Lock's statement, entry block only
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := resolveLockOp(p, call); ok && !op.acquire {
					releases[op.key]++
				}
				return true
			})
		}
	}
	for _, node := range g.Entry.Nodes {
		stmt, ok := node.(ast.Stmt)
		if !ok {
			continue
		}
		inspectShallow(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := resolveLockOp(p, call); ok && op.acquire {
					lockStmts[op.key] = stmt
				}
			}
			return true
		})
	}

	step := func(node ast.Node, held map[string]int) map[string]int {
		out := held
		copied := false
		mutate := func() {
			if !copied {
				copied = true
				out = cloneFacts(held)
			}
		}
		if def, ok := node.(*ast.DeferStmt); ok {
			// Releases inside a defer (directly or via a closure) are
			// guaranteed on every subsequent exit; model them as
			// releasing at the defer site.
			ast.Inspect(def, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := resolveLockOp(p, call); ok && !op.acquire {
						mutate()
						delete(out, op.key)
					}
				}
				return true
			})
			return out
		}
		inspectShallow(node, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, ok := resolveLockOp(p, call)
			if !ok {
				return true
			}
			mutate()
			if op.acquire {
				if _, already := out[op.key]; !already {
					out[op.key] = int(call.Pos())
				}
			} else {
				delete(out, op.key)
			}
			return true
		})
		return out
	}

	facts := Solve(g, FlowProblem[map[string]int]{
		Boundary: func() map[string]int { return map[string]int{} },
		Init:     func() map[string]int { return map[string]int{} },
		Meet:     func(a, b map[string]int) map[string]int { return unionFacts(a, b, keepEarlier) },
		Equal:    equalFacts[string, int],
		Transfer: func(b *Block, f map[string]int) map[string]int {
			for _, node := range b.Nodes {
				f = step(node, f)
			}
			return f
		},
	})

	for key, pos := range facts[g.Exit].In {
		display := key
		verb := "Unlock"
		if k, isRead := cutSuffix(key, ":r"); isRead {
			display = k
			verb = "RUnlock"
		}
		var edits []Edit
		if releases[key] == 0 {
			if stmt, ok := lockStmts[key]; ok {
				at := p.Offset(stmt.End())
				if at >= 0 {
					edits = []Edit{{
						Start: at,
						End:   at,
						New:   "\n" + p.lineIndent(stmt.Pos()) + "defer " + display + "." + verb + "()",
					}}
				}
			}
		}
		p.ReportEditsf(token.Pos(pos), edits,
			"%s locked here is not released on every path out of %s; add %s.%s() (or defer it) before each return",
			display, fn.Name, display, verb)
	}
}

// cutSuffix is strings.CutSuffix shaped for the lock-key tag.
func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}
