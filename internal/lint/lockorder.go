package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AnalyzerLockOrder builds a module-global lock-order graph and flags
// cycles — the cross-function deadlock the per-function lock-balance
// check cannot see. Locks are canonicalized to type-level keys
// ("serving.Runtime.mu", "telemetry.Registry.mu"): an edge A -> B means
// some function may acquire B while holding A, either directly or by
// calling into a function whose summary says it may acquire B. Two
// functions disagreeing about the order (a cycle in the graph) can
// deadlock under concurrency: one goroutine holds A waiting for B while
// another holds B waiting for A. Keys are instance-insensitive, so two
// different values of the same type share a key — a self-edge therefore
// also flags the "same type locked twice" shape, which needs an
// explicit global acquisition order to be safe.
var AnalyzerLockOrder = &Analyzer{
	Name:       "lock-order",
	Doc:        "flags lock-order cycles across functions (potential deadlocks)",
	Severity:   SeverityError,
	RunProgram: runLockOrder,
}

// heldLock is the dataflow payload: where the lock was acquired and
// whether only for reading.
type heldLock struct {
	pos  int
	read bool
}

// orderEdge is one lock-order graph edge with its first witness.
type orderEdge struct {
	from, to string
	// pos is the witness site: the acquire of `to` (direct) or the call
	// that may acquire it.
	pos token.Pos
	// via is the callee chain for summary-based edges, "" when direct.
	via string
	// fn is the witnessing function, for the report.
	fn *Node
}

func runLockOrder(pp *ProgramPass) {
	prog := pp.Prog
	prog.EnsureSummaries()

	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]*orderEdge)
	record := func(from, to string, pos token.Pos, via string, fn *Node) {
		k := edgeKey{from, to}
		if _, seen := edges[k]; !seen {
			edges[k] = &orderEdge{from: from, to: to, pos: pos, via: via, fn: fn}
		}
	}

	for _, n := range prog.Nodes {
		if n.Decl != nil && lockVerbs[n.Decl.Name.Name] {
			continue // lock wrappers legitimately return holding
		}
		body := n.Body()
		if body == nil {
			continue
		}
		collectOrderEdges(pp, n, record)
	}

	// Condense the key graph; any SCC with an internal edge is a cycle.
	adjacent := make(map[string][]string)
	keys := make(map[string]bool)
	for k := range edges {
		adjacent[k.from] = append(adjacent[k.from], k.to)
		keys[k.from], keys[k.to] = true, true
	}
	component := lockSCCs(keys, adjacent)

	var cyclic []*orderEdge
	for _, e := range edges {
		if component[e.from] == component[e.to] {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		if cyclic[i].pos != cyclic[j].pos {
			return cyclic[i].pos < cyclic[j].pos
		}
		return cyclic[i].to < cyclic[j].to
	})
	for _, e := range cyclic {
		cycle := cycleString(component, e)
		if e.from == e.to {
			if e.via != "" {
				pp.Reportf(e.pos, "call to %s may acquire %s while an instance of it is already held in %s; same-type locks need a global acquisition order or this self-deadlocks", e.via, shortKeyName(e.to), e.fn.Name)
			} else {
				pp.Reportf(e.pos, "%s acquired while an instance of it is already held in %s; same-type locks need a global acquisition order or this self-deadlocks", shortKeyName(e.to), e.fn.Name)
			}
			continue
		}
		if e.via != "" {
			pp.Reportf(e.pos, "call to %s may acquire %s while %s is held in %s, but elsewhere the order is reversed (lock-order cycle %s); potential deadlock", e.via, shortKeyName(e.to), shortKeyName(e.from), e.fn.Name, cycle)
		} else {
			pp.Reportf(e.pos, "%s acquired while %s is held in %s, but elsewhere the order is reversed (lock-order cycle %s); potential deadlock", shortKeyName(e.to), shortKeyName(e.from), e.fn.Name, cycle)
		}
	}
}

// collectOrderEdges runs the held-locks forward dataflow over one
// function and emits order edges at every acquire and call site.
// Deferred unlocks do not release here (unlike lock-balance): the lock
// is genuinely held across every statement after the defer.
func collectOrderEdges(pp *ProgramPass, n *Node, record func(from, to string, pos token.Pos, via string, fn *Node)) {
	pass := pp.PassFor(n.Pkg)
	g := pass.BuildCFG(n.Body())
	prog := pp.Prog

	// sites maps call positions to resolved graph edges, so interface
	// fan-out and callback registration contribute summary effects.
	sites := make(map[token.Pos][]*CallSite, len(n.Out))
	for _, e := range n.Out {
		sites[e.Pos] = append(sites[e.Pos], e)
	}

	step := func(node ast.Node, held map[string]heldLock, emit bool) map[string]heldLock {
		out := held
		copied := false
		mutate := func() {
			if !copied {
				copied = true
				out = cloneFacts(held)
			}
		}
		inspectShallow(node, func(m ast.Node) bool {
			if _, isDefer := m.(*ast.DeferStmt); isDefer {
				// Deferred calls run at function exit, not here: a deferred
				// unlock must not release the lock mid-function, and a
				// deferred acquire is not held at the following statements.
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, isLock := globalLockOp(n.Pkg, call); isLock {
				if op.acquire {
					if emit {
						for from, h := range out {
							if from == op.key && h.read && op.read {
								continue // shared re-acquire cannot deadlock alone
							}
							record(from, op.key, call.Pos(), "", n)
						}
					}
					if h, already := out[op.key]; !already || (h.read && !op.read) {
						mutate()
						out[op.key] = heldLock{pos: int(call.Pos()), read: op.read && (!already || h.read)}
					}
				} else {
					if _, tracked := out[op.key]; tracked {
						mutate()
						delete(out, op.key)
					}
				}
				return true
			}
			// Non-lock call: merge callee lock effects from summaries.
			for _, e := range sites[call.Pos()] {
				if e.Kind == CallGo {
					continue // runs concurrently, not under our locks
				}
				sum := prog.summaries[e.Callee]
				if sum == nil {
					continue
				}
				if emit {
					for to, acq := range sum.MayAcquire {
						via := e.Callee.Name
						if acq.Via != "" {
							via += " -> " + acq.Via
						}
						for from, h := range out {
							if from == to && h.read && acq.Read {
								continue
							}
							record(from, to, call.Pos(), via, n)
						}
					}
				}
				for key := range sum.ReleasedAtExit {
					if _, tracked := out[key]; tracked {
						mutate()
						delete(out, key)
					}
				}
				for key := range sum.HeldAtExit {
					if _, already := out[key]; !already {
						mutate()
						out[key] = heldLock{pos: int(call.Pos())}
					}
				}
			}
			return true
		})
		return out
	}

	noEmit := func(b *Block, f map[string]heldLock) map[string]heldLock {
		for _, node := range b.Nodes {
			f = step(node, f, false)
		}
		return f
	}
	facts := Solve(g, FlowProblem[map[string]heldLock]{
		Boundary: func() map[string]heldLock { return map[string]heldLock{} },
		Init:     func() map[string]heldLock { return map[string]heldLock{} },
		Meet: func(a, b map[string]heldLock) map[string]heldLock {
			return unionFacts(a, b, func(x, y heldLock) heldLock {
				if y.pos < x.pos {
					return y
				}
				return x
			})
		},
		Equal:    equalFacts[string, heldLock],
		Transfer: noEmit,
	})
	// Emission replay: walk blocks in build order with the solved entry
	// facts so witnesses are deterministic.
	for _, b := range g.Blocks {
		f := facts[b].In
		for _, node := range b.Nodes {
			f = step(node, f, true)
		}
	}
}

// lockSCCs computes strongly connected components over lock keys
// (Tarjan, deterministic by sorted key order).
func lockSCCs(keys map[string]bool, adjacent map[string][]string) map[string]int {
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, adj := range adjacent {
		sort.Strings(adj)
	}

	index := make(map[string]int, len(keys))
	low := make(map[string]int, len(keys))
	onStack := make(map[string]bool, len(keys))
	component := make(map[string]int, len(keys))
	var stack []string
	next, compID := 0, 0

	var connect func(k string)
	connect = func(k string) {
		index[k] = next
		low[k] = next
		next++
		stack = append(stack, k)
		onStack[k] = true
		for _, m := range adjacent[k] {
			if _, seen := index[m]; !seen {
				connect(m)
				if low[m] < low[k] {
					low[k] = low[m]
				}
			} else if onStack[m] && index[m] < low[k] {
				low[k] = index[m]
			}
		}
		if low[k] == index[k] {
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				component[m] = compID
				if m == k {
					break
				}
			}
			compID++
		}
	}
	for _, k := range sorted {
		if _, seen := index[k]; !seen {
			connect(k)
		}
	}
	return component
}

// cycleString renders the cycle an edge participates in, for the report.
func cycleString(component map[string]int, e *orderEdge) string {
	if e.from == e.to {
		return shortKeyName(e.from) + " -> " + shortKeyName(e.from)
	}
	var members []string
	for k, c := range component {
		if c == component[e.from] {
			members = append(members, shortKeyName(k))
		}
	}
	sort.Strings(members)
	return strings.Join(members, " <-> ")
}
