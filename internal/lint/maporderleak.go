package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerMapOrderLeak protects the byte-identical artifacts on the
// observability side of the repo — scenario scorecards, cluster status
// JSON, perfgate reports, telemetry snapshots — from map iteration
// order. It flags ranging over a map where the iteration can reach
// serialized output: a direct print/write/encode in the range body, or
// an append into a variable that the function never sorts afterwards.
// It complements the nondeterminism check, which owns the seed-critical
// numeric packages; the exemption here is per-variable (the appended
// slice itself must be sorted), which catches the
// "sorted the keys, serialized the values" near-miss.
var AnalyzerMapOrderLeak = &Analyzer{
	Name:     "map-order-leak",
	Doc:      "flags map iteration whose order can reach serialized output in artifact-writing packages",
	Severity: SeverityError,
	AppliesTo: func(path string) bool {
		return pathHasAny(path, "internal/scenario", "internal/cluster", "internal/serving",
			"internal/perfgate", "internal/gateway", "internal/telemetry", "internal/benchfmt",
			"internal/audit", "internal/dashboard")
	},
	Run: runMapOrderLeak,
}

func runMapOrderLeak(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapOrderLeaks(p, fn)
			return true
		})
	}
}

func checkMapOrderLeaks(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil || !isMapType(t) {
			return true
		}
		if sink, kind := mapOrderSink(p, fn, rng); sink != nil {
			switch kind {
			case "serialize":
				p.Reportf(sink.Pos(), "map iteration order reaches serialized output; collect the keys, sort, and emit in sorted order")
			case "append":
				p.Reportf(sink.Pos(), "map iteration appends to a slice never sorted in this function; sort it before the order becomes observable")
			}
			return false // one finding per range loop
		}
		return true
	})
}

// mapOrderSink finds the first order-observable sink in a map-range
// body: a serializing call, or an append whose destination the
// function never sorts.
func mapOrderSink(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) (ast.Node, string) {
	var sink ast.Node
	var kind string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSerializeCall(p, call) {
			sink, kind = call, "serialize"
			return false
		}
		if dst := appendDest(p, call); dst != nil && !varSortedIn(p, fn, dst) {
			sink, kind = call, "append"
			return false
		}
		return true
	})
	return sink, kind
}

// isSerializeCall recognizes the calls through which ordering becomes
// external bytes: the fmt print family and Write*/Encode methods.
func isSerializeCall(p *Pass, call *ast.CallExpr) bool {
	if path, name, ok := p.PkgFunc(call); ok && path == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
	}
	if _, name, ok := p.MethodCall(call); ok {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}

// appendDest returns the destination variable of `dst = append(dst,
// ...)`-shaped calls, nil for anything else.
func appendDest(p *Pass, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if p.Info.Uses[id] != types.Universe.Lookup("append") {
		return nil
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := p.Info.ObjectOf(dst).(*types.Var)
	return v
}

// varSortedIn reports whether fn passes v to any sort.* or
// slices.Sort* call (anywhere in the function — collect-then-sort
// usually sorts after the loop).
func varSortedIn(p *Pass, fn *ast.FuncDecl, v *types.Var) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := p.PkgFunc(call)
		if !ok {
			return true
		}
		if path != "sort" && !(path == "slices" && len(name) >= 4 && name[:4] == "Sort") {
			return true
		}
		for _, a := range call.Args {
			if id, isIdent := ast.Unparen(a).(*ast.Ident); isIdent {
				if p.Info.ObjectOf(id) == v {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}
