package lint

import (
	"go/ast"
)

// AnalyzerNondeterminism flags nondeterminism sources inside the
// seed-critical packages (ml, mat, experiments, datagen) whose outputs
// reproduce the paper's Tables IV-VII. A fixed-seed run must produce
// bit-identical tables, so wall-clock reads, the process-global math/rand
// source, time-derived seeds, and map-iteration-order-dependent output
// all break the evaluation silently.
var AnalyzerNondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "flags time.Now, global/time-seeded math/rand, and map-order-dependent output in seed-critical packages",
	AppliesTo: func(path string) bool {
		return pathHasAny(path, "internal/ml", "internal/mat", "internal/experiments", "internal/datagen")
	},
	Run: runNondeterminism,
}

func runNondeterminism(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(p, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRangeOrder(p, n)
				}
			}
			return true
		})
	}
}

// checkNondetCall flags wall-clock reads and unseeded / time-seeded
// math/rand use.
func checkNondetCall(p *Pass, call *ast.CallExpr) {
	path, name, ok := p.PkgFunc(call)
	if !ok {
		return
	}
	switch path {
	case "time":
		if name == "Now" {
			p.Reportf(call.Pos(), "time.Now() in a seed-critical package; inject the timestamp (or a clock) so fixed-seed runs reproduce")
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New":
			// rand.New(src) is the sanctioned construction — the source
			// itself is checked when it is rand.NewSource(...).
		case "NewSource":
			if len(call.Args) == 1 && containsTimeNow(p, call.Args[0]) {
				p.Reportf(call.Pos(), "rand.NewSource seeded from time.Now(); thread an explicit seed so runs reproduce")
			}
		default:
			// Any other package-level rand call (Int, Float64, Perm,
			// Shuffle, Seed, ...) hits the shared global source whose
			// sequence depends on every other caller in the process.
			p.Reportf(call.Pos(), "math/rand.%s uses the process-global source; use a rand.New(rand.NewSource(seed)) instance instead", name)
		}
	}
}

// containsTimeNow reports whether the expression tree contains a
// time.Now() call.
func containsTimeNow(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if path, name, ok := p.PkgFunc(call); ok && path == "time" && name == "Now" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkMapRangeOrder flags map-range loops whose bodies build output
// (append, Print, Write) inside functions that never sort, i.e. the
// iteration order leaks into the result. Functions that call sort.* or
// slices.Sort* anywhere are exempt: the dominant repo idiom is
// "collect keys, then sort" which is deterministic.
func checkMapRangeOrder(p *Pass, fn *ast.FuncDecl) {
	if functionSorts(p, fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if !isMapType(t) {
			return true
		}
		if buildsOutput(p, rng.Body) {
			p.Reportf(rng.Pos(), "map iteration order leaks into output (no sort.* call in this function); sort keys first or collect-then-sort")
		}
		return true
	})
}

// functionSorts reports whether fn calls any sort.* or slices.Sort*
// function.
func functionSorts(p *Pass, fn *ast.FuncDecl) bool {
	sorts := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := p.PkgFunc(call); ok {
			if path == "sort" || (path == "slices" && len(name) >= 4 && name[:4] == "Sort") {
				sorts = true
			}
		}
		return !sorts
	})
	return sorts
}

// buildsOutput reports whether the block grows a slice, prints, or
// writes — the shapes through which iteration order becomes observable.
func buildsOutput(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ident, isIdent := call.Fun.(*ast.Ident); isIdent && ident.Name == "append" {
			found = true
			return false
		}
		if path, name, ok := p.PkgFunc(call); ok && path == "fmt" &&
			(name == "Print" || name == "Println" || name == "Printf" ||
				name == "Fprint" || name == "Fprintln" || name == "Fprintf") {
			found = true
			return false
		}
		if _, name, ok := p.MethodCall(call); ok && (name == "Write" || name == "WriteString" || name == "WriteByte") {
			found = true
			return false
		}
		return true
	})
	return found
}
