package lint

// AnalyzerPointerChase flags load-dependent loads inside the hot set's
// data loops — iterations whose next memory address depends on the
// previous load, which serializes the loop on memory latency where a
// flat index-based layout would pipeline. Two shapes count: linked
// traversals (`p = p.Next`, every step a dependent load) and nested
// slice element loads (`s[i][j]` with s a [][]T, a row-pointer load
// per touch). Advancing through `&slice[i]` is already flat and does
// not flag; neither do pure stores through a nested index, which keep
// the row pointer in a register.
var AnalyzerPointerChase = &Analyzer{
	Name:       "pointer-chase",
	Doc:        "flags load-dependent loads (linked traversals, nested slice loads) in hot data loops",
	Severity:   SeverityError,
	RunProgram: runPointerChase,
}

func runPointerChase(pp *ProgramPass) {
	forEachKernelFunc(pp, "pointerchase", func(pass *Pass, scan *kernelScan, entry string) {
		for _, ch := range scan.Chases {
			switch ch.Kind {
			case "linked-traversal":
				pp.Reportf(ch.Pos, "linked traversal %s advances by a dependent load per data-loop iteration (reachable from %s); use a flat index-based layout", ch.Detail, entry)
			case "double-index":
				pp.Reportf(ch.Pos, "nested slice load %s walks a row pointer per data-loop iteration (reachable from %s); flatten to one backing array or hoist the row", ch.Detail, entry)
			}
		}
	})
}
