package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// This file renders a Result as SARIF 2.1.0 (the Static Analysis
// Results Interchange Format), the exchange shape CI systems and code
// hosts ingest for inline annotation. One run per log, one rule per
// analyzer, one result per finding. Suppressed findings are emitted
// with a suppression record instead of being dropped, so the dashboard
// side can audit waivers; gating stays the driver's job.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string          `json:"id"`
	ShortDescription     sarifMessage    `json:"shortDescription"`
	DefaultConfiguration sarifRuleConfig `json:"defaultConfiguration"`
}

type sarifRuleConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifLevel maps the gate weight onto SARIF's level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityInfo:
		return "note"
	case SeverityWarn:
		return "warning"
	default:
		return "error"
	}
}

// WriteSARIF renders the run as a SARIF 2.1.0 log. Every analyzer of
// the suite appears as a rule (plus any extra check names present in
// the findings, such as lint-directive), so a clean run still documents
// what was checked.
func (r *Result) WriteSARIF(w io.Writer) error {
	rules := make([]sarifRule, 0, len(Analyzers())+1)
	index := make(map[string]int)
	addRule := func(id, doc string, sev Severity) {
		if _, seen := index[id]; seen {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:                   id,
			ShortDescription:     sarifMessage{Text: doc},
			DefaultConfiguration: sarifRuleConfig{Level: sarifLevel(sev)},
		})
	}
	for _, a := range Analyzers() {
		addRule(a.Name, a.Doc, a.EffectiveSeverity())
	}
	extras := make(map[string]Severity)
	for _, f := range r.Findings {
		if _, known := index[f.Check]; !known {
			extras[f.Check] = f.Severity
		}
	}
	extraNames := make([]string, 0, len(extras))
	for name := range extras {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		addRule(name, "auxiliary check", extras[name])
	}

	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		col := f.Col
		if col < 1 {
			col = 1
		}
		res := sarifResult{
			RuleID:    f.Check,
			RuleIndex: index[f.Check],
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(f.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: col},
				},
			}},
		}
		if f.Suppressed {
			res.Suppressions = append(res.Suppressions, sarifSuppression{
				Kind:          "inSource",
				Justification: f.SuppressReason,
			})
		}
		if f.Baselined {
			res.Suppressions = append(res.Suppressions, sarifSuppression{
				Kind:          "external",
				Justification: "accepted in .lint-baseline.json",
			})
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "spatial-lint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
