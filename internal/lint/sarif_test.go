package lint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteSARIFShape pins the SARIF 2.1.0 contract: schema and version
// markers, one rule per analyzer, results referencing rules by id and
// index, severity mapped onto the SARIF level vocabulary, and waived
// findings carried as suppression records rather than dropped.
func TestWriteSARIFShape(t *testing.T) {
	res := &Result{Findings: []Finding{
		{Check: "lock-order", Severity: SeverityError, File: "internal/serving/serving.go", Line: 42, Col: 3, Message: "deadlock"},
		{Check: "hotpath-alloc", Severity: SeverityInfo, File: "internal/ml/mlp.go", Line: 7, Message: "make on the hot path", Baselined: true},
		{Check: "taint-path", Severity: SeverityError, File: "internal/gateway/gateway.go", Line: 9, Col: 2, Message: "tainted", Suppressed: true, SuppressReason: "admin only"},
	}}
	var buf bytes.Buffer
	if err := res.WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						DefaultConfiguration struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema missing")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "spatial-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) < len(Analyzers()) {
		t.Errorf("rules = %d, want at least one per analyzer (%d)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" || r.DefaultConfiguration.Level == "" {
			t.Errorf("incomplete rule: %+v", r)
		}
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3 (suppressed findings stay, with suppression records)", len(run.Results))
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("ruleIndex %d out of range", r.RuleIndex)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex %d points at %q, not %q", r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
	}

	first := run.Results[0]
	if first.Level != "error" || first.Locations[0].PhysicalLocation.Region.StartLine != 42 || first.Locations[0].PhysicalLocation.Region.StartColumn != 3 {
		t.Errorf("error finding rendered wrong: %+v", first)
	}
	if first.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/serving/serving.go" {
		t.Errorf("uri = %q", first.Locations[0].PhysicalLocation.ArtifactLocation.URI)
	}

	baselined := run.Results[1]
	if baselined.Level != "note" {
		t.Errorf("info severity mapped to %q, want note", baselined.Level)
	}
	if baselined.Locations[0].PhysicalLocation.Region.StartColumn != 1 {
		t.Errorf("zero column not clamped to 1: %+v", baselined.Locations[0].PhysicalLocation.Region)
	}
	if len(baselined.Suppressions) != 1 || baselined.Suppressions[0].Kind != "external" {
		t.Errorf("baselined finding suppressions: %+v", baselined.Suppressions)
	}

	waived := run.Results[2]
	if len(waived.Suppressions) != 1 || waived.Suppressions[0].Kind != "inSource" || waived.Suppressions[0].Justification != "admin only" {
		t.Errorf("suppressed finding suppressions: %+v", waived.Suppressions)
	}
}
