package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file lowers one function's statement-level CFG (cfg.go) into a
// pruned SSA form over its local variables: dominator tree, dominance
// frontiers, phi placement, and a renaming walk that maps every
// identifier use to the unique definition reaching it. The form is
// deliberately lightweight — values stay attached to the syntax that
// defined them (no instruction selection), which is exactly what the
// value-range analysis (vrange.go) and the kernel-shape checks
// (kernel.go) need: "which definition does this index expression see,
// and what expression produced it?"
//
// Variables whose address is taken, or which are captured by a nested
// function literal, cannot be renamed soundly from syntax alone; their
// uses map to a per-variable Unknown value and every analysis built on
// top degrades conservatively (no facts, not wrong facts).

// ValueKind classifies an SSA value by the syntax that produced it.
type ValueKind uint8

const (
	// ValUnknown is the value of an untracked variable (address taken,
	// captured by a closure, or used before any visible definition).
	ValUnknown ValueKind = iota
	// ValParam is a parameter or receiver, defined at function entry.
	ValParam
	// ValZero is a named result or var-declared local with no
	// initializer: the zero value of its type.
	ValZero
	// ValDef is a plain assignment or initialization; Expr is the RHS.
	ValDef
	// ValOpAssign is x op= Expr; Prev is the incoming value of x.
	ValOpAssign
	// ValIncDec is x++ / x--; Prev is the incoming value of x.
	ValIncDec
	// ValRangeKey / ValRangeVal are the per-iteration key and value of a
	// range statement; Expr is the ranged operand.
	ValRangeKey
	ValRangeVal
	// ValOpaque is a definition whose value cannot be expressed as one
	// expression: one leg of a multi-value assignment, a type-switch
	// binding, a comma-ok receive. Expr (when set) is kept for
	// provenance only.
	ValOpaque
	// ValPhi merges definitions at a CFG join; Args parallels
	// Block.Preds.
	ValPhi
)

// Value is one SSA definition of a source variable.
type Value struct {
	// ID is the value's position in SSA.Values (stable, build order).
	ID int
	// Kind classifies the defining syntax.
	Kind ValueKind
	// Var is the source variable this value versions (nil only for the
	// shared unknown of an unresolved identifier).
	Var *types.Var
	// Block is the defining block (nil for ValUnknown).
	Block *Block
	// Expr is the defining expression: the RHS for ValDef/ValOpAssign,
	// the ranged operand for range kinds, provenance for ValOpaque.
	Expr ast.Expr
	// Op is the operator token for ValOpAssign (ADD_ASSIGN, ...) and
	// ValIncDec (INC / DEC).
	Op token.Token
	// Prev is the incoming value of the variable for ValOpAssign and
	// ValIncDec.
	Prev *Value
	// Args are the phi operands, parallel to Block.Preds; ArgBack marks
	// operands arriving over a loop back edge (the predecessor is
	// dominated by this block).
	Args    []*Value
	ArgBack []bool
}

// SSA is the per-function SSA form layered over a CFG.
type SSA struct {
	// CFG is the underlying graph.
	CFG *CFG
	// Values lists every definition in creation order.
	Values []*Value

	pass    *Pass
	decl    *ast.FuncDecl
	lit     *ast.FuncLit
	tracked map[*types.Var]bool
	unknown map[*types.Var]*Value
	useVal  map[*ast.Ident]*Value
	defVal  map[*ast.Ident]*Value
	phis    map[*Block][]*Value

	// Dominance state, indexed by Block.Index. idom[entry] == entry;
	// idom[unreachable] == -1.
	idom     []int
	children [][]int
	rpo      []*Block

	// exprBlock maps every expression evaluated by the function to the
	// block that evaluates it.
	exprBlock map[ast.Expr]*Block
}

// BuildSSA lowers fn (a declaration or a literal; exactly one non-nil)
// into SSA form. The pass supplies type information; without it the
// result tracks nothing and every query degrades to unknown.
func (p *Pass) BuildSSA(decl *ast.FuncDecl, lit *ast.FuncLit) *SSA {
	var body *ast.BlockStmt
	if decl != nil {
		body = decl.Body
	} else if lit != nil {
		body = lit.Body
	}
	s := &SSA{
		pass:      p,
		decl:      decl,
		lit:       lit,
		tracked:   make(map[*types.Var]bool),
		unknown:   make(map[*types.Var]*Value),
		useVal:    make(map[*ast.Ident]*Value),
		defVal:    make(map[*ast.Ident]*Value),
		phis:      make(map[*Block][]*Value),
		exprBlock: make(map[ast.Expr]*Block),
	}
	if body == nil {
		s.CFG = &CFG{}
		return s
	}
	s.CFG = p.BuildCFG(body)
	if p.Info != nil {
		s.collectTracked(body)
	}
	s.computeDominators()
	s.placePhis(body)
	s.rename()
	return s
}

// UseOf returns the SSA value an identifier use resolves to, nil when
// the identifier is not a tracked use (type names, fields, package
// qualifiers, identifiers inside nested literals).
func (s *SSA) UseOf(id *ast.Ident) *Value { return s.useVal[id] }

// DefOf returns the SSA value defined at an identifier on the left-hand
// side of a definition, nil when id defines nothing tracked.
func (s *SSA) DefOf(id *ast.Ident) *Value { return s.defVal[id] }

// Phis returns the phi values placed at the head of b.
func (s *SSA) Phis(b *Block) []*Value { return s.phis[b] }

// BlockOf returns the block that evaluates e, nil for expressions the
// renaming walk never visited (nested literals, type syntax).
func (s *SSA) BlockOf(e ast.Expr) *Block { return s.exprBlock[e] }

// Dominates reports whether a dominates b (reflexively).
func (s *SSA) Dominates(a, b *Block) bool {
	if a == nil || b == nil || s.idom == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := s.idom[b.Index]
		if next < 0 || next == b.Index {
			return false
		}
		b = s.CFG.Blocks[next]
	}
}

// Idom returns b's immediate dominator, nil for the entry block and
// unreachable blocks.
func (s *SSA) Idom(b *Block) *Block {
	if b == nil || s.idom == nil {
		return nil
	}
	i := s.idom[b.Index]
	if i < 0 || i == b.Index {
		return nil
	}
	return s.CFG.Blocks[i]
}

// collectTracked decides which variables can be renamed: declared in
// this function (parameters, receiver, named results, locals), address
// never taken, never referenced inside a nested function literal.
func (s *SSA) collectTracked(body *ast.BlockStmt) {
	info := s.pass.Info
	for _, id := range s.paramIdents() {
		if v, ok := info.Defs[id].(*types.Var); ok && id.Name != "_" {
			s.tracked[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := info.Defs[id].(*types.Var); isVar && id.Name != "_" {
				s.tracked[v] = true
			}
		}
		return true
	})
	// Demote what cannot be tracked: &x anywhere, and any variable
	// referenced inside a nested literal (reads included — the literal
	// may observe a version this walk cannot order).
	var demoteIn func(n ast.Node, insideLit bool)
	demoteIn = func(n ast.Node, insideLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != s.lit {
					demoteIn(m.Body, true)
					return false
				}
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
						if v := s.varOf(id); v != nil {
							delete(s.tracked, v)
						}
					}
				}
			case *ast.Ident:
				if insideLit {
					if v := s.varOf(m); v != nil {
						delete(s.tracked, v)
					}
				}
			}
			return true
		})
	}
	demoteIn(body, false)
}

// paramIdents lists the receiver, parameter, and named-result
// identifiers of the function.
func (s *SSA) paramIdents() []*ast.Ident {
	var out []*ast.Ident
	var ft *ast.FuncType
	if s.decl != nil {
		ft = s.decl.Type
		if s.decl.Recv != nil {
			for _, f := range s.decl.Recv.List {
				out = append(out, f.Names...)
			}
		}
	} else if s.lit != nil {
		ft = s.lit.Type
	}
	if ft == nil {
		return out
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			out = append(out, f.Names...)
		}
	}
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			out = append(out, f.Names...)
		}
	}
	return out
}

// varOf resolves an identifier to the variable it uses or defines.
func (s *SSA) varOf(id *ast.Ident) *types.Var {
	if s.pass.Info == nil {
		return nil
	}
	obj := s.pass.Info.Uses[id]
	if obj == nil {
		obj = s.pass.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// ---------------------------------------------------------------------
// Dominators (iterative intersection over reverse postorder).

func (s *SSA) computeDominators() {
	n := len(s.CFG.Blocks)
	if n == 0 || s.CFG.Entry == nil {
		return
	}
	// Reverse postorder over reachable blocks.
	seen := make([]bool, n)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, succ := range b.Succs {
			if !seen[succ.Index] {
				dfs(succ)
			}
		}
		post = append(post, b)
	}
	dfs(s.CFG.Entry)
	s.rpo = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		s.rpo = append(s.rpo, post[i])
	}
	order := make([]int, n) // block index -> rpo position
	for i := range order {
		order[i] = -1
	}
	for i, b := range s.rpo {
		order[b.Index] = i
	}

	s.idom = make([]int, n)
	for i := range s.idom {
		s.idom[i] = -1
	}
	entry := s.CFG.Entry.Index
	s.idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = s.idom[a]
			}
			for order[b] > order[a] {
				b = s.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range s.rpo {
			if b.Index == entry {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if s.idom[p.Index] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom >= 0 && s.idom[b.Index] != newIdom {
				s.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	s.children = make([][]int, n)
	for _, b := range s.rpo {
		if b.Index == entry {
			continue
		}
		if d := s.idom[b.Index]; d >= 0 {
			s.children[d] = append(s.children[d], b.Index)
		}
	}
}

// frontiers computes dominance frontiers (Cooper-Harvey-Kennedy).
func (s *SSA) frontiers() [][]*Block {
	df := make([][]*Block, len(s.CFG.Blocks))
	for _, b := range s.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if s.idom[p.Index] < 0 {
				continue
			}
			runner := p.Index
			for runner != s.idom[b.Index] && runner >= 0 {
				df[runner] = append(df[runner], b)
				if runner == s.idom[runner] {
					break // entry self-loop
				}
				runner = s.idom[runner]
			}
		}
	}
	return df
}

// ---------------------------------------------------------------------
// Phi placement.

// placePhis inserts phis at the iterated dominance frontier of each
// tracked variable's definition blocks.
func (s *SSA) placePhis(body *ast.BlockStmt) {
	if s.idom == nil {
		return
	}
	df := s.frontiers()

	// Collect definition blocks per variable (entry defines parameters
	// and named results).
	defBlocks := make(map[*types.Var]map[*Block]bool)
	addDef := func(v *types.Var, b *Block) {
		if !s.tracked[v] {
			return
		}
		m := defBlocks[v]
		if m == nil {
			m = make(map[*Block]bool)
			defBlocks[v] = m
		}
		m[b] = true
	}
	for _, id := range s.paramIdents() {
		if v, ok := s.pass.Info.Defs[id].(*types.Var); ok && id.Name != "_" {
			addDef(v, s.CFG.Entry)
		}
	}
	for _, b := range s.rpo {
		for _, n := range b.Nodes {
			s.forEachEvent(b, n, nil, func(id *ast.Ident, _ defKind) {
				if v := s.varOf(id); v != nil {
					addDef(v, b)
				}
			})
		}
	}

	// Deterministic variable order: by first definition block and then
	// declaration position.
	vars := make([]*types.Var, 0, len(defBlocks))
	for v := range defBlocks {
		vars = append(vars, v)
	}
	sortVars(vars)

	for _, v := range vars {
		work := make([]*Block, 0, len(defBlocks[v]))
		for _, b := range s.rpo { // deterministic order
			if defBlocks[v][b] {
				work = append(work, b)
			}
		}
		placed := make(map[*Block]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range df[b.Index] {
				if placed[d] {
					continue
				}
				placed[d] = true
				phi := s.newValue(ValPhi, v, d)
				phi.Args = make([]*Value, len(d.Preds))
				phi.ArgBack = make([]bool, len(d.Preds))
				s.phis[d] = append(s.phis[d], phi)
				if !defBlocks[v][d] {
					work = append(work, d)
				}
			}
		}
	}
}

func sortVars(vars []*types.Var) {
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j].Pos() < vars[j-1].Pos(); j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
}

func (s *SSA) newValue(kind ValueKind, v *types.Var, b *Block) *Value {
	val := &Value{ID: len(s.Values), Kind: kind, Var: v, Block: b}
	s.Values = append(s.Values, val)
	return val
}

// unknownFor returns the per-variable unknown value (created lazily).
func (s *SSA) unknownFor(v *types.Var) *Value {
	if u := s.unknown[v]; u != nil {
		return u
	}
	u := &Value{ID: -1, Kind: ValUnknown, Var: v}
	s.unknown[v] = u
	return u
}

// ---------------------------------------------------------------------
// Renaming.

func (s *SSA) rename() {
	if s.idom == nil {
		return
	}
	stacks := make(map[*types.Var][]*Value)
	top := func(v *types.Var) *Value {
		if st := stacks[v]; len(st) > 0 {
			return st[len(st)-1]
		}
		return s.unknownFor(v)
	}

	var walk func(b *Block)
	walk = func(b *Block) {
		var pushed []*types.Var
		push := func(v *types.Var, val *Value) {
			stacks[v] = append(stacks[v], val)
			pushed = append(pushed, v)
		}
		for _, phi := range s.phis[b] {
			push(phi.Var, phi)
		}
		if b == s.CFG.Entry {
			for _, id := range s.paramIdents() {
				v, ok := s.pass.Info.Defs[id].(*types.Var)
				if !ok || !s.tracked[v] {
					continue
				}
				kind := ValParam
				if s.isNamedResult(id) {
					kind = ValZero
				}
				val := s.newValue(kind, v, b)
				s.defVal[id] = val
				push(v, val)
			}
		}
		for _, n := range b.Nodes {
			s.forEachEvent(b, n,
				func(id *ast.Ident) {
					v := s.varOf(id)
					if v == nil {
						return
					}
					if !s.tracked[v] {
						s.useVal[id] = s.unknownFor(v)
						return
					}
					s.useVal[id] = top(v)
				},
				func(id *ast.Ident, dk defKind) {
					v := s.varOf(id)
					if v == nil || !s.tracked[v] {
						return
					}
					val := s.newValue(dk.kind, v, b)
					val.Expr = dk.expr
					val.Op = dk.op
					if dk.kind == ValOpAssign || dk.kind == ValIncDec {
						val.Prev = top(v)
					}
					s.defVal[id] = val
					push(v, val)
				})
		}
		for _, succ := range b.Succs {
			j := predIndex(succ, b)
			if j < 0 {
				continue
			}
			for _, phi := range s.phis[succ] {
				phi.Args[j] = top(phi.Var)
				phi.ArgBack[j] = s.Dominates(succ, b)
			}
		}
		for _, ci := range s.children[b.Index] {
			walk(s.CFG.Blocks[ci])
		}
		for _, v := range pushed {
			stacks[v] = stacks[v][:len(stacks[v])-1]
		}
	}
	walk(s.CFG.Entry)
}

func (s *SSA) isNamedResult(id *ast.Ident) bool {
	var ft *ast.FuncType
	if s.decl != nil {
		ft = s.decl.Type
	} else if s.lit != nil {
		ft = s.lit.Type
	}
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			if name == id {
				return true
			}
		}
	}
	return false
}

func predIndex(b *Block, pred *Block) int {
	for i, p := range b.Preds {
		if p == pred {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------
// Event walk: the single definition of evaluation order used by both
// phi placement (defs only) and renaming (uses then defs).

type defKind struct {
	kind ValueKind
	expr ast.Expr
	op   token.Token
}

// forEachEvent visits the identifier uses and variable definitions a
// CFG node performs, in evaluation order: for assignments all RHS uses
// come before any LHS definition. Nested statements living in other
// blocks (a range statement's body) are not visited; nested function
// literals are opaque.
func (s *SSA) forEachEvent(b *Block, n ast.Node, onUse func(*ast.Ident), onDef func(*ast.Ident, defKind)) {
	uses := func(e ast.Expr) { s.usesIn(b, e, onUse) }
	def := func(id *ast.Ident, dk defKind) {
		if onDef != nil {
			onDef(id, dk)
		}
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			uses(r)
		}
		opaque := len(n.Lhs) != len(n.Rhs)
		for i, l := range n.Lhs {
			id, isIdent := ast.Unparen(l).(*ast.Ident)
			if !isIdent {
				uses(l) // x[i] = v uses x and i
				continue
			}
			if id.Name == "_" {
				continue
			}
			switch {
			case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
				dk := defKind{kind: ValDef}
				if opaque {
					dk = defKind{kind: ValOpaque, expr: n.Rhs[0]}
				} else {
					dk.expr = n.Rhs[i]
					// Multi-valued single RHS forms (comma-ok, type
					// assertion) reached len equality only when 1 == 1; a
					// 1:1 assignment from a multi-value call cannot occur.
					if _, isAssert := ast.Unparen(dk.expr).(*ast.TypeAssertExpr); isAssert {
						dk = defKind{kind: ValOpaque, expr: dk.expr}
					}
				}
				def(id, dk)
			default:
				// Compound assignment x op= rhs: the LHS is read first.
				if onUse != nil {
					onUse(id)
				}
				def(id, defKind{kind: ValOpAssign, expr: n.Rhs[i], op: n.Tok})
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if onUse != nil {
				onUse(id)
			}
			def(id, defKind{kind: ValIncDec, op: n.Tok})
		} else {
			uses(n.X)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				uses(v)
			}
			opaque := len(vs.Values) != 0 && len(vs.Values) != len(vs.Names)
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				switch {
				case len(vs.Values) == 0:
					def(name, defKind{kind: ValZero})
				case opaque:
					def(name, defKind{kind: ValOpaque, expr: vs.Values[0]})
				default:
					def(name, defKind{kind: ValDef, expr: vs.Values[i]})
				}
			}
		}
	case *ast.RangeStmt:
		// Only the header belongs to this block; the body has its own
		// blocks. Key and value are fresh per-iteration definitions.
		uses(n.X)
		rangeDef := func(e ast.Expr, kind ValueKind) {
			if e == nil {
				return
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if id.Name != "_" {
					def(id, defKind{kind: kind, expr: n.X})
				}
				return
			}
			uses(e) // `for m[k] = range ...`: components are uses
		}
		rangeDef(n.Key, ValRangeKey)
		rangeDef(n.Value, ValRangeVal)
	case *ast.ExprStmt:
		uses(n.X)
	case *ast.SendStmt:
		uses(n.Value)
		uses(n.Chan)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			uses(r)
		}
	case *ast.DeferStmt:
		uses(n.Call)
	case *ast.GoStmt:
		uses(n.Call)
	case *ast.BranchStmt:
		// No uses.
	case ast.Expr:
		// Condition, switch tag, or case expression.
		uses(n)
	case ast.Stmt:
		// Any other statement form: visit its expressions as uses.
		ast.Inspect(n, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
			if e, isExpr := m.(ast.Expr); isExpr {
				uses(e)
				return false
			}
			return true
		})
	}
}

// usesIn visits every identifier use inside e (lexical order ≈
// evaluation order for expressions), recording the owning block for
// each visited expression. Nested function literals are opaque;
// selector fields and type names are not uses.
func (s *SSA) usesIn(b *Block, e ast.Expr, onUse func(*ast.Ident)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != s.lit {
				return false
			}
		case *ast.SelectorExpr:
			s.exprBlock[n] = b
			s.usesIn(b, n.X, onUse) // n.Sel is a field/method, not a use
			return false
		case *ast.KeyValueExpr:
			s.exprBlock[n] = b
			// Struct literal keys are field names, not variable uses.
			if _, isIdent := n.Key.(*ast.Ident); !isIdent {
				s.usesIn(b, n.Key, onUse)
			}
			s.usesIn(b, n.Value, onUse)
			return false
		case *ast.Ident:
			s.exprBlock[n] = b
			if onUse != nil {
				onUse(n)
			}
			return false
		case ast.Expr:
			s.exprBlock[n] = b
		}
		return true
	})
}
