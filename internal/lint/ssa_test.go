package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typedPass parses and type-checks one source file (the SSA builder
// needs real type information, unlike the syntactic CFG tests).
func typedPass(t *testing.T, src string) (*Pass, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ssa_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}, f
}

// buildSSAFor type-checks src and lowers the function named fn.
func buildSSAFor(t *testing.T, src, fn string) (*Pass, *SSA, *ast.FuncDecl) {
	t.Helper()
	p, f := typedPass(t, src)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return p, p.BuildSSA(fd, nil), fd
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil, nil
}

// identN returns the n-th (0-based) occurrence of name in source order.
func identN(t *testing.T, root ast.Node, name string, n int) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	count := 0
	ast.Inspect(root, func(k ast.Node) bool {
		if id, ok := k.(*ast.Ident); ok && id.Name == name {
			if count == n {
				found = id
			}
			count++
		}
		return true
	})
	if found == nil {
		t.Fatalf("ident %q #%d not found (%d occurrences)", name, n, count)
	}
	return found
}

// lastIdent returns the last occurrence of name in source order.
func lastIdent(t *testing.T, root ast.Node, name string) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	ast.Inspect(root, func(k ast.Node) bool {
		if id, ok := k.(*ast.Ident); ok && id.Name == name {
			found = id
		}
		return true
	})
	if found == nil {
		t.Fatalf("ident %q not found", name)
	}
	return found
}

func TestSSAIfDiamondPhi(t *testing.T) {
	_, s, fd := buildSSAFor(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	use := s.UseOf(lastIdent(t, fd, "x"))
	if use == nil {
		t.Fatal("no value for x at return")
	}
	if use.Kind != ValPhi {
		t.Fatalf("x at return: kind = %d, want ValPhi", use.Kind)
	}
	if len(use.Args) != 2 {
		t.Fatalf("phi args = %d, want 2", len(use.Args))
	}
	for i, a := range use.Args {
		if a == nil || a.Kind != ValDef {
			t.Fatalf("phi arg %d: %+v, want ValDef", i, a)
		}
		if use.ArgBack[i] {
			t.Fatalf("phi arg %d marked as back edge in an if diamond", i)
		}
	}
}

func TestSSAForLoopPhiBackEdge(t *testing.T) {
	_, s, fd := buildSSAFor(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	// The i in `i < n` reads the loop phi merging init and increment.
	use := s.UseOf(identN(t, fd, "i", 1))
	if use == nil || use.Kind != ValPhi {
		t.Fatalf("i in loop condition: %+v, want phi", use)
	}
	var fwd, back int
	for j, a := range use.Args {
		if a == nil {
			t.Fatalf("phi arg %d is nil", j)
		}
		if use.ArgBack[j] {
			back++
			if a.Kind != ValIncDec {
				t.Fatalf("back-edge arg kind = %d, want ValIncDec", a.Kind)
			}
		} else {
			fwd++
			if a.Kind != ValDef {
				t.Fatalf("forward arg kind = %d, want ValDef", a.Kind)
			}
		}
	}
	if fwd != 1 || back != 1 {
		t.Fatalf("phi edges: %d forward, %d back; want 1 and 1", fwd, back)
	}
	// s at the return merges the init and the loop body's +=.
	ret := s.UseOf(lastIdent(t, fd, "s"))
	if ret == nil || ret.Kind != ValPhi {
		t.Fatalf("s at return: %+v, want phi", ret)
	}
}

func TestSSASwitchPhi(t *testing.T) {
	_, s, fd := buildSSAFor(t, `package p
func f(k int) int {
	x := 0
	switch k {
	case 1:
		x = 1
	case 2:
		x = 2
	default:
		x = 3
	}
	return x
}`, "f")
	use := s.UseOf(lastIdent(t, fd, "x"))
	if use == nil || use.Kind != ValPhi {
		t.Fatalf("x at return: %+v, want phi", use)
	}
	if len(use.Args) != 3 {
		t.Fatalf("phi args = %d, want 3 (one per case)", len(use.Args))
	}
	for i, a := range use.Args {
		if a == nil || a.Kind != ValDef {
			t.Fatalf("phi arg %d: %+v, want ValDef", i, a)
		}
	}
}

func TestSSADefUseIntegrity(t *testing.T) {
	_, s, fd := buildSSAFor(t, `package p
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			total += i
		} else {
			total -= 1
		}
	}
	return total
}`, "f")
	// Every use of a tracked local resolves to a value recorded in
	// s.Values, and phi argument counts match predecessor counts.
	inValues := make(map[*Value]bool, len(s.Values))
	for i, v := range s.Values {
		if v.ID != i {
			t.Fatalf("value %d has ID %d", i, v.ID)
		}
		inValues[v] = true
	}
	ast.Inspect(fd.Body, func(k ast.Node) bool {
		id, ok := k.(*ast.Ident)
		if !ok || (id.Name != "total" && id.Name != "i" && id.Name != "n") {
			return true
		}
		if use := s.UseOf(id); use != nil && !inValues[use] {
			t.Errorf("use of %s at %v resolves to a value outside s.Values", id.Name, id.Pos())
		}
		if def := s.DefOf(id); def != nil && !inValues[def] {
			t.Errorf("def of %s at %v resolves to a value outside s.Values", id.Name, id.Pos())
		}
		return true
	})
	for _, b := range s.rpo {
		for _, phi := range s.Phis(b) {
			if len(phi.Args) != len(b.Preds) {
				t.Errorf("block %d: phi has %d args for %d preds", b.Index, len(phi.Args), len(b.Preds))
			}
			if len(phi.ArgBack) != len(phi.Args) {
				t.Errorf("block %d: ArgBack length mismatch", b.Index)
			}
			for _, a := range phi.Args {
				if a != nil && !inValues[a] {
					t.Errorf("block %d: phi arg outside s.Values", b.Index)
				}
			}
		}
	}
}

func TestSSAAddressTakenDemoted(t *testing.T) {
	_, s, fd := buildSSAFor(t, `package p
func g(p *int) {}
func f() int {
	y := 1
	g(&y)
	return y
}`, "f")
	use := s.UseOf(lastIdent(t, fd, "y"))
	if use == nil {
		t.Fatal("no value for y at return")
	}
	if use.Kind != ValUnknown {
		t.Fatalf("address-taken y: kind = %d, want ValUnknown", use.Kind)
	}
}

func TestSSADominance(t *testing.T) {
	_, s, fd := buildSSAFor(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	return x
}`, "f")
	entry := s.CFG.Entry
	retBlock := s.BlockOf(lastIdent(t, fd, "x"))
	if retBlock == nil {
		t.Fatal("return block not recorded")
	}
	if !s.Dominates(entry, retBlock) {
		t.Error("entry must dominate the return block")
	}
	if s.Dominates(retBlock, entry) {
		t.Error("return block must not dominate entry")
	}
	if s.Idom(entry) != nil {
		t.Error("entry has no immediate dominator")
	}
}
