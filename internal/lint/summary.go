package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function summaries over the call graph, bottom
// up in SCC order (callees before callers, fixpoint inside components so
// mutual recursion converges). Summaries abstract a call's effect for
// the interprocedural checks: which module-global locks the callee may
// acquire (lock-order), which locks it returns holding or releases (lock
// wrappers), whether each parameter is actually consumed (precise
// ownership transfer for ctx-leak/body-leak), and how taint flows from
// parameters to returns and filesystem sinks (taint-path).

// LockAcquire describes one lock a function may acquire, directly or
// through its callees.
type LockAcquire struct {
	// Pos is the acquisition site (in the transitively acquiring function).
	Pos token.Pos
	// Via is the call chain from this function to the acquire, "" when
	// direct ("line" or "line -> runBatcher").
	Via string
	// Read marks acquisitions that are only ever RLocks.
	Read bool
}

// SinkFlow records one parameter-to-sink flow inside a function.
type SinkFlow struct {
	// Sink names the sensitive call ("os.Open", "serving.(*Registry).Save").
	Sink string
	// Pos is the sink call site in the flowing function.
	Pos token.Pos
	// Via is the helper chain from this function to the sink, "" when the
	// sink call is direct.
	Via string
}

// Summary is the interprocedural abstract of one function.
type Summary struct {
	node *Node
	// MayAcquire maps module-global lock keys to how this function (or a
	// transitive callee) may acquire them during a call.
	MayAcquire map[string]LockAcquire
	// HeldAtExit are locks this function returns holding (lock wrappers).
	HeldAtExit map[string]token.Pos
	// ReleasedAtExit are locks this function releases without acquiring
	// (unlock wrappers).
	ReleasedAtExit map[string]bool
	// ParamConsumed reports, per parameter, whether the function may use
	// the value at all: called, stored, returned, captured, or forwarded
	// to a consuming callee. A false entry proves the callee ignores the
	// argument, so passing a resource there cannot discharge its
	// obligation.
	ParamConsumed []bool
	// ParamToReturn reports, per parameter, whether its taint can reach a
	// return value.
	ParamToReturn []bool
	// ParamSinks lists, per parameter, the sensitive sinks its taint can
	// reach inside this function or its callees.
	ParamSinks [][]SinkFlow
}

// SummaryOf returns the summary for n, computing all summaries on first
// use. Safe for concurrent use after EnsureSummaries.
func (p *Program) SummaryOf(n *Node) *Summary {
	p.EnsureSummaries()
	return p.summaries[n]
}

// EnsureSummaries computes every function summary bottom-up. Repeat
// calls are free: the sync.Once cache keeps warm driver runs from
// re-walking the module.
func (p *Program) EnsureSummaries() {
	p.summaryOnce.Do(func() {
		p.summaries = make(map[*Node]*Summary, len(p.Nodes))
		for _, scc := range p.SCCs {
			for _, n := range scc {
				p.summaries[n] = &Summary{node: n}
			}
			// Fixpoint inside the component: mutual recursion converges
			// because every summary field grows monotonically.
			for round := 0; ; round++ {
				changed := false
				for _, n := range scc {
					if p.computeSummary(n) {
						changed = true
					}
				}
				if !changed || round > 2*len(scc)+2 {
					break
				}
			}
		}
	})
}

// SummaryComputations reports how many per-function summary computations
// have run, for cache tests: a second EnsureSummaries must not add any.
func (p *Program) SummaryComputations() int { return p.computations }

// computeSummary recomputes n's summary from its body and its callees'
// current summaries, reporting whether anything changed.
func (p *Program) computeSummary(n *Node) bool {
	p.computations++
	s := p.summaries[n]
	changed := false

	locks := p.computeLocks(n)
	if !equalAcquires(s.MayAcquire, locks.may) {
		s.MayAcquire = locks.may
		changed = true
	}
	if !equalFacts(s.HeldAtExit, locks.held) {
		s.HeldAtExit = locks.held
		changed = true
	}
	if !equalFacts(s.ReleasedAtExit, locks.released) {
		s.ReleasedAtExit = locks.released
		changed = true
	}

	consumed := p.computeParamConsumed(n)
	if !equalBools(s.ParamConsumed, consumed) {
		s.ParamConsumed = consumed
		changed = true
	}

	toReturn, sinks := p.computeParamTaint(n)
	if !equalBools(s.ParamToReturn, toReturn) {
		s.ParamToReturn = toReturn
		changed = true
	}
	if !equalSinks(s.ParamSinks, sinks) {
		s.ParamSinks = sinks
		changed = true
	}
	return changed
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalAcquires(a, b map[string]LockAcquire) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || w.Read != v.Read {
			return false
		}
	}
	return true
}

func equalSinks(a, b [][]SinkFlow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Sink != b[i][j].Sink || a[i][j].Via != b[i][j].Via {
				return false
			}
		}
	}
	return true
}

// --- lock effects ---

type lockEffects struct {
	may      map[string]LockAcquire
	held     map[string]token.Pos
	released map[string]bool
}

// globalLock is a lock operation canonicalized to a module-global key:
// "pkgpath.Type.field" for a mutex field of a named type (instance
// insensitive), "pkgpath.Type" for a named type embedding its mutex, or
// "pkgpath.var" for a package-level mutex variable. Function-local
// mutexes have no global identity and are not tracked.
type globalLock struct {
	key     string
	acquire bool
	read    bool
}

// globalLockOp recognizes a sync.(RW)Mutex (R)Lock/(R)Unlock call with a
// canonicalizable receiver.
func globalLockOp(pkg *Package, call *ast.CallExpr) (globalLock, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return globalLock{}, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return globalLock{}, false
	}
	s, found := pkg.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return globalLock{}, false
	}
	if obj := s.Obj(); obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return globalLock{}, false
	}
	key, ok := globalLockKey(pkg, sel.X)
	if !ok {
		return globalLock{}, false
	}
	return globalLock{key: key, acquire: acquire, read: read}, true
}

// globalLockKey canonicalizes the receiver expression of a lock call.
func globalLockKey(pkg *Package, recv ast.Expr) (string, bool) {
	recv = ast.Unparen(recv)
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		// pkgname.GlobalMu.Lock()
		if id, ok := recv.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + recv.Sel.Name, true
			}
		}
		// base.field.Lock(): key by the base's named type.
		if tv, ok := pkg.Info.Types[recv.X]; ok && tv.Type != nil {
			if pkgPath, typeName := namedPath(tv.Type); pkgPath != "" {
				return pkgPath + "." + typeName + "." + recv.Sel.Name, true
			}
		}
	case *ast.Ident:
		v, ok := pkg.Info.Uses[recv].(*types.Var)
		if !ok {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Package-level mutex variable.
			return v.Pkg().Path() + "." + v.Name(), true
		}
		// A local or receiver of a named type embedding its mutex
		// (s.Lock() through promotion). Plain local sync.Mutex values
		// have no cross-function identity.
		if pkgPath, typeName := namedPath(v.Type()); pkgPath != "" && pkgPath != "sync" {
			return pkgPath + "." + typeName, true
		}
	}
	return "", false
}

// computeLocks derives a function's lock effects from its body and its
// callees' current summaries.
func (p *Program) computeLocks(n *Node) lockEffects {
	eff := lockEffects{
		may:      make(map[string]LockAcquire),
		held:     make(map[string]token.Pos),
		released: make(map[string]bool),
	}
	body := n.Body()
	if body == nil {
		return eff
	}
	directAcquire := make(map[string]token.Pos)
	directRead := make(map[string]bool)
	directUnlock := make(map[string]bool)
	deferred := make(map[string]bool)

	var deferDepth int
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate node; effects arrive via edges
			case *ast.DeferStmt:
				deferDepth++
				walk(m.Call)
				deferDepth--
				return false
			case *ast.CallExpr:
				op, ok := globalLockOp(n.Pkg, m)
				if !ok {
					return true
				}
				if op.acquire {
					if _, seen := directAcquire[op.key]; !seen {
						directAcquire[op.key] = m.Pos()
						directRead[op.key] = op.read
					} else if !op.read {
						directRead[op.key] = false
					}
				} else if deferDepth > 0 {
					deferred[op.key] = true
				} else {
					directUnlock[op.key] = true
				}
			}
			return true
		})
	}
	walk(body)

	for key, pos := range directAcquire {
		eff.may[key] = LockAcquire{Pos: pos, Read: directRead[key]}
		if !directUnlock[key] && !deferred[key] {
			eff.held[key] = pos
		}
	}
	for key := range directUnlock {
		if _, acquired := directAcquire[key]; !acquired {
			eff.released[key] = true
		}
	}

	// Merge callee effects. Goroutine launches run concurrently, not
	// under the caller's locks, so go edges do not contribute.
	for _, e := range n.Out {
		if e.Kind == CallGo {
			continue
		}
		callee := p.summaries[e.Callee]
		if callee == nil {
			continue
		}
		for key, acq := range callee.MayAcquire {
			via := e.Callee.Name
			if acq.Via != "" {
				via = via + " -> " + acq.Via
			}
			if strings.Count(via, "->") > 5 {
				continue // cap witness chains; the cycle is already visible
			}
			if old, seen := eff.may[key]; seen {
				if old.Read && !acq.Read {
					old.Read = false
					eff.may[key] = old
				}
			} else {
				eff.may[key] = LockAcquire{Pos: e.Pos, Via: via, Read: acq.Read}
			}
		}
	}
	return eff
}

// --- parameter consumption ---

// paramVars flattens a function's parameter objects in signature order.
func paramVars(pkg *Package, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft == nil || ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			v, _ := pkg.Info.Defs[name].(*types.Var)
			out = append(out, v) // nil for _ params keeps indexes aligned
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // anonymous parameter
		}
	}
	return out
}

// computeParamConsumed decides, per parameter, whether the function may
// consume the value. Only a proof of ignorance returns false: the sole
// uses are forwarding the parameter to module callees that themselves
// ignore it.
func (p *Program) computeParamConsumed(n *Node) []bool {
	params := paramVars(n.Pkg, n.FuncType())
	consumed := make([]bool, len(params))
	body := n.Body()
	if body == nil {
		for i := range consumed {
			consumed[i] = true // no body: assume the worst
		}
		return consumed
	}
	index := make(map[*types.Var]int, len(params))
	for i, v := range params {
		if v == nil {
			continue // blank/anonymous parameters are trivially unconsumed
		}
		index[v] = i
	}
	if len(index) == 0 {
		return consumed
	}

	// forwarded records identifiers that appear as exact top-level
	// arguments of a call, with the call and argument position.
	type forward struct {
		call *ast.CallExpr
		arg  int
	}
	forwarded := make(map[*ast.Ident]forward)
	litDepth := 0
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// Uses inside a literal are captures: the closure may run
				// later, so the value is consumed.
				litDepth++
				walk(m.Body)
				litDepth--
				return false
			case *ast.CallExpr:
				if litDepth == 0 {
					for i, arg := range m.Args {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							forwarded[id] = forward{call: m, arg: i}
						}
					}
				}
			case *ast.Ident:
				if pi, ok := index[lookupVar(n.Pkg, m)]; ok && litDepth > 0 {
					consumed[pi] = true
				}
			}
			return true
		})
	}
	walk(body)

	ast.Inspect(body, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		pi, ok := index[lookupVar(n.Pkg, id)]
		if !ok || consumed[pi] {
			return true
		}
		fw, isForward := forwarded[id]
		if !isForward {
			consumed[pi] = true
			return true
		}
		if !p.forwardUnconsumed(n, fw.call, fw.arg) {
			consumed[pi] = true
		}
		return true
	})
	return consumed
}

// lookupVar resolves an identifier use to its variable.
func lookupVar(pkg *Package, id *ast.Ident) *types.Var {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// forwardUnconsumed reports whether passing a value as argument arg of
// call provably hands it to a callee that ignores it.
func (p *Program) forwardUnconsumed(n *Node, call *ast.CallExpr, arg int) bool {
	return p.ArgIgnored(n.Pkg.Info, call, arg)
}

// ArgIgnored reports whether passing a value as argument arg of call
// provably hands it to a module callee that never touches it, per the
// ParamConsumed summaries. The resource-leak checks use this to keep an
// obligation alive across helper calls that cannot discharge it.
// Anything dynamic, variadic, external, or unknown reports false.
func (p *Program) ArgIgnored(info *types.Info, call *ast.CallExpr, arg int) bool {
	callee := p.staticCalleeInfo(info, call)
	if callee == nil {
		return false
	}
	sig := calleeSignature(callee)
	if sig == nil || sig.Variadic() || sig.Params().Len() != len(call.Args) {
		return false
	}
	sum := p.summaries[callee]
	if sum == nil || arg >= len(sum.ParamConsumed) {
		return false
	}
	return !sum.ParamConsumed[arg]
}

// argIgnored adapts Program.ArgIgnored to a per-package Pass. Without a
// program view it reports false, preserving the conservative
// intraprocedural behavior (handing off always discharges).
func argIgnored(p *Pass, call *ast.CallExpr, arg int) bool {
	return p.Prog != nil && p.Prog.ArgIgnored(p.Info, call, arg)
}

// staticCallee resolves a call to its single static module callee, or
// nil when the target is dynamic, external, or overloaded.
func (p *Program) staticCallee(pkg *Package, call *ast.CallExpr) *Node {
	return p.staticCalleeInfo(pkg.Info, call)
}

func (p *Program) staticCalleeInfo(info *types.Info, call *ast.CallExpr) *Node {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return p.NodeOf(obj)
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv().Underlying()) {
				return nil
			}
			if m, ok := s.Obj().(*types.Func); ok {
				return p.NodeOf(m)
			}
			return nil
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return p.NodeOf(obj)
		}
	}
	return nil
}

func calleeSignature(n *Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// --- parameter taint ---

// computeParamTaint seeds each parameter with its own taint bit, runs
// the shared propagation engine, and reads back which bits reach returns
// and sinks.
func (p *Program) computeParamTaint(n *Node) ([]bool, [][]SinkFlow) {
	params := paramVars(n.Pkg, n.FuncType())
	toReturn := make([]bool, len(params))
	sinks := make([][]SinkFlow, len(params))
	body := n.Body()
	if body == nil || len(params) == 0 || len(params) > 60 {
		return toReturn, sinks
	}
	eng := &taintEngine{pkg: n.Pkg, prog: p}
	seeded := false
	for i, v := range params {
		if v == nil || !taintableType(v.Type()) {
			continue
		}
		eng.seedVar(v, 1<<uint(i))
		seeded = true
	}
	if !seeded {
		return toReturn, sinks
	}
	eng.propagate(body)

	// Returns: explicit results and named result variables.
	resultVars := make(map[*types.Var]bool)
	if ft := n.FuncType(); ft != nil && ft.Results != nil {
		for _, field := range ft.Results.List {
			for _, name := range field.Names {
				if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok {
					resultVars[v] = true
				}
			}
		}
	}
	var returnMask uint64
	inspectShallow(body, func(m ast.Node) bool {
		if ret, ok := m.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				returnMask |= eng.exprMask(res)
			}
		}
		return true
	})
	for v := range resultVars {
		returnMask |= eng.vars[v]
	}
	for i := range params {
		if returnMask&(1<<uint(i)) != 0 {
			toReturn[i] = true
		}
	}
	eng.scanSinks(body, func(sink string, pos token.Pos, mask uint64, via string) {
		for i := range params {
			if mask&(1<<uint(i)) != 0 {
				sinks[i] = append(sinks[i], SinkFlow{Sink: sink, Pos: pos, Via: via})
			}
		}
	})
	return toReturn, sinks
}

// taintableType limits seeding to values that can carry a path: strings,
// string containers, and anything stringly derived.
func taintableType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return taintableType(u.Elem())
	case *types.Map:
		return taintableType(u.Elem()) || taintableType(u.Key())
	case *types.Pointer:
		return taintableType(u.Elem())
	case *types.Struct, *types.Interface:
		return true // url.URL, fmt.Stringer arguments, request wrappers
	}
	return false
}
