package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerTaintPath flags strings derived from an *http.Request (path
// values, query parameters, form fields, headers) that reach a
// filesystem-touching sink — os.Open and friends, filepath.Join, or the
// model registry's Save/Load — without passing a sanitizer. This is the
// path-traversal shape that matters for SPATIAL's model registry: a
// request-controlled model name joined into a blob path escapes the
// registry directory with a "../" segment. The analysis is
// interprocedural: per-function summaries record how parameters flow to
// returns and sinks, so request data handed to a helper that opens a
// file is reported at the handler's call site with the helper chain.
// Sanitizers (filepath.Base, path.Base, url.PathEscape/QueryEscape, and
// functions with "sanitize" in their name) stop propagation.
var AnalyzerTaintPath = &Analyzer{
	Name:       "taint-path",
	Doc:        "flags request-derived strings reaching filesystem sinks without sanitization",
	Severity:   SeverityError,
	RunProgram: runTaintPath,
}

// requestBit is the taint bit used in request mode (summary mode uses
// one bit per parameter instead).
const requestBit uint64 = 1

func runTaintPath(pp *ProgramPass) {
	prog := pp.Prog
	prog.EnsureSummaries()
	type hitKey struct {
		pos  token.Pos
		sink string
	}
	for _, n := range prog.Nodes {
		body := n.Body()
		if body == nil || !importsNetHTTP(n.Pkg) {
			continue
		}
		eng := &taintEngine{pkg: n.Pkg, prog: prog, seedExpr: requestSeed(n.Pkg)}
		eng.propagate(body)
		seen := make(map[hitKey]bool)
		eng.scanSinks(body, func(sink string, pos token.Pos, mask uint64, via string) {
			if mask&requestBit == 0 {
				return
			}
			k := hitKey{pos: pos, sink: sink}
			if seen[k] {
				return
			}
			seen[k] = true
			if via != "" {
				pp.Reportf(pos, "request-derived string reaches %s (via %s) without sanitization; validate it or take filepath.Base first", sink, via)
			} else {
				pp.Reportf(pos, "request-derived string reaches %s without sanitization; validate it or take filepath.Base first", sink)
			}
		})
	}
}

// importsNetHTTP cheaply gates request-mode analysis to packages that
// can see an *http.Request at all.
func importsNetHTTP(pkg *Package) bool {
	if pkg.Types == nil {
		return false
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "net/http" {
			return true
		}
	}
	return false
}

// requestSeed returns the request-mode seed function: an expression
// rooted at an *http.Request-typed identifier is request-derived.
func requestSeed(pkg *Package) func(ast.Expr) uint64 {
	return func(e ast.Expr) uint64 {
		if requestRooted(pkg, e) {
			return requestBit
		}
		return 0
	}
}

// requestRooted walks selector/call/index chains down to their root
// identifier and reports whether it is an *http.Request.
func requestRooted(pkg *Package, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			e = sel.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, _ := pkg.Info.Uses[x].(*types.Var)
			if v == nil {
				return false
			}
			pkgPath, typeName := namedPath(v.Type())
			return pkgPath == "net/http" && typeName == "Request"
		default:
			return false
		}
	}
}

// --- the shared propagation engine ---

// taintEngine propagates bitmask taint through one function body,
// flow-insensitively, to a fixpoint. Summary computation seeds one bit
// per parameter; the taint-path check seeds request-derived expressions.
type taintEngine struct {
	pkg  *Package
	prog *Program
	// vars carries per-variable taint masks.
	vars map[*types.Var]uint64
	// seedExpr, when non-nil, contributes extra taint to expressions
	// (request mode).
	seedExpr func(ast.Expr) uint64
	changed  bool
}

func (t *taintEngine) seedVar(v *types.Var, mask uint64) {
	if t.vars == nil {
		t.vars = make(map[*types.Var]uint64)
	}
	t.vars[v] |= mask
}

func (t *taintEngine) taintVar(v *types.Var, mask uint64) {
	if v == nil || mask == 0 {
		return
	}
	if t.vars == nil {
		t.vars = make(map[*types.Var]uint64)
	}
	if t.vars[v]&mask != mask {
		t.vars[v] |= mask
		t.changed = true
	}
}

func (t *taintEngine) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return lookupVar(t.pkg, id)
}

// propagate iterates assignment propagation to a fixpoint (function
// literals are separate call-graph nodes and are skipped).
func (t *taintEngine) propagate(body ast.Node) {
	for round := 0; round < 20; round++ {
		t.changed = false
		inspectShallow(body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				if len(m.Rhs) == 1 && len(m.Lhs) > 1 {
					mask := t.exprMask(m.Rhs[0])
					for _, lhs := range m.Lhs {
						t.taintVar(t.identVar(lhs), mask)
					}
					return true
				}
				for i := range m.Lhs {
					if i < len(m.Rhs) {
						t.taintVar(t.identVar(m.Lhs[i]), t.exprMask(m.Rhs[i]))
					}
				}
			case *ast.ValueSpec:
				if len(m.Values) == 1 && len(m.Names) > 1 {
					mask := t.exprMask(m.Values[0])
					for _, name := range m.Names {
						t.taintVar(lookupVar(t.pkg, name), mask)
					}
					return true
				}
				for i, name := range m.Names {
					if i < len(m.Values) {
						t.taintVar(lookupVar(t.pkg, name), t.exprMask(m.Values[i]))
					}
				}
			case *ast.RangeStmt:
				mask := t.exprMask(m.X)
				t.taintVar(t.identVar(m.Key), mask)
				t.taintVar(t.identVar(m.Value), mask)
			}
			return true
		})
		if !t.changed {
			return
		}
	}
}

// exprMask computes the taint mask of an expression.
func (t *taintEngine) exprMask(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	var mask uint64
	if t.seedExpr != nil {
		mask |= t.seedExpr(e)
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := lookupVar(t.pkg, e); v != nil {
			mask |= t.vars[v]
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			mask |= t.exprMask(e.X) | t.exprMask(e.Y)
		}
	case *ast.CallExpr:
		mask |= t.callMask(e)
	case *ast.SelectorExpr:
		mask |= t.exprMask(e.X)
	case *ast.IndexExpr:
		mask |= t.exprMask(e.X)
	case *ast.SliceExpr:
		mask |= t.exprMask(e.X)
	case *ast.StarExpr:
		mask |= t.exprMask(e.X)
	case *ast.UnaryExpr:
		mask |= t.exprMask(e.X)
	case *ast.TypeAssertExpr:
		mask |= t.exprMask(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				mask |= t.exprMask(kv.Value)
			} else {
				mask |= t.exprMask(el)
			}
		}
	}
	return mask
}

// taintSanitizers stop propagation: their result is clean regardless of
// the arguments.
var taintSanitizers = map[string]map[string]bool{
	"path/filepath": {"Base": true},
	"path":          {"Base": true},
	"net/url":       {"PathEscape": true, "QueryEscape": true},
}

// taintPropagators are external functions whose result unions the
// arguments' taint. filepath.Clean deliberately propagates: Clean does
// not neutralize "../" in relative paths.
var taintPropagators = map[string]bool{
	"strings": true, "fmt": true, "path": true, "path/filepath": true,
	"strconv": true, "net/url": true, "bytes": true,
}

func (t *taintEngine) callMask(call *ast.CallExpr) uint64 {
	argUnion := func() uint64 {
		var m uint64
		for _, a := range call.Args {
			m |= t.exprMask(a)
		}
		return m
	}
	// Type conversions (string(b), mytype(s)) keep the operand's taint.
	if tv, ok := t.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return argUnion()
	}
	if path, name, ok := pkgQualifiedFunc(t.pkg, call); ok {
		if taintSanitizers[path][name] {
			return 0
		}
		if isModulePath(t.prog, path) {
			// handled below via summaries
		} else if taintPropagators[path] {
			return argUnion()
		} else {
			return 0 // unknown external call: assume clean result
		}
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := t.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return argUnion() // append, min, max, ...
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, found := t.pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
			if nameHasSanitize(sel.Sel.Name) {
				return 0
			}
			if t.prog == nil || t.prog.staticCallee(t.pkg, call) == nil {
				// External or dynamic method: a call on a tainted receiver
				// (url.Values.Get, strings.Replacer.Replace) stays tainted.
				return t.exprMask(sel.X) | argUnion()
			}
		}
	}
	// Module function with a summary: map argument taint through the
	// callee's param-to-return flows.
	if t.prog != nil {
		if callee := t.prog.staticCallee(t.pkg, call); callee != nil {
			if nameHasSanitize(calleeName(callee)) {
				return 0
			}
			var mask uint64
			sum := t.prog.summaries[callee]
			if sum != nil {
				for j, a := range call.Args {
					if j < len(sum.ParamToReturn) && sum.ParamToReturn[j] {
						mask |= t.exprMask(a)
					}
				}
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if s, found := t.pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
					mask |= t.exprMask(sel.X) // method on tainted receiver
				}
			}
			return mask
		}
	}
	return 0
}

func calleeName(n *Node) string {
	if n.Func != nil {
		return n.Func.Name()
	}
	return n.Name
}

// nameHasSanitize treats any function self-describing as a sanitizer as
// one; the suppression mechanism covers disagreements.
func nameHasSanitize(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sanitize")
}

// pkgQualifiedFunc resolves pkgname.F(...) calls without needing a Pass.
func pkgQualifiedFunc(pkg *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if pn, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
		return pn.Imported().Path(), sel.Sel.Name, true
	}
	return "", "", false
}

func isModulePath(prog *Program, path string) bool {
	if prog == nil || len(prog.Pkgs) == 0 {
		return false
	}
	mod := prog.Pkgs[0].Path
	if i := strings.Index(mod, "/"); i > 0 {
		mod = mod[:i]
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

// taintSinkArgs maps external filesystem sinks to the argument indexes
// that must stay clean (-1 = every argument).
var taintSinkArgs = map[string]map[string][]int{
	"os": {
		"Open": {0}, "OpenFile": {0}, "Create": {0}, "ReadFile": {0},
		"WriteFile": {0}, "Remove": {0}, "RemoveAll": {0}, "Rename": {0, 1},
		"Mkdir": {0}, "MkdirAll": {0}, "Stat": {0}, "Lstat": {0},
		"ReadDir": {0}, "Chdir": {0}, "Truncate": {0},
	},
	"path/filepath": {"Join": {-1}},
	"path":          {"Join": {-1}},
}

// moduleSinkMethods are module methods that write request-visible names
// to disk; keyed by types.Func.FullName.
var moduleSinkMethods = map[string][]int{
	"(*repro/internal/serving.Registry).Save": {0},
	"(*repro/internal/serving.Registry).Load": {0},
}

// scanSinks walks the body's calls reporting taint reaching a sink —
// directly, or through a module callee whose summary flows a parameter
// to one.
func (t *taintEngine) scanSinks(body ast.Node, hit func(sink string, pos token.Pos, mask uint64, via string)) {
	inspectShallow(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgQualifiedFunc(t.pkg, call); ok {
			if args, isSink := taintSinkArgs[path][name]; isSink {
				display := path[strings.LastIndex(path, "/")+1:] + "." + name
				mask := t.sinkArgMask(call, args)
				if mask != 0 {
					hit(display, call.Pos(), mask, "")
				}
				return true
			}
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s, found := t.pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
				if fn, isFn := s.Obj().(*types.Func); isFn {
					if args, isSink := moduleSinkMethods[fn.FullName()]; isSink {
						mask := t.sinkArgMask(call, args)
						if mask != 0 {
							hit(shortFuncName(fn), call.Pos(), mask, "")
						}
						return true
					}
				}
			}
		}
		// Interprocedural: taint handed to a module callee that flows the
		// parameter to a sink.
		if t.prog != nil {
			if callee := t.prog.staticCallee(t.pkg, call); callee != nil {
				if sum := t.prog.summaries[callee]; sum != nil {
					for j, a := range call.Args {
						if j >= len(sum.ParamSinks) || len(sum.ParamSinks[j]) == 0 {
							continue
						}
						mask := t.exprMask(a)
						if mask == 0 {
							continue
						}
						for _, flow := range sum.ParamSinks[j] {
							via := callee.Name
							if flow.Via != "" {
								via += " -> " + flow.Via
							}
							if strings.Count(via, "->") > 4 {
								continue
							}
							hit(flow.Sink, call.Pos(), mask, via)
						}
					}
				}
			}
		}
		return true
	})
}

func (t *taintEngine) sinkArgMask(call *ast.CallExpr, args []int) uint64 {
	var mask uint64
	for _, idx := range args {
		if idx == -1 {
			for _, a := range call.Args {
				mask |= t.exprMask(a)
			}
			continue
		}
		if idx < len(call.Args) {
			mask |= t.exprMask(call.Args[idx])
		}
	}
	return mask
}
