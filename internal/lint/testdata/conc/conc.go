// Package conc is the dedicated structural fixture for the concurrency
// topology graph (testdata/conc, outside the golden corpus): spawn
// edges, go-reachability, mutex ownership of field accesses, mixed
// atomic/plain disciplines, and channel endpoint pairing.
package conc

import (
	"sync"
	"sync/atomic"
)

// S carries one mutex-guarded field, one mixed-discipline field, and
// one channel field.
type S struct {
	mu      sync.Mutex
	guarded int
	count   int64
	stop    chan struct{}
}

// New confines its writes to the allocating constructor.
func New() *S {
	s := &S{stop: make(chan struct{})}
	s.guarded = 1
	return s
}

func (s *S) set(v int) {
	s.mu.Lock()
	s.guarded = v
	s.mu.Unlock()
}

func (s *S) peek() int {
	return s.guarded
}

func (s *S) bump() {
	atomic.AddInt64(&s.count, 1)
}

func (s *S) raw() int64 {
	return s.count
}

func worker(s *S) {
	s.set(2)
	_ = s.peek()
	_ = s.raw()
}

// launch is the spawn site: one named function, one literal.
func launch(s *S) {
	go worker(s)
	go func() {
		s.bump()
		<-s.stop
	}()
	pipe()
}

// pipe pairs an unbuffered local channel across a spawn.
func pipe() int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return <-ch
}
