package fixcorpus

import (
	"time"

	"repro/internal/clock"
)

// stamp and friends read the wall clock directly; the fixes route each
// call through clock.Real(), keeping behavior identical but the time
// source swappable.
func stamp() time.Time {
	return time.Now()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func waitBriefly(d time.Duration) {
	<-time.After(d)
}

// injected already uses the seam; untouched by the fixes.
func injected(c clock.Clock) time.Time {
	return c.Now()
}
