// Package fixcorpus exercises the -fix pipeline: every finding in this
// package carries a mechanical edit, and applying them all must leave
// the package lint-clean. The round-trip test copies these files into a
// scratch directory before patching them.
package fixcorpus

import "context"

// fetch leaks its cancel on the skip path; the fix inserts defer
// cancel() right after the acquisition.
func fetch(parent context.Context, skip bool) error {
	ctx, cancel := context.WithCancel(parent)
	if skip {
		return nil
	}
	<-ctx.Done()
	cancel()
	return nil
}
