package fixcorpus

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// bump locks and never releases; the fix defers the unlock right after
// the acquisition (safe here because nothing else in the function
// unlocks).
func (c *counter) bump() int {
	c.mu.Lock()
	c.n++
	return c.n
}
