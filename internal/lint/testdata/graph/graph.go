// Package graph is the fixture for the call-graph construction tests:
// interface dispatch, method values, closures, mutual recursion, and
// the parameter-consumption summaries. It is loaded directly by the
// tests and is not part of the golden corpus.
package graph

import "sync"

type shape interface {
	area() float64
}

type circle struct{ r float64 }

func (c circle) area() float64 { return 3 * c.r * c.r }

func (c circle) scale(f float64) float64 { return c.r * f }

type square struct{ s float64 }

func (s square) area() float64 { return s.s * s.s }

// total dispatches through the interface inside a data loop; CHA must
// produce edges to both implementations.
func total(shapes []shape) float64 {
	var t float64
	for _, s := range shapes {
		t += s.area()
	}
	return t
}

// each invokes the function value it receives.
func each(xs []float64, f func(float64) float64) float64 {
	var t float64
	for _, x := range xs {
		t += f(x)
	}
	return t
}

// useMethodValue passes a bound method as a callback.
func useMethodValue(c circle, xs []float64) float64 {
	return each(xs, c.scale)
}

// runsClosure binds a literal to a local and calls it: a static edge to
// the literal node.
func runsClosure(base float64) float64 {
	add := func(x float64) float64 { return base + x }
	return add(1)
}

// makesClosure returns an escaping literal; the builder records a
// callback edge from the enclosing function.
func makesClosure(base float64) func(float64) float64 {
	return func(x float64) float64 { return base * x }
}

// even and odd are mutually recursive: one SCC, summaries must converge.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

type box struct {
	mu sync.Mutex
	n  int
}

// poke acquires and releases; its summary records the may-acquire.
func (b *box) poke() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// pokesTwice reaches the lock only through poke; its summary must
// inherit the acquisition with the via chain.
func pokesTwice(b *box) {
	b.poke()
	b.poke()
}

// ignores provably never touches its parameter.
func ignores(x *int) {}

// forwards only hands the parameter to ignores; ignorance is
// transitive.
func forwards(x *int) { ignores(x) }

var kept *int

// consumes stores the parameter, so it is consumed.
func consumes(x *int) { kept = x }
