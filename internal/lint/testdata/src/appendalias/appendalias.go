// Package appendalias is spatial-lint golden-corpus input for the
// append-alias analyzer: appends whose result is lost, diverging appends
// sharing a backing array, and appends racing with a goroutine.
package appendalias

// deadAppend grows a local slice nobody reads again.
func deadAppend(vals []int) int {
	sum := 0
	scratch := make([]int, 0, len(vals))
	for _, v := range vals {
		sum += v
		scratch = append(scratch, v)
	}
	scratch = append(scratch, sum) // want "result of append to scratch is never used"
	return sum
}

// appendToParam is the classic lost-append: the caller's slice header
// never changes.
func appendToParam(s []int, v int) {
	s = append(s, v) // want "append to parameter s is lost"
}

// returned is the correct shape; nothing reported.
func returned(s []int, v int) []int {
	return append(s, v)
}

// usedAfter keeps the result live; nothing reported.
func usedAfter(vals []int) int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v*2)
	}
	return len(out)
}

// diverged appends twice from the same base: with spare capacity the
// second append overwrites the first one's element.
func diverged(base []int) ([]int, []int) {
	a := append(base, 1)
	b := append(base, 2) // want "second append from base may overwrite"
	return a, b
}

// branchArms append from base on mutually exclusive paths; the CFG keeps
// them apart, so nothing is reported.
func branchArms(base []int, hi bool) []int {
	var out []int
	if hi {
		out = append(base, 1)
	} else {
		out = append(base, 2)
	}
	return out
}

// goroutineRace appends to a slice a spawned goroutine also appends to:
// a write-write race on the slice header.
func goroutineRace(s []int) []int {
	done := make(chan struct{})
	go func() {
		s = append(s, 1)
		close(done)
	}()
	s = append(s, 2) // want "append to s races with the goroutine"
	<-done
	return s
}

// waived shows the suppression syntax.
func waived(s []int, v int) {
	s = append(s, v) //lint:ignore append-alias corpus demo: scratch append measured for reallocation cost only
}
