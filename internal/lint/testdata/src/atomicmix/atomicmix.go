// Package atomicmix is spatial-lint golden-corpus input for the
// atomic-mix check: a field touched both through sync/atomic and with
// plain loads/stores races with itself, and a plain read can observe a
// torn or stale value on weakly ordered hardware.
package atomicmix

import "sync/atomic"

// Gauge mixes disciplines on val: Inc is atomic, Read and Reset are
// plain.
type Gauge struct {
	val int64
}

// Inc is the atomic side; the finding's witness access.
func (g *Gauge) Inc() {
	atomic.AddInt64(&g.val, 1)
}

// Read loads the same field plainly; flagged.
func (g *Gauge) Read() int64 {
	return g.val // want "accessed atomically .* but read here without sync/atomic"
}

// Reset stores plainly; flagged.
func (g *Gauge) Reset() {
	g.val = 0 // want "accessed atomically .* but written here without sync/atomic"
}

// NewGauge initializes plainly before the value is published; the
// constructor write is confined to the allocating function, not flagged.
func NewGauge(start int64) *Gauge {
	g := &Gauge{}
	g.val = start
	return g
}

// Clean keeps one discipline everywhere; not flagged.
type Clean struct {
	hits int64
}

// Inc and Read both go through sync/atomic.
func (c *Clean) Inc() { atomic.AddInt64(&c.hits, 1) }

// Read matches the store discipline.
func (c *Clean) Read() int64 { return atomic.LoadInt64(&c.hits) }

// Waived mixes on purpose; the finding is suppressed with a reason.
type Waived struct {
	flag int64
}

// Set is the atomic side of the waived pair.
func (w *Waived) Set() { atomic.StoreInt64(&w.flag, 1) }

// Peek is the deliberately plain side.
func (w *Waived) Peek() int64 {
	return w.flag //lint:ignore atomic-mix corpus fixture demonstrating a reasoned waiver of the mixed access
}
