// Package bodyleak is spatial-lint golden-corpus input for the
// body-leak dataflow analyzer: every *http.Response acquired must have
// its Body closed on every path out of the function. Functions are
// unexported so the ctx-propagation check (which also runs over the
// corpus) stays out of the way.
package bodyleak

import (
	"io"
	"net/http"
)

// leakOnSuccess closes nothing on the happy path.
func leakOnSuccess(url string) ([]byte, error) {
	resp, err := http.Get(url) // want "resp.Body is not closed on every path"
	if err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// deferClosed is the canonical shape; nothing reported.
func deferClosed(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	return io.ReadAll(resp.Body)
}

// errorPathIsNil relies on the http.Client contract: on the err != nil
// edge resp is nil, so there is nothing to close there. Clean.
func errorPathIsNil(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	status := resp.StatusCode
	_ = resp.Body.Close()
	return status, nil
}

// nilCheckedProbe mirrors the gateway health prober: the explicit
// resp != nil guard closes exactly when there is a body. Clean.
func nilCheckedProbe(url string) bool {
	resp, err := http.Get(url)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		_ = resp.Body.Close()
	}
	return ok
}

// discarded drops the response entirely.
func discarded(url string) error {
	_, err := http.Get(url) // want "response discarded without closing its Body"
	return err
}

// branchLeak closes on one arm only; the 200 arm leaks.
func branchLeak(url string) (bool, error) {
	resp, err := http.Get(url) // want "resp.Body is not closed on every path"
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		return false, nil
	}
	return true, nil
}

// handedOff returns the response whole; the caller owns the close. Clean.
func handedOff(url string) (*http.Response, error) {
	return http.Get(url)
}

// logStatus takes the response but provably never touches it; its
// summary marks the parameter unconsumed.
func logStatus(tag string, resp *http.Response) {
	_ = tag
}

// leakThroughHelper hands the response to a helper that ignores it:
// the handoff cannot close the body, so the leak still reports.
func leakThroughHelper(url string) error {
	resp, err := http.Get(url) // want "resp.Body is not closed on every path"
	if err != nil {
		return err
	}
	logStatus("probe", resp)
	return nil
}

// drain really consumes the response, closing its body.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

// handedToDrain is clean: the callee demonstrably takes ownership.
func handedToDrain(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// waived shows the suppression syntax for a hand-verified pattern.
func waived(url string) (int, error) {
	resp, err := http.Get(url) //lint:ignore body-leak closed by the package teardown list
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
