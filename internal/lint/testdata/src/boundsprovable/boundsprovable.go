// Package boundsprovable is spatial-lint golden-corpus input for the
// bounds-provable kernel check: index expressions inside data loops
// whose bounds the SSA value-range analysis must prove, or flag as a
// per-iteration bounds check.
package boundsprovable

// Unbounded indexes dst by the loop over src: the lengths are
// unrelated, so every iteration carries a bounds check.
func Unbounded(dst, src []float64) {
	for i := range src {
		dst[i] = src[i] // want "index i into dst not provably within len"
	}
}

// Hinted restates the caller contract with a reslice, the documented
// remedy; nothing may be flagged.
func Hinted(dst, src []float64) {
	dst = dst[:len(src)]
	for i := range src {
		dst[i] = src[i]
	}
}

// OffByOne runs the induction one past the proven range.
func OffByOne(s []float64) float64 {
	var t float64
	for i := 0; i < len(s); i++ {
		t += s[i+1] // want "index i \+ 1 into s not provably within len"
	}
	return t
}

// Rooted proves the constant root index through the emptiness guard.
func Rooted(nodes []float64) float64 {
	if len(nodes) == 0 {
		return 0
	}
	var t float64
	for i := 0; i < 4; i++ {
		t += nodes[0]
	}
	return t
}

// ModGuarded proves the ring index: the dominating guard pins the
// operand non-negative and the modulus bounds it below the length.
func ModGuarded(ring []float64, starts []int) float64 {
	if len(ring) == 0 {
		return 0
	}
	var t float64
	for _, s := range starts {
		if s < 0 {
			continue
		}
		t += ring[s%len(ring)]
	}
	return t
}

// Gather reads through caller-supplied positions: load-derived indexes
// are data, not induction, and stay exempt however unprovable.
func Gather(dst, src []float64, idx []int) {
	dst = dst[:len(idx)]
	for i, j := range idx {
		dst[i] = src[j]
	}
}

// Search is a binary search: the relational invariant lo <= mid < hi
// is beyond interval reasoning and carries a reasoned suppression.
func Search(s []float64, x float64) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		//lint:ignore bounds-provable the binary-search invariant lo <= mid < hi is relational; interval analysis cannot carry it
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
