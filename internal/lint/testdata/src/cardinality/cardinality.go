// Package cardinality is spatial-lint golden-corpus input for the
// telemetry-cardinality check: non-constant label values passed to a
// telemetry vec's With mint unbounded series.
package cardinality

import "repro/internal/telemetry"

// Record labels a counter with raw caller input — the unbounded-series
// bug the check exists to catch.
func Record(reg *telemetry.Registry, user string) {
	c := reg.Counter("requests_total", "Requests served.", "user")
	c.With(user).Inc() // want "non-constant label value for CounterVec.With"
}

// RecordConstant uses a compile-time constant label value; not flagged.
func RecordConstant(reg *telemetry.Registry) {
	c := reg.Counter("admin_requests_total", "Admin requests served.", "user")
	c.With("admin").Inc()
}

// RecordMixed flags only the non-constant argument.
func RecordMixed(reg *telemetry.Registry, status string) {
	g := reg.Gauge("state", "Current state.", "tier", "status")
	g.With("gateway", status).Set(1) // want "non-constant label value for GaugeVec.With"
}

// RecordBounded shows the sanctioned escape: the value set is provably
// bounded, and the suppression reason states the bound.
func RecordBounded(reg *telemetry.Registry, sensorName string) {
	c := reg.Counter("samples_total", "Sensor samples.", "sensor")
	c.With(sensorName).Inc() //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
}
