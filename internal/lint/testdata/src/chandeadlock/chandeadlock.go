// Package chandeadlock is spatial-lint golden-corpus input for the
// chan-deadlock check: unbuffered channel operations with no
// counterpart anywhere in the module, sequential self-rendezvous, and
// select-default spin loops.
package chandeadlock

// Stuck sends on a channel nothing ever receives; the send parks its
// goroutine forever.
func Stuck() {
	ch := make(chan int)
	ch <- 1 // want "has no receive anywhere in the module"
}

// Orphan receives on a channel nothing ever sends on or closes.
func Orphan() int {
	ch := make(chan int)
	return <-ch // want "has no send or close anywhere in the module"
}

// SelfRendezvous sends and receives in one function with no goroutine
// on the other side; the first send blocks.
func SelfRendezvous() int {
	ch := make(chan int)
	ch <- 1 // want "sequential rendezvous with itself"
	return <-ch
}

// Spin busy-waits on a select whose only case is default.
func Spin() {
	for { // want "busy-spins at 100% CPU"
		select {
		default:
		}
	}
}

// Paired hands the send to a goroutine; a real rendezvous, not flagged.
func Paired() int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return <-ch
}

// Buffered sends never park here; buffered channels are out of scope,
// not flagged.
func Buffered() int {
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}

// NonBlocking probes with select-default; not flagged even without a
// counterpart.
func NonBlocking() bool {
	ch := make(chan int)
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// KnownStuck keeps a deliberately orphan send as the suppression
// fixture.
func KnownStuck() {
	ch := make(chan struct{})
	ch <- struct{}{} //lint:ignore chan-deadlock corpus fixture demonstrating a reasoned waiver of the orphan send
}
