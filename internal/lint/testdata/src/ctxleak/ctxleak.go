// Package ctxleak is spatial-lint golden-corpus input for the ctx-leak
// dataflow analyzer: a context cancel function must be called on every
// path out of the function (or handed to something that will).
package ctxleak

import (
	"context"
	"errors"
	"time"
)

var errBusy = errors.New("busy")

// leakOnError forgets cancel on the early-return path.
func leakOnError(parent context.Context, busy bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want "cancel is not called on every path"
	if busy {
		return errBusy
	}
	<-ctx.Done()
	cancel()
	return nil
}

// deferCancel is the canonical shape; nothing reported.
func deferCancel(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}

// discarded drops the cancel function entirely.
func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "cancel function discarded"
	return ctx
}

// storedInField hands the obligation to the owning struct; Stop calls
// it. Clean.
type runner struct {
	ctx    context.Context
	cancel context.CancelFunc
}

func (r *runner) start(parent context.Context) {
	r.ctx, r.cancel = context.WithCancel(parent)
}

func (r *runner) stop() {
	if r.cancel != nil {
		r.cancel()
	}
}

// goroutineOwned hands cancel to a goroutine that outlives the call.
// Clean for ctx-leak, and the ctx.Done receive satisfies goroutine-leak.
func goroutineOwned(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		<-ctx.Done()
		cancel()
	}()
}

// returned passes the obligation to the caller. Clean.
func returned(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(parent)
}

// noteCancel receives a cancel function but provably never touches it;
// its summary marks the parameter unconsumed.
func noteCancel(name string, cancel context.CancelFunc) {
	_ = name
}

// leakThroughHelper forwards cancel to a helper that ignores it: the
// handoff cannot discharge the obligation, so the leak still reports.
func leakThroughHelper(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // want "cancel is not called on every path"
	noteCancel("job", cancel)
	<-ctx.Done()
}

// oblivious only forwards its argument to noteCancel; ignorance is
// transitive through the chain.
func oblivious(c context.CancelFunc) {
	noteCancel("chained", c)
}

// leakThroughChain leaks through two layers of oblivious helpers.
func leakThroughChain(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // want "cancel is not called on every path"
	oblivious(cancel)
	<-ctx.Done()
}

// keeper owns handed-over cancel functions for a later teardown sweep.
var keeper []context.CancelFunc

// keepCancel stores its argument, so its summary marks it consumed.
func keepCancel(c context.CancelFunc) {
	keeper = append(keeper, c)
}

// handedToKeeper is clean: the keeper really takes the obligation.
func handedToKeeper(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	keepCancel(cancel)
	<-ctx.Done()
}

// waived shows the suppression syntax.
func waived(parent context.Context, busy bool) error {
	ctx, cancel := context.WithCancel(parent) //lint:ignore ctx-leak canceled by the process signal handler
	if busy {
		return errBusy
	}
	<-ctx.Done()
	cancel()
	return nil
}
