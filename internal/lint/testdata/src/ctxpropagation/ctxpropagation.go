// Package ctxpropagation is spatial-lint golden-corpus input for the
// ctx-propagation check: serving-tier HTTP calls must be able to carry
// the X-Trace-Id span chain, which requires a context.
package ctxpropagation

import (
	"context"
	"io"
	"net/http"
)

// FetchStatus performs an HTTP call but accepts no context, so the
// trace cannot propagate.
func FetchStatus(url string) (int, error) {
	resp, err := http.Get(url) // want "exported FetchStatus performs an HTTP call \(http.Get\) without accepting a context.Context"
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	return resp.StatusCode, nil
}

// Probe builds a context-less request even though a context is in scope.
func Probe(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil) // want "http.NewRequest builds a context-less request"
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// FetchStatusCtx threads a context and uses the WithContext
// constructor; not flagged.
func FetchStatusCtx(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	return resp.StatusCode, nil
}

// Relay derives its context from the inbound *http.Request, which
// satisfies the check; not flagged.
func Relay(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get("http://upstream.invalid/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer func() { _ = resp.Body.Close() }()
	w.WriteHeader(resp.StatusCode)
}

// LegacyPing demonstrates suppression: a deliberately context-free
// health probe, waived with a reason.
func LegacyPing(url string) error { //lint:ignore ctx-propagation liveness probe runs outside any trace
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
