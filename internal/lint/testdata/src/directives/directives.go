// Package directives is spatial-lint golden-corpus input for the
// lint-directive meta-check: a malformed suppression must itself be a
// finding, and must not suppress anything.
package directives

import "time"

// BadWaiver omits the mandatory reason, so the directive is rejected
// and the time.Now finding survives.
func BadWaiver() time.Time {
	//lint:ignore nondeterminism
	return time.Now() // want "time.Now\(\) in a seed-critical package" "time.Now bypasses internal/clock"
}

// GoodWaiver is well-formed for contrast; nothing reported.
func GoodWaiver() time.Time {
	return time.Now() //lint:ignore nondeterminism,wall-clock corpus demo of a complete directive
}
