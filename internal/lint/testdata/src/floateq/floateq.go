// Package floateq is spatial-lint golden-corpus input for the float-eq
// check: exact ==/!= on floating-point values in ML/matrix code hides
// rounding divergence between otherwise-equivalent runs.
package floateq

import "math"

// Converged compares floats exactly; flagged.
func Converged(prev, cur float64) bool {
	return prev == cur // want "floating-point == comparison"
}

// Changed uses != on float32; flagged too.
func Changed(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

// ConvergedEps is the sanctioned epsilon comparison; not flagged.
func ConvergedEps(prev, cur, eps float64) bool {
	return math.Abs(prev-cur) <= eps
}

// GuardDivide compares against the exact-zero constant, which every
// float represents exactly; exempt, not flagged.
func GuardDivide(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Dedup relies on exact equality of stored (not computed) values and
// waives the check with a reason.
func Dedup(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i > 0 && v == out[len(out)-1] { //lint:ignore float-eq adjacent stored values; exact equality dedups identical entries
			continue
		}
		out = append(out, v)
	}
	return out
}
