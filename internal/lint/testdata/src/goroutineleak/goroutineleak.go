// Package goroutineleak is spatial-lint golden-corpus input for the
// goroutine-leak check: a `go func(){...}()` with no lifecycle signal
// can neither be joined nor cancelled.
package goroutineleak

import (
	"context"
	"sync"
)

func compute() int { return 42 }

// Leak launches a goroutine nothing can wait for; flagged.
func Leak() {
	go func() { // want "goroutine has no lifecycle signal"
		_ = compute()
	}()
}

// Joined signals completion through a WaitGroup; not flagged.
func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = compute()
	}()
	wg.Wait()
}

// DoneChannel closes a done channel the caller can select on; not
// flagged.
func DoneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = compute()
	}()
	return done
}

// ResultChannel sends its result on a channel; not flagged.
func ResultChannel() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- compute()
	}()
	return out
}

// Cancellable watches a context; not flagged.
func Cancellable(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// FireAndForget is a deliberate detached goroutine, waived with a
// reason.
func FireAndForget() {
	go func() { //lint:ignore goroutine-leak corpus demo: best-effort cache warmup may outlive the caller
		_ = compute()
	}()
}
