// Package hotindirect is spatial-lint golden-corpus input for the
// hot-indirect kernel check: dynamic dispatch per data-loop iteration.
package hotindirect

// Scorer is the dispatch surface the check watches.
type Scorer interface {
	Score(x float64) float64
}

// Apply dispatches through the interface once per element.
func Apply(s Scorer, xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += s.Score(x) // want "interface call s.Score per data-loop iteration"
	}
	return t
}

// ApplyFunc calls through a func value once per element.
func ApplyFunc(f func(float64) float64, xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += f(x) // want "indirect call through f per data-loop iteration"
	}
	return t
}

type affine struct{ a, b float64 }

func (m affine) Score(x float64) float64 { return m.a*x + m.b }

// ApplyConcrete devirtualizes before the loop: concrete method calls
// dispatch statically and must not be flagged.
func ApplyConcrete(m affine, xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += m.Score(x)
	}
	return t
}

// Visit is the sanctioned callback shape: the caller-supplied
// predicate is the iteration API, with a reasoned suppression.
func Visit(xs []float64, f func(float64) bool) int {
	n := 0
	for _, x := range xs {
		//lint:ignore hot-indirect the caller-supplied predicate is the iteration API; the loop exists to drive it
		if !f(x) {
			break
		}
		n++
	}
	return n
}
