// Package hotpathalloc is spatial-lint golden-corpus input for the
// hotpath-alloc interprocedural analyzer: per-instance allocations
// reachable from the exported Predict entry points.
package hotpathalloc

import "fmt"

type model struct{ classes int }

// score allocates its result row. It is invoked once per instance from
// the entry loops, so the whole function body is per-instance work.
func score(m *model, x []float64) []float64 {
	dims(m, x)
	probs := make([]float64, m.classes) // want "make on the serving hot path"
	for i := range probs {
		probs[i] = x[i%len(x)]
	}
	return probs
}

// describe builds a per-instance label through Sprintf.
func describe(i int) string {
	return fmt.Sprintf("instance-%d", i) // want "fmt.Sprintf on the serving hot path"
}

// dims guards the kernel; the Sprintf inside panic only runs on the
// failure path, which stays cold however hot the caller is.
func dims(m *model, x []float64) {
	if len(x) < 1 {
		panic(fmt.Sprintf("want at least 1 feature for %d classes", m.classes))
	}
}

// PredictAll is an entry point. Its own slabs carry explicit capacity,
// so the appends are exempt; the per-instance allocations hide inside
// the callees the loop invokes.
func PredictAll(m *model, X [][]float64) ([][]float64, []string) {
	out := make([][]float64, 0, len(X))
	labels := make([]string, 0, len(X))
	for i, x := range X {
		out = append(out, score(m, x))
		labels = append(labels, describe(i))
	}
	return out, labels
}

// PredictLexical allocates directly inside its instance loop: the row
// make and the growth of the uncapped output slice both repeat per
// instance.
func PredictLexical(m *model, X [][]float64) [][]float64 {
	var out [][]float64
	for _, x := range X {
		row := make([]float64, m.classes) // want "make on the serving hot path"
		row[0] = x[0]
		out = append(out, row) // want "append into uncapped slice on the serving hot path"
	}
	return out
}

type span struct{ name string }

// annotate escapes a struct and concatenates a string per instance.
func annotate(name string) *span {
	return &span{name: "span-" + name} // want "heap-escaping &struct literal on the serving hot path" "string concatenation on the serving hot path"
}

// PredictAnnotated tags every instance; the append is slab-exempt but
// the Sprint argument allocates per iteration.
func PredictAnnotated(X [][]float64) []*span {
	out := make([]*span, 0, len(X))
	for i := range X {
		out = append(out, annotate(fmt.Sprint(i))) // want "fmt.Sprint on the serving hot path"
	}
	return out
}

type scorer interface {
	row(x []float64) []float64
}

type linear struct{ k int }

// row is reached through the scorer interface; CHA still marks it
// per-iteration from PredictVia's loop.
func (l *linear) row(x []float64) []float64 {
	out := make([]float64, l.k) // want "make on the serving hot path"
	out[0] = x[0]
	return out
}

// PredictVia dispatches through the interface inside the instance loop.
func PredictVia(s scorer, X [][]float64) [][]float64 {
	out := make([][]float64, 0, len(X))
	for _, x := range X {
		out = append(out, s.row(x))
	}
	return out
}

// PredictServe drains a work channel forever. The event loop is the
// serving tier's dispatch structure: the per-batch scratch inside it is
// once-per-batch work, not a per-instance leak.
func PredictServe(m *model, work <-chan [][]float64, results chan<- [][]float64) {
	for X := range work {
		scratch := make([]float64, m.classes)
		scratch[0] = float64(len(X))
		out, _ := PredictAll(m, X)
		results <- out
	}
}

// PredictLabeled keeps a reviewed per-instance allocation: the label is
// part of the response payload, so there is nothing to hoist.
func PredictLabeled(X [][]float64) []string {
	out := make([]string, 0, len(X))
	for i := range X {
		//lint:ignore hotpath-alloc the per-instance label is the response payload itself
		out = append(out, "label-"+describe(i))
	}
	return out
}
