// Package lockbalance is spatial-lint golden-corpus input for the
// lock-balance dataflow analyzer: a mutex acquired on entry must be
// released on every path out of the function.
package lockbalance

import (
	"errors"
	"sync"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

var errMissing = errors.New("missing")

// LeakOnError forgets the unlock on the early-return path.
func (s *store) LeakOnError(k string) error {
	s.mu.Lock() // want "s.mu locked here is not released on every path"
	if _, ok := s.data[k]; !ok {
		return errMissing
	}
	s.mu.Unlock()
	return nil
}

// DeferBalanced is the canonical shape; nothing reported.
func (s *store) DeferBalanced(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

// BranchBalanced releases manually on both arms; nothing reported.
func (s *store) BranchBalanced(k string) (int, error) {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		s.mu.Unlock()
		return 0, errMissing
	}
	s.mu.Unlock()
	return v, nil
}

// ReadLeak leaks the read lock on the found path.
func (s *store) ReadLeak(k string) (int, bool) {
	s.rw.RLock() // want "s.rw locked here is not released on every path"
	if v, ok := s.data[k]; ok {
		return v, true
	}
	s.rw.RUnlock()
	return 0, false
}

// PanicExitIsNotALeak: paths ending in panic are excluded, so a helper
// that locks then asserts is clean.
func (s *store) PanicExitIsNotALeak(k string) int {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		panic("corpus: must exist")
	}
	s.mu.Unlock()
	return v
}

// Waived shows the suppression syntax for a hand-verified pattern.
func (s *store) Waived() {
	s.mu.Lock() //lint:ignore lock-balance unlocked by the paired finish() helper
}

func (s *store) finish() { s.mu.Unlock() }
