// Package lockorder is spatial-lint golden-corpus input for the
// lock-order interprocedural analyzer: two functions that disagree on
// the acquisition order of the same pair of locks can deadlock under
// concurrency, even though each function is perfectly lock-balanced on
// its own.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// TakeAB acquires A.mu before B.mu.
func TakeAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lockorder.B.mu acquired while lockorder.A.mu is held"
	defer b.mu.Unlock()
}

// TakeBA acquires the same pair in the reverse order, closing the cycle.
func TakeBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "lockorder.A.mu acquired while lockorder.B.mu is held"
	defer a.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

// pokeD briefly takes D.mu; its summary records the acquisition.
func pokeD() {
	d.mu.Lock()
	d.mu.Unlock()
}

// CthenD reaches D.mu only through the helper — the edge comes from
// pokeD's summary, not from any lock statement in this function.
func CthenD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	pokeD() // want "call to lockorder.pokeD may acquire lockorder.D.mu while lockorder.C.mu is held"
}

// DthenC closes the cycle directly.
func DthenC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want "lockorder.C.mu acquired while lockorder.D.mu is held"
	c.mu.Unlock()
}

// Account shows the instance-insensitive self-edge: locking two values
// of the same type with no global order deadlocks when Transfer(x, y)
// and Transfer(y, x) run concurrently.
type Account struct {
	mu      sync.Mutex
	balance int
}

// Transfer locks both accounts in argument order.
func Transfer(from, to *Account, amount int) {
	from.mu.Lock()
	defer from.mu.Unlock()
	to.mu.Lock() // want "lockorder.Account.mu acquired while an instance of it is already held"
	defer to.mu.Unlock()
	from.balance -= amount
	to.balance += amount
}

type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

var (
	g G
	h H
)

// lock and unlock are wrapper methods: exempt from balance and edge
// generation themselves, but their summaries carry the held/released
// effect into callers.
func (x *G) lock()   { x.mu.Lock() }
func (x *G) unlock() { x.mu.Unlock() }

// WrapGH goes through the wrapper; the held set still tracks G.mu.
func WrapGH() {
	g.lock()
	h.mu.Lock() // want "lockorder.H.mu acquired while lockorder.G.mu is held"
	h.mu.Unlock()
	g.unlock()
}

// HthenG closes the wrapper cycle directly.
func HthenG() {
	h.mu.Lock()
	g.mu.Lock() // want "lockorder.G.mu acquired while lockorder.H.mu is held"
	g.mu.Unlock()
	h.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var (
	e E
	f F
)

// EthenF holds one side of a cycle that has been reviewed and waived.
func EthenF() {
	e.mu.Lock()
	//lint:ignore lock-order boot-time only; FthenE cannot run concurrently with this
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// FthenE is the other half of the waived cycle and still reports.
func FthenE() {
	f.mu.Lock()
	e.mu.Lock() // want "lockorder.E.mu acquired while lockorder.F.mu is held"
	e.mu.Unlock()
	f.mu.Unlock()
}

type Stats struct{ mu sync.RWMutex }

// ReadBoth takes the same type's read lock twice. Shared acquisitions
// cannot deadlock against each other, so no self-edge is reported.
func ReadBoth(x, y *Stats) {
	x.mu.RLock()
	y.mu.RLock()
	y.mu.RUnlock()
	x.mu.RUnlock()
}

type P struct{ mu sync.Mutex }
type Q struct{ mu sync.Mutex }

var (
	p P
	q Q
)

// PthenQ and AlsoPthenQ agree on the order; an acyclic edge is clean.
func PthenQ() {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}

// AlsoPthenQ repeats the same order.
func AlsoPthenQ() {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
}
