// Package maporderleak is spatial-lint golden-corpus input for the
// map-order-leak analyzer: map iteration whose order can reach
// serialized output. The overlapping nondeterminism findings on the
// range headers are part of the golden expectations — the two checks
// meet here by design (per-variable vs per-function exemption).
package maporderleak

import (
	"fmt"
	"sort"
	"strings"
)

// Dump serializes straight out of the map range.
func Dump(w *strings.Builder, m map[string]int) {
	for k, v := range m { // want "map iteration order leaks into output"
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration order reaches serialized output"
	}
}

// Collect appends keys it never sorts.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order leaks into output"
		keys = append(keys, k) // want "map iteration appends to a slice never sorted"
	}
	return keys
}

// CollectSorted is the collect-then-sort idiom and must not flag.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NearMiss sorts the keys but appends the values in map order: the
// per-variable check catches what a per-function exemption would not.
func NearMiss(m map[string]int) ([]string, []int) {
	var keys []string
	var vals []int
	for k, v := range m {
		keys = append(keys, k)
		vals = append(vals, v) // want "map iteration appends to a slice never sorted"
	}
	sort.Strings(keys)
	return keys, vals
}

// Debug emits an intentionally unordered dump behind a reasoned
// suppression.
func Debug(m map[string]int) {
	for k, v := range m { // want "map iteration order leaks into output"
		//lint:ignore map-order-leak debug-only dump; order is explicitly unspecified here
		fmt.Printf("%s=%d\n", k, v)
	}
}
