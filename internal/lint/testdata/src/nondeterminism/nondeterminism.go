// Package nondeterminism is spatial-lint golden-corpus input: each
// "want" comment is a regexp the nondeterminism analyzer must report on
// that line. The code compiles but deliberately violates the repo's
// fixed-seed reproducibility invariants.
package nondeterminism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Stamp reads the wall clock in a seed-critical package.
func Stamp() time.Time {
	return time.Now() // want "time.Now\(\) in a seed-critical package" "time.Now bypasses internal/clock"
}

// Jitter draws from the process-global rand source.
func Jitter() float64 {
	return rand.Float64() // want "math/rand.Float64 uses the process-global source"
}

// TimeSeeded seeds a source from the clock: two findings on one line.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.NewSource seeded from time.Now" "time.Now\(\) in a seed-critical package" "time.Now bypasses internal/clock"
}

// Seeded is the sanctioned construction and must not be flagged.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Render leaks map iteration order into its output string.
func Render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want "map iteration order leaks into output"
		fmt.Fprintf(&b, "%s=%d;", k, v) // want "map iteration order reaches serialized output"
	}
	return b.String()
}

// RenderSorted collects then sorts, the deterministic idiom; the map
// range feeding the sort must not be flagged.
func RenderSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, m[k])
	}
	return b.String()
}

// Timed shows the suppression syntax: the directive names the check and
// gives a reason, so the finding is recorded but suppressed.
func Timed(f func()) time.Duration {
	start := time.Now() //lint:ignore nondeterminism,wall-clock wall-clock timing is reported, never seeds data
	f()
	// The line-above placement works too.
	//lint:ignore nondeterminism,wall-clock wall-clock timing is reported, never seeds data
	end := time.Now()
	return end.Sub(start)
}
