// Package pointerchase is spatial-lint golden-corpus input for the
// pointer-chase kernel check: load-dependent loads in data loops —
// linked traversals and nested slice element loads.
package pointerchase

type node struct {
	next *node
	val  float64
}

// Walk advances by a dependent load per iteration: the classic linked
// traversal.
func Walk(head *node) float64 {
	var t float64
	for p := head; p != nil; p = p.next { // want "linked traversal p.next"
		t += p.val
	}
	return t
}

// SumRows reloads the row pointer on every element touch.
func SumRows(rows [][]float64) float64 {
	var t float64
	for i := range rows {
		for j := range rows[i] {
			t += rows[i][j] // want "nested slice load"
		}
	}
	return t
}

// ScaleRows reads before writing through the nested index: a compound
// assignment is a load, and the chase is real.
func ScaleRows(rows [][]float64, v float64) {
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] *= v // want "nested slice load"
		}
	}
}

// FillRows stores through the nested index: the row pointer stays in a
// register and no chase is flagged.
func FillRows(rows [][]float64, v float64) {
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] = v
		}
	}
}

// HoistedRow is the documented remedy: one row load per row, flat
// indexing inside.
func HoistedRow(rows [][]float64) float64 {
	var t float64
	for i := range rows {
		row := rows[i]
		for j := range row {
			t += row[j]
		}
	}
	return t
}

type entry struct {
	weight float64
}

// Flat advances through a flat slice by index; taking the element
// address is not a dependent load.
func Flat(es []entry) float64 {
	var t float64
	for i := range es {
		e := &es[i]
		t += e.weight
	}
	return t
}

// Intrusive iterates an intrusive list whose layout is the exported
// API contract; the traversal carries a reasoned suppression.
func Intrusive(head *node) int {
	n := 0
	//lint:ignore pointer-chase the intrusive list layout is the exported API contract; flattening would break embedders
	for p := head; p != nil; p = p.next {
		n++
	}
	return n
}
