// Package taint is spatial-lint golden-corpus input for the taint-path
// interprocedural analyzer: request-derived strings flowing into
// filesystem sinks without sanitization.
package taint

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

const root = "/var/lib/spatial/models"

// Open feeds a query parameter straight into os.Open: a classic path
// traversal (?model=../../etc/passwd).
func Open(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	f, err := os.Open(name) // want "request-derived string reaches os.Open without sanitization"
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	_ = f.Close()
}

// Join hides the same defect behind filepath.Join, which cleans the
// path but does not confine it below root.
func Join(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	full := filepath.Join(root, name) // want "request-derived string reaches filepath.Join without sanitization"
	if _, err := os.Stat(full); err != nil { // want "request-derived string reaches os.Stat without sanitization"
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// Lower propagates taint through a strings helper and concatenation
// before hitting the sink.
func Lower(w http.ResponseWriter, r *http.Request) {
	name := strings.ToLower(r.Header.Get("X-Model"))
	if _, err := os.Stat(root + "/" + name); err != nil { // want "request-derived string reaches os.Stat without sanitization"
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// readBlob is the helper whose summary carries the flow: both
// parameters reach filepath.Join, and the joined path reaches
// os.ReadFile.
func readBlob(dir, name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, name))
}

// Fetch never touches a sink directly — the taint travels through
// readBlob's parameter summary.
func Fetch(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	data, err := readBlob(root, name) // want "reaches filepath.Join \(via taint.readBlob\) without sanitization" "reaches os.ReadFile \(via taint.readBlob\) without sanitization"
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	_, _ = w.Write(data)
}

// Based takes filepath.Base before the sink, which confines the name
// to a single path element: sanitized, no finding.
func Based(w http.ResponseWriter, r *http.Request) {
	name := filepath.Base(r.URL.Query().Get("model"))
	data, err := readBlob(root, name)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	_, _ = w.Write(data)
}

// sanitizeModel is a module-local sanitizer; the "sanitize" in its name
// marks it as a cleaning boundary.
func sanitizeModel(name string) string {
	name = filepath.Base(strings.TrimSpace(name))
	if name == "." || name == ".." {
		return "default"
	}
	return name
}

// Cleaned routes the request string through the local sanitizer first.
func Cleaned(w http.ResponseWriter, r *http.Request) {
	name := sanitizeModel(r.URL.Query().Get("model"))
	f, err := os.Open(filepath.Join(root, name))
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	_ = f.Close()
}

// Waived is reviewed tainted flow: the handler is only mounted on the
// localhost admin mux, and the waiver records that.
func Waived(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dump")
	//lint:ignore taint-path admin-only handler bound to localhost; operators may name any path
	f, err := os.Create(name)
	if err != nil {
		http.Error(w, "cannot create", http.StatusInternalServerError)
		return
	}
	_ = f.Close()
}

// Fixed reads a server-chosen path; the request only selects from an
// allowlisted map, so nothing request-derived reaches the sink.
func Fixed(w http.ResponseWriter, r *http.Request) {
	paths := map[string]string{"iris": root + "/iris.json", "mnist": root + "/mnist.json"}
	full, ok := paths[r.URL.Query().Get("model")]
	if !ok {
		http.Error(w, "unknown model", http.StatusBadRequest)
		return
	}
	data, err := os.ReadFile(full)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	_, _ = w.Write(data)
}
