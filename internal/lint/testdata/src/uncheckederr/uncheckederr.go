// Package uncheckederr is spatial-lint golden-corpus input for the
// unchecked-err check: bare Close/Write/json.Encoder.Encode calls drop
// errors that corrupt the monitoring plane silently.
package uncheckederr

import (
	"encoding/json"
	"os"
)

// DumpJSON drops the Encode error, leaving half-written JSON; flagged.
func DumpJSON(f *os.File, v any) {
	json.NewEncoder(f).Encode(v) // want "json.Encoder.Encode returns an error that is discarded"
}

// Persist drops both the Write and the deferred Close error; flagged
// twice.
func Persist(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()   // want "File.Close returns an error that is discarded"
	f.Write(data)     // want "File.Write returns an error that is discarded"
	return nil
}

// PersistChecked handles every error; not flagged.
func PersistChecked(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

// BestEffort acknowledges the discard explicitly with `_ =`; not
// flagged.
func BestEffort(f *os.File, v any) {
	_ = json.NewEncoder(f).Encode(v)
}

// CleanupTemp waives the deferred Close with a reason.
func CleanupTemp(f *os.File, data []byte) error {
	defer f.Close() //lint:ignore unchecked-err corpus demo: caller re-stats the file and detects a lost flush
	_, err := f.Write(data)
	return err
}
