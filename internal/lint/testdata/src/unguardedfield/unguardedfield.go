// Package unguardedfield is spatial-lint golden-corpus input for the
// unguarded-field check: a field written under a mutex in one function
// but accessed without it in another function that can run on a spawned
// goroutine.
package unguardedfield

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Inc writes n under mu; the inferred guard's witness.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads n without mu while Watch makes it goroutine-reachable;
// flagged.
func (c *counter) Peek() int {
	return c.n // want "written under .*mu .* but read here without it"
}

// bumpLocked writes without the lock but declares, by the repo-wide
// "...Locked" suffix, that its caller holds mu; not flagged.
func (c *counter) bumpLocked() {
	c.n++
}

// Watch spawns a reader, making Peek goroutine-reachable.
func Watch(c *counter) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = c.Peek()
	}()
	c.Inc()
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
	return done
}

// guarded keeps every access under mu; not flagged.
type guarded struct {
	mu sync.Mutex
	v  int
}

func (g *guarded) set(x int) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

func (g *guarded) get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// SpawnGuarded mirrors Watch for the clean type.
func SpawnGuarded(g *guarded) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = g.get()
	}()
	g.set(1)
	return done
}

// stats is read racily on purpose for display-only output; the finding
// is suppressed with a reason.
type stats struct {
	mu   sync.Mutex
	hits int
}

func (s *stats) add() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *stats) approx() int {
	return s.hits //lint:ignore unguarded-field approximate read is tolerated for display-only stats
}

// PollStats spawns the racy reader.
func PollStats(s *stats) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.approx()
	}()
	s.add()
	return done
}
