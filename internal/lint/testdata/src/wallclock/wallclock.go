// Package wallclock is spatial-lint golden-corpus input for the
// wall-clock analyzer: direct time.* calls must route through
// internal/clock in the scoped packages. The nondeterminism analyzer
// also fires on time.Now here (the corpus runs every check), so those
// lines carry both expectations.
package wallclock

import (
	"time"

	"repro/internal/clock"
)

// stamp reads the wall clock directly; fixable because the file imports
// internal/clock.
func stamp() time.Time {
	return time.Now() // want "time.Now bypasses internal/clock" "time.Now\(\) in a seed-critical package"
}

// snooze uses a timer with no Clock equivalent; flagged without a fix.
func snooze() {
	time.Sleep(time.Millisecond) // want "time.Sleep bypasses internal/clock"
}

// elapsed measures with Since.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since bypasses internal/clock"
}

// injected is the sanctioned construction: the clock interface carries
// the time source, so nothing is reported.
func injected(c clock.Clock) time.Time {
	return c.Now()
}

// valueReference is the injection idiom itself — referencing time.Now as
// a value to store in a field — and must not be flagged.
type ticker struct {
	now func() time.Time
}

func defaultTicker() *ticker {
	return &ticker{now: time.Now}
}

// waived shows the suppression syntax for the wall-clock check itself.
func waived() time.Time {
	return time.Now() //lint:ignore wall-clock,nondeterminism boot stamp, printed once and never compared
}
