// Package wgmisuse is spatial-lint golden-corpus input for the
// wg-misuse check: WaitGroup Adds that can race a started Wait and Done
// calls that can outnumber Adds.
package wgmisuse

import "sync"

func work() int { return 1 }

// AddAfterWait re-arms the group on a path where Wait may already have
// started; flagged at the Add.
func AddAfterWait(trigger bool) {
	var wg sync.WaitGroup
	if trigger {
		wg.Wait()
	}
	wg.Add(1) // want "reachable after .*Wait has started"
	wg.Done()
}

// AddInGoroutine counts the work inside the goroutine it spawns while
// the caller is already waiting; Wait can pass before Add runs.
func AddInGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "runs inside a goroutine while .* waits on it"
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

// ConditionalAdd pairs an unconditional Done with an Add that only
// happens on one branch; the counter can go negative and panic.
func ConditionalAdd(arm bool) {
	var wg sync.WaitGroup
	if arm {
		wg.Add(1)
	}
	wg.Done() // want "can run without a matching .*Add on this path"
}

// Balanced Adds once per goroutine before spawning; not flagged.
func Balanced(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = work()
		}()
	}
	wg.Wait()
}

// WavesInLoop alternates Add and Wait inside one loop; legal wave-style
// reuse, not flagged.
func WavesInLoop(rounds int) {
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = work()
		}()
		wg.Wait()
	}
}

// Rearm re-arms a group sequentially after the first wave's Wait
// returned — a two-phase barrier the check over-approximates; waived
// with a reason.
func Rearm() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
	wg.Add(1) //lint:ignore wg-misuse two-phase barrier re-arms only after the first wave's Wait returned
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}
