package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerUncheckedErr flags discarded error results in the server tiers
// (gateway, service, sensor, dashboard, loadgen, telemetry, cmd/*) on
// the three call shapes where a silently dropped error corrupts the
// monitoring plane: Close (lost flush on persistence files), Write
// (truncated /metrics and API responses), and json.Encoder.Encode
// (half-written JSON bodies the dashboard then fails to parse). An
// explicit `_ =` (or `_, _ =`) assignment is accepted as a deliberate,
// reviewable acknowledgment; a bare or deferred call is not.
var AnalyzerUncheckedErr = &Analyzer{
	Name: "unchecked-err",
	Doc:  "flags discarded errors from Close, Write, and json.Encoder.Encode in the server tiers",
	AppliesTo: func(path string) bool {
		return pathHasAny(path, "internal/gateway", "internal/service", "internal/serving",
			"internal/sensor", "internal/dashboard", "internal/loadgen", "internal/telemetry", "/cmd/")
	},
	Run: runUncheckedErr,
}

func runUncheckedErr(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				if c, ok := n.X.(*ast.CallExpr); ok {
					call = c
				}
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if name, ok := errReturningTarget(p, call); ok {
				p.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ deliberately", name)
			}
			return true
		})
	}
}

// errReturningTarget reports whether the call is one of the three
// watched shapes and returns an error that the caller is dropping.
func errReturningTarget(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Close", "Write", "Encode":
	default:
		return "", false
	}
	recv, name, ok := p.MethodCall(call)
	if !ok {
		// Without type info (corpus with broken imports), fall back to
		// the method name alone for Close and Encode; Write is too
		// common a name to flag untyped.
		if p.Info == nil && method != "Write" {
			return "x." + method, true
		}
		return "", false
	}
	if method == "Encode" {
		pkg, typeName := namedPath(recv)
		if pkg != "encoding/json" || typeName != "Encoder" {
			return "", false
		}
		return "json.Encoder.Encode", true
	}
	if !methodReturnsError(p, call) {
		return "", false
	}
	_, typeName := namedPath(recv)
	if typeName == "" {
		typeName = recv.String()
	}
	return typeName + "." + name, true
}

// methodReturnsError reports whether the call's result tuple contains an
// error.
func methodReturnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if named, isNamed := results.At(i).Type().(*types.Named); isNamed && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
