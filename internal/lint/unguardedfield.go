package lint

import "sort"

// AnalyzerUnguardedField flags shared struct fields that one function
// writes while holding a module-global mutex and another goroutine-
// reachable function reads or writes without it — the classic "the author
// knew this needed the lock, then forgot once" race. The guard is
// inferred per field: the lock key (per the lock-order canonicalization)
// held at the largest number of the field's plain writes. A finding means
// some access can run concurrently with a guarded write while holding
// nothing that orders the two.
//
// Over-approximations, by design: lock context is may-held and
// statement-ordered (a lock taken on any path to the access counts), the
// inferred guard is the coverage-majority lock rather than a proof, and
// functions whose name ends in "Locked" are assumed to run under a
// caller-held lock (the repo convention) and are never reported. Escaped
// or atomically accessed fields are handed to atomic-mix / manual review
// instead.
var AnalyzerUnguardedField = &Analyzer{
	Name:       "unguarded-field",
	Doc:        "flags fields written under a mutex in one function but accessed without it in another",
	Severity:   SeverityWarn,
	RunProgram: runUnguardedField,
}

func runUnguardedField(pp *ProgramPass) {
	conc := pp.Prog.Concurrency()
	for _, key := range conc.FieldKeys() {
		fi := conc.Fields[key]
		accesses, writes, shared := classifyShared(conc, fi)
		if accesses == nil || len(writes) == 0 || !shared {
			continue
		}
		guard, covered := majorityGuard(writes)
		if guard == "" {
			continue
		}
		witness := pp.Prog.Fset.Position(covered.Pos)
		for _, a := range accesses {
			if a.Held[guard] || lockedByConvention(a.Node) {
				continue
			}
			pp.Reportf(a.Pos, "field %s is written under %s (%s:%d) but %s here without it; acquire %s or move the field to sync/atomic",
				shortKeyName(fi.Key), shortKeyName(guard), baseName(witness.Filename), witness.Line, a.Mode, shortKeyName(guard))
		}
	}
}

// classifyShared filters a field's accesses down to the plain,
// non-confined ones and decides whether the field is shared across
// goroutines: accessed from at least two functions, at least one of which
// may run on a spawned goroutine. Fields with escapes or atomic accesses
// return nil — they belong to other checks.
func classifyShared(conc *Concurrency, fi *FieldInfo) (accesses, writes []*FieldAccess, shared bool) {
	for _, a := range fi.Accesses {
		switch a.Mode {
		case AccessAtomic, AccessEscape:
			return nil, nil, false
		}
		if a.Confined {
			continue
		}
		accesses = append(accesses, a)
		if a.Mode == AccessWrite {
			writes = append(writes, a)
		}
	}
	nodes := make(map[*Node]bool)
	anyGo := false
	for _, a := range accesses {
		nodes[a.Node] = true
		if conc.GoReachable(a.Node) {
			anyGo = true
		}
	}
	return accesses, writes, len(nodes) >= 2 && anyGo
}

// majorityGuard picks the lock key held at the most plain writes (ties
// break lexicographically), returning the earliest write it covers as the
// witness. An empty key means no write holds any lock — the field is
// simply unsynchronized, which is not this check's shape.
func majorityGuard(writes []*FieldAccess) (string, *FieldAccess) {
	counts := make(map[string]int)
	for _, w := range writes {
		for key := range w.Held {
			counts[key]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := ""
	for _, k := range keys {
		if best == "" || counts[k] > counts[best] {
			best = k
		}
	}
	if best == "" {
		return "", nil
	}
	var witness *FieldAccess
	for _, w := range writes {
		if w.Held[best] && (witness == nil || w.Pos < witness.Pos) {
			witness = w
		}
	}
	return best, witness
}

// lockedByConvention reports whether the function declares, by the
// repo-wide "...Locked" suffix, that its caller holds the guard.
func lockedByConvention(n *Node) bool {
	if n.Decl == nil {
		return false
	}
	name := n.Decl.Name.Name
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}
